"""JSON profile interchange format.

PerfDMF supports ~a dozen profile formats; alongside the TAU text format we
provide a self-describing JSON format (one document per trial) that is easy
to generate from other tools and convenient for fixtures::

    {
      "name": "1_8",
      "metadata": {"schedule": "dynamic,1"},
      "threads": ["0.0.0", "0.0.1"],
      "events": [{"name": "main", "group": "TAU_DEFAULT"}, ...],
      "metrics": [{"name": "TIME", "units": "usec"}, ...],
      "data": {
        "TIME": {"exclusive": [[...], ...], "inclusive": [[...], ...]}
      },
      "calls": [[...], ...],
      "subroutines": [[...], ...]
    }

Arrays are row-major ``events × threads``, mirroring the in-memory layout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..model import Event, Metric, ProfileError, ThreadId, Trial

FORMAT_VERSION = 1


def trial_to_dict(trial: Trial) -> dict[str, Any]:
    """Serialize a trial to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": trial.name,
        "metadata": trial.metadata,
        "threads": [str(t) for t in trial.threads],
        "events": [{"name": e.name, "group": e.group} for e in trial.events],
        "metrics": [
            {"name": m.name, "units": m.units, "derived": m.derived}
            for m in trial.metrics
        ],
        "data": {
            m.name: {
                "exclusive": trial.exclusive_array(m.name).tolist(),
                "inclusive": trial.inclusive_array(m.name).tolist(),
            }
            for m in trial.metrics
        },
        "calls": trial.calls_array().tolist(),
        "subroutines": trial.subroutines_array().tolist(),
    }


def trial_from_dict(doc: dict[str, Any]) -> Trial:
    """Deserialize :func:`trial_to_dict` output back into a trial."""
    version = doc.get("format_version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise ProfileError(f"unsupported profile format version {version}")
    for key in ("name", "threads", "events", "metrics", "data"):
        if key not in doc:
            raise ProfileError(f"profile document missing key {key!r}")
    trial = Trial(doc["name"], doc.get("metadata"))
    for ev in doc["events"]:
        trial.add_event(Event(ev["name"], ev.get("group", "TAU_DEFAULT")))
    for t in doc["threads"]:
        trial.add_thread(ThreadId.parse(t))
    n_e, n_t = trial.event_count, trial.thread_count
    for m in doc["metrics"]:
        metric = Metric(
            m["name"], units=m.get("units", "counts"), derived=m.get("derived", False)
        )
        trial.add_metric(metric)
        try:
            block = doc["data"][metric.name]
        except KeyError:
            raise ProfileError(f"no data block for metric {metric.name!r}") from None
        exc = np.asarray(block["exclusive"], dtype=float)
        inc = np.asarray(block["inclusive"], dtype=float)
        if exc.shape != (n_e, n_t) or inc.shape != (n_e, n_t):
            raise ProfileError(
                f"metric {metric.name!r}: data shape {exc.shape} != ({n_e},{n_t})"
            )
        trial._exclusive[metric.name][:, :] = exc
        trial._inclusive[metric.name][:, :] = inc
    if "calls" in doc:
        calls = np.asarray(doc["calls"], dtype=float)
        if calls.shape != (n_e, n_t):
            raise ProfileError("calls array shape mismatch")
        trial._calls[:, :] = calls
    if "subroutines" in doc:
        subrs = np.asarray(doc["subroutines"], dtype=float)
        if subrs.shape != (n_e, n_t):
            raise ProfileError("subroutines array shape mismatch")
        trial._subrs[:, :] = subrs
    trial.validate()
    return trial


def write_json_profile(trial: Trial, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trial_to_dict(trial)))
    return path


def read_json_profile(path: str | Path) -> Trial:
    path = Path(path)
    if not path.is_file():
        raise ProfileError(f"no such profile file: {path}")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: invalid JSON: {exc}") from None
    return trial_from_dict(doc)
