"""Flat CSV profile format (one row per event × metric × thread cell).

Columns::

    event,group,metric,node,context,thread,exclusive,inclusive,calls,subroutines

This is the lowest-common-denominator import path: spreadsheet exports,
ad-hoc scripts, and downstream analyses that want long-format data.  ``calls``
and ``subroutines`` are repeated on every metric row of an event/thread pair;
on import the last occurrence wins (they are metric-independent).
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..model import Event, Metric, ProfileError, ThreadId, Trial

COLUMNS = [
    "event",
    "group",
    "metric",
    "node",
    "context",
    "thread",
    "exclusive",
    "inclusive",
    "calls",
    "subroutines",
]


def write_csv_profile(trial: Trial, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(COLUMNS)
        calls = trial.calls_array()
        subrs = trial.subroutines_array()
        for metric in trial.metric_names():
            exc = trial.exclusive_array(metric)
            inc = trial.inclusive_array(metric)
            for e, event in enumerate(trial.events):
                for t, thread in enumerate(trial.threads):
                    writer.writerow(
                        [
                            event.name,
                            event.group,
                            metric,
                            thread.node,
                            thread.context,
                            thread.thread,
                            repr(float(exc[e, t])),
                            repr(float(inc[e, t])),
                            repr(float(calls[e, t])),
                            repr(float(subrs[e, t])),
                        ]
                    )
    return path


def read_csv_profile(
    path: str | Path, *, name: str | None = None, metadata: dict | None = None
) -> Trial:
    path = Path(path)
    if not path.is_file():
        raise ProfileError(f"no such profile file: {path}")
    trial = Trial(name or path.stem, metadata)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        missing = set(COLUMNS) - set(reader.fieldnames or [])
        if missing:
            raise ProfileError(f"{path}: missing CSV columns {sorted(missing)}")
        rows = 0
        for lineno, row in enumerate(reader, start=2):
            try:
                thread = ThreadId(int(row["node"]), int(row["context"]), int(row["thread"]))
                trial.add_event(Event(row["event"], row["group"] or "TAU_DEFAULT"))
                units = "usec" if row["metric"].upper() == "TIME" else "counts"
                trial.add_metric(Metric(row["metric"], units=units))
                trial.set_value(
                    row["event"],
                    row["metric"],
                    thread,
                    exclusive=float(row["exclusive"]),
                    inclusive=float(row["inclusive"]),
                )
                trial.set_calls(
                    row["event"],
                    thread,
                    calls=float(row["calls"]),
                    subroutines=float(row["subroutines"]),
                )
            except (ValueError, KeyError) as exc:
                raise ProfileError(f"{path}:{lineno}: bad row: {exc}") from None
            rows += 1
    if rows == 0:
        raise ProfileError(f"{path}: no data rows")
    trial.validate()
    return trial
