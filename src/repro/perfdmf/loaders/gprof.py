"""Importer for gprof flat-profile text output.

PerfDMF's breadth came from accepting whatever profilers users already had;
gprof's flat profile is the lowest common denominator of sequential
profiling.  This loader parses the classic ``gprof`` flat-profile table::

    Flat profile:

    Each sample counts as 0.01 seconds.
      %   cumulative   self              self     total
     time   seconds   seconds    calls  ms/call  ms/call  name
     52.10      1.05     1.05      200     5.25     7.85  matxvec
     21.00      1.47     0.42     1000     0.42     0.42  pc_jacobi
      ...

into a single-thread trial with the TIME metric: ``self seconds`` become
exclusive time, ``total ms/call × calls`` the inclusive time (gprof's
callees-included estimate), and ``calls`` the call counts.  Rows without
call counts (e.g. the time spent in main) get inclusive = cumulative total.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..model import Event, Metric, ProfileError, ThreadId, Trial

_HEADER_RE = re.compile(r"^\s*%\s+cumulative\s+self\b")
# % time | cumulative s | self s | [calls | self ms/call | total ms/call] | name
_ROW_RE = re.compile(
    r"^\s*(?P<pct>\d+\.\d+)\s+(?P<cum>\d+\.\d+)\s+(?P<self>\d+\.\d+)"
    r"(?:\s+(?P<calls>\d+)\s+(?P<self_ms>[\d.]+)\s+(?P<total_ms>[\d.]+))?"
    r"\s+(?P<name>\S.*?)\s*$"
)


def read_gprof_profile(
    path: str | Path, *, name: str | None = None, metadata: dict | None = None
) -> Trial:
    """Parse a gprof flat profile into a single-thread trial."""
    path = Path(path)
    if not path.is_file():
        raise ProfileError(f"no such gprof file: {path}")
    lines = path.read_text().splitlines()
    return parse_gprof_text(lines, name=name or path.stem, metadata=metadata)


def parse_gprof_text(
    lines: list[str], *, name: str = "gprof", metadata: dict | None = None
) -> Trial:
    """Parse gprof flat-profile lines (see :func:`read_gprof_profile`)."""
    in_table = False
    rows: list[dict] = []
    total_seconds = 0.0
    for line in lines:
        if _HEADER_RE.match(line):
            in_table = True
            continue
        if not in_table:
            continue
        stripped = line.strip()
        if not stripped:
            if rows:
                break  # blank line ends the flat table
            continue
        if stripped.startswith(("time", "name")):
            continue  # the second header line
        m = _ROW_RE.match(line)
        if m is None:
            if rows:
                break  # e.g. the start of the call graph section
            raise ProfileError(f"unparseable gprof row: {line!r}")
        row = m.groupdict()
        rows.append(row)
        total_seconds = max(total_seconds, float(row["cum"]))
    if not rows:
        raise ProfileError("no flat-profile table found in gprof output")

    trial = Trial(name, metadata)
    trial.add_metric(Metric("TIME", units="usec"))
    thread = ThreadId(0, 0, 0)
    trial.add_thread(thread)
    for row in rows:
        fn = row["name"]
        self_us = float(row["self"]) * 1e6
        if row["calls"] is not None:
            calls = float(row["calls"])
            incl_us = float(row["total_ms"]) * 1e3 * calls
            incl_us = max(incl_us, self_us)
        else:
            calls = 1.0
            incl_us = max(total_seconds * 1e6, self_us)
        trial.add_event(Event(fn, "GPROF"))
        trial.set_value(fn, "TIME", thread, exclusive=self_us,
                        inclusive=incl_us)
        trial.set_calls(fn, thread, calls=calls)
    trial.validate()
    return trial
