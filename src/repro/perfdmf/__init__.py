"""PerfDMF: the performance data management framework substrate.

Reproduces the data layer the paper's PerfExplorer sits on: a hierarchical
Application → Experiment → Trial model, dense per-metric profile arrays, a
SQLite-backed repository, and loaders for multiple profile formats (TAU
text, JSON, CSV).
"""

from .database import PerfDMF
from .loaders.csv_format import read_csv_profile, write_csv_profile
from .loaders.gprof import parse_gprof_text, read_gprof_profile
from .loaders.json_format import (
    read_json_profile,
    trial_from_dict,
    trial_to_dict,
    write_json_profile,
)
from .loaders.tau import read_tau_profile, write_tau_profile
from .model import (
    CALLPATH_SEPARATOR,
    MAIN_EVENT,
    Application,
    Event,
    Experiment,
    Metric,
    ProfileError,
    ThreadId,
    Trial,
    TrialBuilder,
)
from .query import (
    Utilities,
    get_default_repository,
    set_default_repository,
)
from .snapshots import (
    interval_experiment,
    load_interval_trials,
    store_interval_trials,
)

__all__ = [
    "Application",
    "CALLPATH_SEPARATOR",
    "Event",
    "Experiment",
    "MAIN_EVENT",
    "Metric",
    "PerfDMF",
    "ProfileError",
    "ThreadId",
    "Trial",
    "TrialBuilder",
    "Utilities",
    "get_default_repository",
    "interval_experiment",
    "load_interval_trials",
    "parse_gprof_text",
    "read_csv_profile",
    "read_gprof_profile",
    "read_json_profile",
    "read_tau_profile",
    "set_default_repository",
    "store_interval_trials",
    "trial_from_dict",
    "trial_to_dict",
    "write_csv_profile",
    "write_json_profile",
    "write_tau_profile",
]
