"""The PerfDMF data model: applications, experiments, trials, profiles.

PerfDMF (the Performance Data Management Framework underlying PerfExplorer)
organizes parallel performance data hierarchically::

    Application → Experiment → Trial → {Metric × Event × Thread} values

A *trial* is one run of an instrumented application.  For every instrumented
code region (*event* — a procedure, loop, or callpath like
``"main => outer_loop => inner_loop"``), every *metric* (``TIME``,
``CPU_CYCLES``, ``L3_MISSES``, …), and every *thread* (flattened
node/context/thread triple), the profile records:

* **exclusive** value — cost inside the region, excluding callees,
* **inclusive** value — cost including callees,
* **calls** / **subroutine calls** — invocation counts (metric-independent).

Values are held in dense NumPy arrays of shape ``(n_events, n_threads)`` per
metric, which makes the PerfExplorer statistics operations (means, standard
deviations, correlations across threads) vectorized one-liners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

#: TAU's callpath separator. ``"a => b"`` is region ``b`` called from ``a``.
CALLPATH_SEPARATOR = " => "

#: Conventional name of the program entry point event.
MAIN_EVENT = "main"


class ProfileError(Exception):
    """Raised for malformed or inconsistent profile data."""


@dataclass(frozen=True, order=True)
class ThreadId:
    """A flattened MPI-rank/OpenMP-thread coordinate (TAU's n,c,t triple)."""

    node: int = 0
    context: int = 0
    thread: int = 0

    def __str__(self) -> str:
        return f"{self.node}.{self.context}.{self.thread}"

    @classmethod
    def parse(cls, text: str) -> "ThreadId":
        parts = text.split(".")
        if len(parts) != 3:
            raise ProfileError(f"thread id must be 'n.c.t', got {text!r}")
        try:
            return cls(*(int(p) for p in parts))
        except ValueError as exc:
            raise ProfileError(f"bad thread id {text!r}: {exc}") from None


@dataclass(frozen=True)
class Metric:
    """A measured quantity.

    ``derived`` metrics are produced by analysis operations (e.g.
    ``"(BACK_END_BUBBLE_ALL / CPU_CYCLES)"``) rather than measurement.
    """

    name: str
    units: str = "counts"
    derived: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("metric name must be non-empty")


class Event:
    """An instrumented code region.

    Parameters
    ----------
    name:
        Region name; callpaths use :data:`CALLPATH_SEPARATOR`.
    group:
        TAU-style group tag (``"TAU_DEFAULT"``, ``"OPENMP"``, ``"MPI"``,
        ``"LOOP"``...), used by selective instrumentation and rules.
    """

    __slots__ = ("name", "group")

    def __init__(self, name: str, group: str = "TAU_DEFAULT") -> None:
        if not name:
            raise ProfileError("event name must be non-empty")
        self.name = name
        self.group = group

    @property
    def is_callpath(self) -> bool:
        return CALLPATH_SEPARATOR in self.name

    @property
    def leaf(self) -> str:
        """The innermost region of a callpath event (or the name itself)."""
        return self.name.rsplit(CALLPATH_SEPARATOR, 1)[-1]

    @property
    def parent_path(self) -> str | None:
        """The calling path of a callpath event, None for flat events."""
        if not self.is_callpath:
            return None
        return self.name.rsplit(CALLPATH_SEPARATOR, 1)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r}, group={self.group!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Event) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class Trial:
    """One run's complete profile.

    Construct empty and fill through :meth:`set_value`/:meth:`set_calls`, or
    build in bulk with :class:`TrialBuilder`.  Arrays auto-grow as events,
    metrics, and threads are introduced.

    Attributes
    ----------
    name:
        Trial label, e.g. ``"1_8"`` (1 node, 8 threads) as in the paper.
    metadata:
        The *performance context*: free-form key/value pairs (machine, problem
        size, schedule, compiler flags...).  Rules may reference metadata to
        justify conclusions — a PerfExplorer 2.0 feature the paper highlights.
    """

    def __init__(self, name: str, metadata: Mapping[str, Any] | None = None) -> None:
        if not name:
            raise ProfileError("trial name must be non-empty")
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._events: list[Event] = []
        self._event_index: dict[str, int] = {}
        self._metrics: list[Metric] = []
        self._metric_index: dict[str, int] = {}
        self._threads: list[ThreadId] = []
        self._thread_index: dict[ThreadId, int] = {}
        # per-metric (E, T) arrays
        self._exclusive: dict[str, np.ndarray] = {}
        self._inclusive: dict[str, np.ndarray] = {}
        # metric-independent (E, T) arrays
        self._calls: np.ndarray = np.zeros((0, 0))
        self._subrs: np.ndarray = np.zeros((0, 0))

    # -- registration -----------------------------------------------------
    def add_event(self, event: Event | str, group: str = "TAU_DEFAULT") -> int:
        if isinstance(event, str):
            event = Event(event, group)
        idx = self._event_index.get(event.name)
        if idx is not None:
            return idx
        idx = len(self._events)
        self._events.append(event)
        self._event_index[event.name] = idx
        self._grow_events()
        return idx

    def add_metric(self, metric: Metric | str, *, units: str = "counts", derived: bool = False) -> int:
        if isinstance(metric, str):
            metric = Metric(metric, units=units, derived=derived)
        idx = self._metric_index.get(metric.name)
        if idx is not None:
            return idx
        idx = len(self._metrics)
        self._metrics.append(metric)
        self._metric_index[metric.name] = idx
        shape = (len(self._events), len(self._threads))
        self._exclusive[metric.name] = np.zeros(shape)
        self._inclusive[metric.name] = np.zeros(shape)
        return idx

    def add_thread(self, thread: ThreadId | tuple[int, int, int] | int) -> int:
        if isinstance(thread, int):
            thread = ThreadId(0, 0, thread)
        elif isinstance(thread, tuple):
            thread = ThreadId(*thread)
        idx = self._thread_index.get(thread)
        if idx is not None:
            return idx
        idx = len(self._threads)
        self._threads.append(thread)
        self._thread_index[thread] = idx
        self._grow_threads()
        return idx

    def add_events(self, events: Iterable[Event | str], group: str = "TAU_DEFAULT") -> list[int]:
        """Bulk event registration: one array growth for the whole batch
        (``add_event`` reallocates the value tables per call, which is
        quadratic when loaders register thousands of events one by one)."""
        indices = []
        for event in events:
            if isinstance(event, str):
                event = Event(event, group)
            idx = self._event_index.get(event.name)
            if idx is None:
                idx = len(self._events)
                self._events.append(event)
                self._event_index[event.name] = idx
            indices.append(idx)
        self._grow_events()
        return indices

    def add_threads(
        self, threads: Iterable[ThreadId | tuple[int, int, int] | int]
    ) -> list[int]:
        """Bulk thread registration: one array growth for the whole batch."""
        indices = []
        for thread in threads:
            if isinstance(thread, int):
                thread = ThreadId(0, 0, thread)
            elif isinstance(thread, tuple):
                thread = ThreadId(*thread)
            idx = self._thread_index.get(thread)
            if idx is None:
                idx = len(self._threads)
                self._threads.append(thread)
                self._thread_index[thread] = idx
            indices.append(idx)
        self._grow_threads()
        return indices

    def _grow_events(self) -> None:
        n_e, n_t = len(self._events), len(self._threads)
        for store in (self._exclusive, self._inclusive):
            for m, arr in store.items():
                if arr.shape[0] < n_e:
                    store[m] = np.vstack([arr, np.zeros((n_e - arr.shape[0], n_t))])
        for attr in ("_calls", "_subrs"):
            arr = getattr(self, attr)
            if arr.shape[0] < n_e:
                setattr(self, attr, np.vstack([arr, np.zeros((n_e - arr.shape[0], n_t))]))

    def _grow_threads(self) -> None:
        n_e, n_t = len(self._events), len(self._threads)
        for store in (self._exclusive, self._inclusive):
            for m, arr in store.items():
                if arr.shape[1] < n_t:
                    store[m] = np.hstack([arr, np.zeros((n_e, n_t - arr.shape[1]))])
        for attr in ("_calls", "_subrs"):
            arr = getattr(self, attr)
            if arr.shape[1] < n_t:
                setattr(self, attr, np.hstack([arr, np.zeros((n_e, n_t - arr.shape[1]))]))

    # -- value access -------------------------------------------------------
    def set_value(
        self,
        event: str,
        metric: str,
        thread: ThreadId | tuple[int, int, int] | int,
        *,
        exclusive: float | None = None,
        inclusive: float | None = None,
    ) -> None:
        e = self.add_event(event)
        self.add_metric(metric)
        t = self.add_thread(thread)
        if exclusive is not None:
            self._exclusive[metric][e, t] = exclusive
        if inclusive is not None:
            self._inclusive[metric][e, t] = inclusive

    def set_calls(
        self,
        event: str,
        thread: ThreadId | tuple[int, int, int] | int,
        *,
        calls: float | None = None,
        subroutines: float | None = None,
    ) -> None:
        e = self.add_event(event)
        t = self.add_thread(thread)
        if calls is not None:
            self._calls[e, t] = calls
        if subroutines is not None:
            self._subrs[e, t] = subroutines

    def _thread_pos(self, thread) -> int:
        """Resolve a thread reference to its flat index.

        An ``int`` means the flat index directly (the common case in
        analysis code); a tuple or :class:`ThreadId` names the n.c.t triple.
        """
        if isinstance(thread, int):
            if not 0 <= thread < len(self._threads):
                raise ProfileError(
                    f"thread index {thread} out of range "
                    f"(trial has {len(self._threads)} threads)"
                )
            return thread
        if isinstance(thread, tuple):
            thread = ThreadId(*thread)
        if thread not in self._thread_index:
            raise ProfileError(f"unknown thread {thread}")
        return self._thread_index[thread]

    def _et(self, event: str, metric: str, thread) -> tuple[int, int]:
        if event not in self._event_index:
            raise ProfileError(f"unknown event {event!r}")
        if metric not in self._metric_index:
            raise ProfileError(
                f"unknown metric {metric!r}; available: {self.metric_names()}"
            )
        return self._event_index[event], self._thread_pos(thread)

    def get_exclusive(self, event: str, metric: str, thread) -> float:
        e, t = self._et(event, metric, thread)
        return float(self._exclusive[metric][e, t])

    def get_inclusive(self, event: str, metric: str, thread) -> float:
        e, t = self._et(event, metric, thread)
        return float(self._inclusive[metric][e, t])

    def get_calls(self, event: str, thread) -> float:
        if event not in self._event_index:
            raise ProfileError(f"unknown event {event!r}")
        return float(self._calls[self._event_index[event], self._thread_pos(thread)])

    # -- array views (no copies; callers must not mutate) ------------------
    def exclusive_array(self, metric: str) -> np.ndarray:
        """(n_events, n_threads) exclusive values for ``metric``."""
        if metric not in self._exclusive:
            raise ProfileError(
                f"unknown metric {metric!r}; available: {self.metric_names()}"
            )
        return self._exclusive[metric]

    def inclusive_array(self, metric: str) -> np.ndarray:
        if metric not in self._inclusive:
            raise ProfileError(
                f"unknown metric {metric!r}; available: {self.metric_names()}"
            )
        return self._inclusive[metric]

    def calls_array(self) -> np.ndarray:
        return self._calls

    def subroutines_array(self) -> np.ndarray:
        return self._subrs

    # -- introspection ------------------------------------------------------
    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def event_names(self) -> list[str]:
        return [e.name for e in self._events]

    def event_index(self, name: str) -> int:
        if name not in self._event_index:
            raise ProfileError(f"unknown event {name!r}")
        return self._event_index[name]

    def has_event(self, name: str) -> bool:
        return name in self._event_index

    @property
    def metrics(self) -> list[Metric]:
        return list(self._metrics)

    def metric_names(self) -> list[str]:
        return [m.name for m in self._metrics]

    def has_metric(self, name: str) -> bool:
        return name in self._metric_index

    @property
    def threads(self) -> list[ThreadId]:
        return list(self._threads)

    @property
    def thread_count(self) -> int:
        return len(self._threads)

    @property
    def event_count(self) -> int:
        return len(self._events)

    def main_event(self) -> str:
        """The top-level event: prefer :data:`MAIN_EVENT`, else the event
        with the greatest total inclusive value of the first metric."""
        if MAIN_EVENT in self._event_index:
            return MAIN_EVENT
        if not self._events or not self._metrics:
            raise ProfileError("trial is empty; no main event")
        metric = self._metrics[0].name
        totals = self._inclusive[metric].sum(axis=1)
        return self._events[int(np.argmax(totals))].name

    def validate(self) -> None:
        """Check profile invariants; raises :class:`ProfileError` on violation.

        * inclusive ≥ exclusive ≥ 0 for every cell (within tolerance) — for
          *measured* metrics only: derived metrics (ratios, differences)
          are not additive over the call tree and are exempt,
        * calls ≥ 0,
        * array shapes agree with the registries.
        """
        n_e, n_t = len(self._events), len(self._threads)
        for metric_obj in self._metrics:
            metric = metric_obj.name
            exc = self._exclusive[metric]
            inc = self._inclusive[metric]
            if exc.shape != (n_e, n_t) or inc.shape != (n_e, n_t):
                raise ProfileError(
                    f"metric {metric!r} array shape {exc.shape} != ({n_e},{n_t})"
                )
            if metric_obj.derived:
                continue
            if (exc < -1e-9).any():
                raise ProfileError(f"negative exclusive values in {metric!r}")
            tol = 1e-6 * (1.0 + np.abs(inc))
            if (exc > inc + tol).any():
                bad = np.argwhere(exc > inc + tol)[0]
                raise ProfileError(
                    f"exclusive > inclusive for metric {metric!r}, event "
                    f"{self._events[bad[0]].name!r}, thread {self._threads[bad[1]]}"
                )
        if (self._calls < 0).any():
            raise ProfileError("negative call counts")

    def copy(self, name: str | None = None) -> "Trial":
        """Deep copy (used by operations that transform trials)."""
        out = Trial(name or self.name, self.metadata)
        out._events = list(self._events)
        out._event_index = dict(self._event_index)
        out._metrics = list(self._metrics)
        out._metric_index = dict(self._metric_index)
        out._threads = list(self._threads)
        out._thread_index = dict(self._thread_index)
        out._exclusive = {m: a.copy() for m, a in self._exclusive.items()}
        out._inclusive = {m: a.copy() for m, a in self._inclusive.items()}
        out._calls = self._calls.copy()
        out._subrs = self._subrs.copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trial({self.name!r}: {len(self._events)} events x "
            f"{len(self._metrics)} metrics x {len(self._threads)} threads)"
        )


class TrialBuilder:
    """Bulk construction of trials from dense arrays.

    The runtime simulator produces per-(event, thread) arrays directly; this
    builder installs them without per-cell Python overhead.
    """

    def __init__(self, name: str, metadata: Mapping[str, Any] | None = None) -> None:
        self._trial = Trial(name, metadata)

    def with_threads(self, count: int, *, node_of=None) -> "TrialBuilder":
        """Register ``count`` threads. ``node_of(i)`` maps flat index → node."""
        self._trial.add_threads(
            ThreadId(node_of(i) if node_of else 0, 0, i) for i in range(count)
        )
        return self

    def with_events(self, names: Iterable[str], group: str = "TAU_DEFAULT") -> "TrialBuilder":
        self._trial.add_events(names, group)
        return self

    def with_metric(
        self,
        metric: str,
        exclusive: np.ndarray,
        inclusive: np.ndarray | None = None,
        *,
        units: str = "counts",
    ) -> "TrialBuilder":
        """Install full (E, T) arrays for one metric.

        ``inclusive`` defaults to ``exclusive`` (flat profiles).
        """
        t = self._trial
        exclusive = np.asarray(exclusive, dtype=float)
        expected = (t.event_count, t.thread_count)
        if exclusive.shape != expected:
            raise ProfileError(
                f"metric {metric!r}: array shape {exclusive.shape} != {expected} "
                "(register events/threads first)"
            )
        inclusive = exclusive if inclusive is None else np.asarray(inclusive, dtype=float)
        if inclusive.shape != expected:
            raise ProfileError(f"metric {metric!r}: inclusive shape mismatch")
        t.add_metric(Metric(metric, units=units))
        t._exclusive[metric][:, :] = exclusive
        t._inclusive[metric][:, :] = inclusive
        return self

    def with_calls(self, calls: np.ndarray, subroutines: np.ndarray | None = None) -> "TrialBuilder":
        t = self._trial
        calls = np.asarray(calls, dtype=float)
        expected = (t.event_count, t.thread_count)
        if calls.shape != expected:
            raise ProfileError(f"calls array shape {calls.shape} != {expected}")
        t._calls[:, :] = calls
        if subroutines is not None:
            t._subrs[:, :] = np.asarray(subroutines, dtype=float)
        return self

    def build(self, *, validate: bool = True) -> Trial:
        if validate:
            self._trial.validate()
        return self._trial


@dataclass
class Experiment:
    """A parametric family of trials (e.g. a scaling study)."""

    name: str
    trials: dict[str, Trial] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add_trial(self, trial: Trial) -> None:
        if trial.name in self.trials:
            raise ProfileError(
                f"experiment {self.name!r} already has trial {trial.name!r}"
            )
        self.trials[trial.name] = trial

    def trial_names(self) -> list[str]:
        return list(self.trials)


@dataclass
class Application:
    """Top of the PerfDMF hierarchy."""

    name: str
    experiments: dict[str, Experiment] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def get_or_create(self, experiment_name: str) -> Experiment:
        if experiment_name not in self.experiments:
            self.experiments[experiment_name] = Experiment(experiment_name)
        return self.experiments[experiment_name]
