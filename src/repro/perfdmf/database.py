"""SQLite-backed PerfDMF repository.

PerfDMF stores parallel profiles in a relational database so analyses can
span many experiments.  This module reproduces that design on
:mod:`sqlite3` (stdlib): a normalized schema with application/experiment/
trial/metric/event dimension tables and a single measurement fact table.

The repository is the system's durable store: the runtime simulator saves
trials here and PerfExplorer scripts load them back by
(application, experiment, trial) coordinates, exactly like the paper's
``Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8")``.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from .. import observe
from .model import Event, Metric, ProfileError, ThreadId, Trial


def _stmt(kind: str, rows: int) -> None:
    """Count executed statements by class (insert/select/delete) and the
    rows they touched — the repository's query-mix telemetry."""
    if observe.enabled():
        observe.counter(f"perfdmf.stmt.{kind}").inc()
        observe.counter(f"perfdmf.rows.{kind}").inc(rows)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS application (
    id      INTEGER PRIMARY KEY,
    name    TEXT NOT NULL UNIQUE,
    metadata TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS experiment (
    id      INTEGER PRIMARY KEY,
    app_id  INTEGER NOT NULL REFERENCES application(id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    metadata TEXT NOT NULL DEFAULT '{}',
    UNIQUE (app_id, name)
);
CREATE TABLE IF NOT EXISTS trial (
    id      INTEGER PRIMARY KEY,
    exp_id  INTEGER NOT NULL REFERENCES experiment(id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    metadata TEXT NOT NULL DEFAULT '{}',
    UNIQUE (exp_id, name)
);
CREATE TABLE IF NOT EXISTS metric (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    name     TEXT NOT NULL,
    units    TEXT NOT NULL DEFAULT 'counts',
    derived  INTEGER NOT NULL DEFAULT 0,
    UNIQUE (trial_id, name)
);
CREATE TABLE IF NOT EXISTS event (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    name     TEXT NOT NULL,
    grp      TEXT NOT NULL DEFAULT 'TAU_DEFAULT',
    UNIQUE (trial_id, name)
);
CREATE TABLE IF NOT EXISTS thread (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    node     INTEGER NOT NULL,
    context  INTEGER NOT NULL,
    thread   INTEGER NOT NULL,
    UNIQUE (trial_id, node, context, thread)
);
CREATE TABLE IF NOT EXISTS value (
    metric_id  INTEGER NOT NULL REFERENCES metric(id) ON DELETE CASCADE,
    event_id   INTEGER NOT NULL REFERENCES event(id)  ON DELETE CASCADE,
    thread_id  INTEGER NOT NULL REFERENCES thread(id) ON DELETE CASCADE,
    exclusive  REAL NOT NULL,
    inclusive  REAL NOT NULL,
    PRIMARY KEY (metric_id, event_id, thread_id)
);
CREATE TABLE IF NOT EXISTS callcount (
    event_id   INTEGER NOT NULL REFERENCES event(id)  ON DELETE CASCADE,
    thread_id  INTEGER NOT NULL REFERENCES thread(id) ON DELETE CASCADE,
    calls      REAL NOT NULL,
    subroutines REAL NOT NULL,
    PRIMARY KEY (event_id, thread_id)
);
-- Covering indexes for the fact table.  The composite primary keys already
-- serve the metric_id-first (value) and event_id-first (callcount) paths;
-- these cover the other child-key lookups, which otherwise full-scan on
-- every cascading delete (trial replacement) and event/thread-scoped query.
CREATE INDEX IF NOT EXISTS idx_value_event     ON value(event_id);
CREATE INDEX IF NOT EXISTS idx_value_thread    ON value(thread_id);
CREATE INDEX IF NOT EXISTS idx_callcount_thread ON callcount(thread_id);
"""


class PerfDMF:
    """A PerfDMF repository.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` (the default) for an ephemeral
        repository — handy in tests and in the single-process pipelines the
        examples run.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        # autocommit mode: transaction boundaries are explicit (BEGIN/COMMIT
        # in _transaction), so bulk inserts are atomic and a failed store
        # leaves no partial trial behind.
        self._conn = sqlite3.connect(str(path), isolation_level=None)
        self._conn.execute("PRAGMA foreign_keys = ON")
        if str(path) != ":memory:":
            # WAL lets concurrent readers proceed while a writer stores a
            # trial; NORMAL sync is durable enough for a profile cache and
            # much faster.  (In-memory databases ignore journal modes.)
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_SCHEMA)

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (used by companion subsystems such as
        :mod:`repro.regress` that keep their own tables in the same file)."""
        return self._conn

    @contextmanager
    def _transaction(self):
        """Explicit transaction scope; rolls back on any exception."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "PerfDMF":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- hierarchy -------------------------------------------------------
    def _get_or_create(self, table: str, where: dict, defaults: dict | None = None) -> int:
        cols = list(where)
        row = self._conn.execute(
            f"SELECT id FROM {table} WHERE "
            + " AND ".join(f"{c} = ?" for c in cols),
            [where[c] for c in cols],
        ).fetchone()
        if row:
            return row[0]
        data = {**where, **(defaults or {})}
        cur = self._conn.execute(
            f"INSERT INTO {table} ({', '.join(data)}) VALUES "
            f"({', '.join('?' for _ in data)})",
            list(data.values()),
        )
        return cur.lastrowid

    def save_trial(
        self, application: str, experiment: str, trial: Trial, *, replace: bool = False
    ) -> int:
        """Persist ``trial`` under application/experiment. Returns trial id.

        The whole store — cascade-deleting a replaced trial included — is
        one transaction: readers never observe a half-written trial and a
        failure rolls everything back.
        """
        trial.validate()
        with observe.span(
            "perfdmf.save_trial", application=application,
            experiment=experiment, trial=trial.name,
            events=trial.event_count, threads=trial.thread_count,
            metrics=len(trial.metrics), replace=replace,
        ) as sp, self._transaction():
            app_id = self._get_or_create("application", {"name": application})
            exp_id = self._get_or_create("experiment", {"app_id": app_id, "name": experiment})
            existing = self._conn.execute(
                "SELECT id FROM trial WHERE exp_id = ? AND name = ?", (exp_id, trial.name)
            ).fetchone()
            if existing:
                if not replace:
                    raise ProfileError(
                        f"trial {trial.name!r} already exists under "
                        f"{application}/{experiment} (pass replace=True to overwrite)"
                    )
                self._conn.execute("DELETE FROM trial WHERE id = ?", (existing[0],))
            cur = self._conn.execute(
                "INSERT INTO trial (exp_id, name, metadata) VALUES (?, ?, ?)",
                (exp_id, trial.name, json.dumps(trial.metadata, default=str)),
            )
            trial_id = cur.lastrowid

            event_ids = {}
            for ev in trial.events:
                c = self._conn.execute(
                    "INSERT INTO event (trial_id, name, grp) VALUES (?, ?, ?)",
                    (trial_id, ev.name, ev.group),
                )
                event_ids[ev.name] = c.lastrowid
            thread_ids = {}
            for th in trial.threads:
                c = self._conn.execute(
                    "INSERT INTO thread (trial_id, node, context, thread) VALUES (?, ?, ?, ?)",
                    (trial_id, th.node, th.context, th.thread),
                )
                thread_ids[th] = c.lastrowid

            events = trial.events
            threads = trial.threads
            for metric in trial.metrics:
                c = self._conn.execute(
                    "INSERT INTO metric (trial_id, name, units, derived) VALUES (?, ?, ?, ?)",
                    (trial_id, metric.name, metric.units, int(metric.derived)),
                )
                metric_id = c.lastrowid
                exc = trial.exclusive_array(metric.name)
                inc = trial.inclusive_array(metric.name)
                rows = [
                    (metric_id, event_ids[events[e].name], thread_ids[threads[t]],
                     float(exc[e, t]), float(inc[e, t]))
                    for e in range(len(events))
                    for t in range(len(threads))
                ]
                self._conn.executemany(
                    "INSERT INTO value VALUES (?, ?, ?, ?, ?)", rows
                )
                _stmt("insert", len(rows))
            calls = trial.calls_array()
            subrs = trial.subroutines_array()
            rows = [
                (event_ids[events[e].name], thread_ids[threads[t]],
                 float(calls[e, t]), float(subrs[e, t]))
                for e in range(len(events))
                for t in range(len(threads))
            ]
            self._conn.executemany("INSERT INTO callcount VALUES (?, ?, ?, ?)", rows)
            _stmt("insert", len(rows))
            sp.set(trial_id=trial_id)
        return trial_id

    # -- loading -------------------------------------------------------------
    def _trial_row(self, application: str, experiment: str, trial: str):
        row = self._conn.execute(
            """SELECT t.id, t.metadata FROM trial t
               JOIN experiment e ON t.exp_id = e.id
               JOIN application a ON e.app_id = a.id
               WHERE a.name = ? AND e.name = ? AND t.name = ?""",
            (application, experiment, trial),
        ).fetchone()
        if row is None:
            raise ProfileError(
                f"no trial {application!r}/{experiment!r}/{trial!r} in repository"
            )
        return row

    def load_trial(self, application: str, experiment: str, trial: str) -> Trial:
        """Reconstruct a :class:`Trial` from the repository."""
        with observe.span("perfdmf.load_trial", application=application,
                          experiment=experiment, trial=trial) as sp:
            out = self._load_trial(application, experiment, trial)
            sp.set(events=out.event_count, threads=out.thread_count,
                   metrics=len(out.metrics))
        return out

    def _load_trial(self, application: str, experiment: str, trial: str) -> Trial:
        trial_id, meta_json = self._trial_row(application, experiment, trial)
        out = Trial(trial, json.loads(meta_json))

        events = self._conn.execute(
            "SELECT id, name, grp FROM event WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        for _, name, grp in events:
            out.add_event(Event(name, grp))
        event_pos = {row[0]: i for i, row in enumerate(events)}

        threads = self._conn.execute(
            "SELECT id, node, context, thread FROM thread WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        for _, n, c, t in threads:
            out.add_thread(ThreadId(n, c, t))
        thread_pos = {row[0]: i for i, row in enumerate(threads)}

        metrics = self._conn.execute(
            "SELECT id, name, units, derived FROM metric WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        n_e, n_t = len(events), len(threads)
        for metric_id, name, units, derived in metrics:
            out.add_metric(Metric(name, units=units, derived=bool(derived)))
            exc = np.zeros((n_e, n_t))
            inc = np.zeros((n_e, n_t))
            for event_id, thread_id, x, i in self._conn.execute(
                "SELECT event_id, thread_id, exclusive, inclusive FROM value "
                "WHERE metric_id = ?",
                (metric_id,),
            ):
                exc[event_pos[event_id], thread_pos[thread_id]] = x
                inc[event_pos[event_id], thread_pos[thread_id]] = i
            out._exclusive[name][:, :] = exc
            out._inclusive[name][:, :] = inc

        if events:
            event_id_list = [row[0] for row in events]
            marks = ",".join("?" for _ in event_id_list)
            for event_id, thread_id, calls, subrs in self._conn.execute(
                f"SELECT event_id, thread_id, calls, subroutines FROM callcount "
                f"WHERE event_id IN ({marks})",
                event_id_list,
            ):
                out._calls[event_pos[event_id], thread_pos[thread_id]] = calls
                out._subrs[event_pos[event_id], thread_pos[thread_id]] = subrs
        _stmt("select", len(events) * len(threads) * max(len(metrics), 1))
        return out

    # -- listing --------------------------------------------------------------
    def applications(self) -> list[str]:
        return [r[0] for r in self._conn.execute(
            "SELECT name FROM application ORDER BY name")]

    def experiments(self, application: str) -> list[str]:
        return [r[0] for r in self._conn.execute(
            """SELECT e.name FROM experiment e JOIN application a
               ON e.app_id = a.id WHERE a.name = ? ORDER BY e.name""",
            (application,))]

    def trials(self, application: str, experiment: str) -> list[str]:
        return [r[0] for r in self._conn.execute(
            """SELECT t.name FROM trial t
               JOIN experiment e ON t.exp_id = e.id
               JOIN application a ON e.app_id = a.id
               WHERE a.name = ? AND e.name = ? ORDER BY t.id""",
            (application, experiment))]

    def delete_trial(self, application: str, experiment: str, trial: str) -> None:
        trial_id, _ = self._trial_row(application, experiment, trial)
        with observe.span("perfdmf.delete_trial", application=application,
                          experiment=experiment, trial=trial), \
                self._transaction():
            self._conn.execute("DELETE FROM trial WHERE id = ?", (trial_id,))
            _stmt("delete", 1)

    def trial_metadata(self, application: str, experiment: str, trial: str) -> dict[str, Any]:
        _, meta_json = self._trial_row(application, experiment, trial)
        return json.loads(meta_json)

    def trial_id(self, application: str, experiment: str, trial: str) -> int:
        """The integer primary key of a stored trial (raises if absent)."""
        return self._trial_row(application, experiment, trial)[0]
