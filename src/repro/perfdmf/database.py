"""SQLite-backed PerfDMF repository.

PerfDMF stores parallel profiles in a relational database so analyses can
span many experiments.  This module reproduces that design on
:mod:`sqlite3` (stdlib): a normalized schema with application/experiment/
trial/metric/event dimension tables and a single measurement fact table.

The repository is the system's durable store: the runtime simulator saves
trials here and PerfExplorer scripts load them back by
(application, experiment, trial) coordinates, exactly like the paper's
``Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8")``.

Concurrency model (what :mod:`repro.serve` builds on):

* **Connections are per-thread.**  A :class:`PerfDMF` instance may be
  shared freely across threads; each thread lazily opens its own
  ``sqlite3`` connection (``connection`` property), so no connection is
  ever used from two threads at once and ``sqlite3.ProgrammingError``
  cannot arise from sharing.
* **Writers serialize through WAL + busy_timeout.**  File-backed
  repositories run in WAL mode so readers proceed while a writer commits;
  ``busy_timeout`` makes contending writers queue instead of failing.
* **Read-only snapshot views.**  :meth:`read_view` returns a repository
  over the same database whose connections are opened read-only
  (``query_only``), which is what analysis workers get so a buggy job
  cannot mutate the store.
* **Change notification.**  :meth:`add_change_listener` observes trial
  saves/deletes — the serve layer's result cache invalidates on these.

In-memory repositories use a process-shared cache (``cache=shared`` URI)
with a unique name per instance, so per-thread connections still see one
database; real concurrent workloads should use a file-backed path.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from .. import observe
from .model import Event, Metric, ProfileError, ThreadId, Trial


def _stmt(kind: str, rows: int) -> None:
    """Count executed statements by class (insert/select/delete) and the
    rows they touched — the repository's query-mix telemetry."""
    if observe.enabled():
        observe.counter(f"perfdmf.stmt.{kind}").inc()
        observe.counter(f"perfdmf.rows.{kind}").inc(rows)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS application (
    id      INTEGER PRIMARY KEY,
    name    TEXT NOT NULL UNIQUE,
    metadata TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS experiment (
    id      INTEGER PRIMARY KEY,
    app_id  INTEGER NOT NULL REFERENCES application(id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    metadata TEXT NOT NULL DEFAULT '{}',
    UNIQUE (app_id, name)
);
CREATE TABLE IF NOT EXISTS trial (
    id      INTEGER PRIMARY KEY,
    exp_id  INTEGER NOT NULL REFERENCES experiment(id) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    metadata TEXT NOT NULL DEFAULT '{}',
    UNIQUE (exp_id, name)
);
CREATE TABLE IF NOT EXISTS metric (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    name     TEXT NOT NULL,
    units    TEXT NOT NULL DEFAULT 'counts',
    derived  INTEGER NOT NULL DEFAULT 0,
    UNIQUE (trial_id, name)
);
CREATE TABLE IF NOT EXISTS event (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    name     TEXT NOT NULL,
    grp      TEXT NOT NULL DEFAULT 'TAU_DEFAULT',
    UNIQUE (trial_id, name)
);
CREATE TABLE IF NOT EXISTS thread (
    id       INTEGER PRIMARY KEY,
    trial_id INTEGER NOT NULL REFERENCES trial(id) ON DELETE CASCADE,
    node     INTEGER NOT NULL,
    context  INTEGER NOT NULL,
    thread   INTEGER NOT NULL,
    UNIQUE (trial_id, node, context, thread)
);
CREATE TABLE IF NOT EXISTS value (
    metric_id  INTEGER NOT NULL REFERENCES metric(id) ON DELETE CASCADE,
    event_id   INTEGER NOT NULL REFERENCES event(id)  ON DELETE CASCADE,
    thread_id  INTEGER NOT NULL REFERENCES thread(id) ON DELETE CASCADE,
    exclusive  REAL NOT NULL,
    inclusive  REAL NOT NULL,
    PRIMARY KEY (metric_id, event_id, thread_id)
);
CREATE TABLE IF NOT EXISTS callcount (
    event_id   INTEGER NOT NULL REFERENCES event(id)  ON DELETE CASCADE,
    thread_id  INTEGER NOT NULL REFERENCES thread(id) ON DELETE CASCADE,
    calls      REAL NOT NULL,
    subroutines REAL NOT NULL,
    PRIMARY KEY (event_id, thread_id)
);
-- Covering indexes for the fact table.  The composite primary keys already
-- serve the metric_id-first (value) and event_id-first (callcount) paths;
-- these cover the other child-key lookups, which otherwise full-scan on
-- every cascading delete (trial replacement) and event/thread-scoped query.
CREATE INDEX IF NOT EXISTS idx_value_event     ON value(event_id);
CREATE INDEX IF NOT EXISTS idx_value_thread    ON value(thread_id);
CREATE INDEX IF NOT EXISTS idx_callcount_thread ON callcount(thread_id);
"""

#: Unique names for shared-cache in-memory databases (one per instance).
_MEMDB_IDS = itertools.count(1)


class PerfDMF:
    """A PerfDMF repository.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` (the default) for an ephemeral
        repository — handy in tests and in the single-process pipelines the
        examples run.
    read_only:
        Open every connection in query-only mode.  Writes raise
        ``sqlite3.OperationalError``; the schema must already exist.
    busy_timeout_ms:
        How long a connection waits on a locked database before giving
        up — the knob that lets concurrent writers queue politely.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        read_only: bool = False,
        busy_timeout_ms: int = 5_000,
    ) -> None:
        self._path = str(path)
        self._read_only = read_only
        self._busy_timeout_ms = busy_timeout_ms
        self._memory = self._path == ":memory:" or "mode=memory" in self._path
        if self._path == ":memory:":
            # A plain :memory: connection is invisible to other connections;
            # name it and share the cache so per-thread connections (and
            # read-only views) all see the same database.
            self._path = f"file:repro-memdb-{next(_MEMDB_IDS)}" \
                         "?mode=memory&cache=shared"
        self._local = threading.local()
        self._lock = threading.Lock()
        self._all_conns: list[sqlite3.Connection] = []
        self._listeners: list[Callable[[str, str, str, str], None]] = []
        self._closed = False
        # The anchor connection: created eagerly so an in-memory database
        # outlives any individual thread, and so schema errors surface at
        # construction time.
        anchor = self._connect()
        if not read_only:
            anchor.executescript(_SCHEMA)

    # -- connection management -------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        """Open, configure, and register this thread's connection."""
        uri = self._path.startswith("file:")
        target = self._path
        if self._read_only and not self._memory:
            target = f"file:{self._path}?mode=ro"
            uri = True
        # check_same_thread=False: affinity is enforced by construction
        # (each thread only ever sees its own thread-local connection) and
        # relaxing the check lets close() shut down every connection.
        conn = sqlite3.connect(
            target, isolation_level=None, uri=uri, check_same_thread=False
        )
        conn.execute("PRAGMA foreign_keys = ON")
        conn.execute(f"PRAGMA busy_timeout = {int(self._busy_timeout_ms)}")
        if self._memory:
            # Shared-cache databases use table-level locks that the busy
            # handler does not cover; uncommitted reads keep concurrent
            # in-memory use best-effort rather than error-prone.
            conn.execute("PRAGMA read_uncommitted = ON")
        else:
            if not self._read_only:
                # WAL lets concurrent readers proceed while a writer stores
                # a trial; NORMAL sync is durable enough for a profile cache
                # and much faster.
                conn.execute("PRAGMA journal_mode = WAL")
                conn.execute("PRAGMA synchronous = NORMAL")
        if self._read_only:
            conn.execute("PRAGMA query_only = ON")
        self._local.conn = conn
        with self._lock:
            if self._closed:
                conn.close()
                raise ProfileError("repository is closed")
            self._all_conns.append(conn)
        return conn

    @property
    def connection(self) -> sqlite3.Connection:
        """The *calling thread's* connection (created on first use).

        Companion subsystems such as :mod:`repro.regress` keep their own
        tables in the same file through this handle; because it is
        thread-local they inherit thread safety for free.
        """
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise ProfileError("repository is closed")
            conn = self._connect()
        return conn

    @property
    def path(self) -> str:
        """The database target (file path, or shared-cache URI for
        in-memory repositories)."""
        return self._path

    @property
    def read_only(self) -> bool:
        return self._read_only

    def read_view(self) -> "PerfDMF":
        """A read-only repository over the same database.

        This is what analysis workers get: snapshot connections that can
        load trials but cannot mutate the store.
        """
        return PerfDMF(
            self._path, read_only=True,
            busy_timeout_ms=self._busy_timeout_ms,
        )

    @contextmanager
    def _transaction(self):
        """Explicit transaction scope; rolls back on any exception."""
        conn = self.connection
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass
        self._local = threading.local()

    def __enter__(self) -> "PerfDMF":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- change notification ---------------------------------------------
    def add_change_listener(
        self, listener: Callable[[str, str, str, str], None]
    ) -> None:
        """Register ``listener(action, application, experiment, trial)``,
        called after a trial is stored (``"save"``) or deleted
        (``"delete"``).  The serve layer's result cache hangs off this."""
        self._listeners.append(listener)

    def remove_change_listener(self, listener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, action: str, application: str, experiment: str,
                trial: str) -> None:
        for listener in list(self._listeners):
            listener(action, application, experiment, trial)

    # -- hierarchy -------------------------------------------------------
    def _get_or_create(self, table: str, where: dict, defaults: dict | None = None) -> int:
        cols = list(where)
        row = self.connection.execute(
            f"SELECT id FROM {table} WHERE "
            + " AND ".join(f"{c} = ?" for c in cols),
            [where[c] for c in cols],
        ).fetchone()
        if row:
            return row[0]
        data = {**where, **(defaults or {})}
        cur = self.connection.execute(
            f"INSERT INTO {table} ({', '.join(data)}) VALUES "
            f"({', '.join('?' for _ in data)})",
            list(data.values()),
        )
        return cur.lastrowid

    def save_trial(
        self, application: str, experiment: str, trial: Trial, *, replace: bool = False
    ) -> int:
        """Persist ``trial`` under application/experiment. Returns trial id.

        The whole store — cascade-deleting a replaced trial included — is
        one transaction: readers never observe a half-written trial and a
        failure rolls everything back.
        """
        trial.validate()
        conn = self.connection
        with observe.span(
            "perfdmf.save_trial", application=application,
            experiment=experiment, trial=trial.name,
            events=trial.event_count, threads=trial.thread_count,
            metrics=len(trial.metrics), replace=replace,
        ) as sp, self._transaction():
            app_id = self._get_or_create("application", {"name": application})
            exp_id = self._get_or_create("experiment", {"app_id": app_id, "name": experiment})
            existing = conn.execute(
                "SELECT id FROM trial WHERE exp_id = ? AND name = ?", (exp_id, trial.name)
            ).fetchone()
            if existing:
                if not replace:
                    raise ProfileError(
                        f"trial {trial.name!r} already exists under "
                        f"{application}/{experiment} (pass replace=True to overwrite)"
                    )
                conn.execute("DELETE FROM trial WHERE id = ?", (existing[0],))
            cur = conn.execute(
                "INSERT INTO trial (exp_id, name, metadata) VALUES (?, ?, ?)",
                (exp_id, trial.name, json.dumps(trial.metadata, default=str)),
            )
            trial_id = cur.lastrowid

            event_ids = {}
            for ev in trial.events:
                c = conn.execute(
                    "INSERT INTO event (trial_id, name, grp) VALUES (?, ?, ?)",
                    (trial_id, ev.name, ev.group),
                )
                event_ids[ev.name] = c.lastrowid
            thread_ids = {}
            for th in trial.threads:
                c = conn.execute(
                    "INSERT INTO thread (trial_id, node, context, thread) VALUES (?, ?, ?, ?)",
                    (trial_id, th.node, th.context, th.thread),
                )
                thread_ids[th] = c.lastrowid

            events = trial.events
            threads = trial.threads
            for metric in trial.metrics:
                c = conn.execute(
                    "INSERT INTO metric (trial_id, name, units, derived) VALUES (?, ?, ?, ?)",
                    (trial_id, metric.name, metric.units, int(metric.derived)),
                )
                metric_id = c.lastrowid
                exc = trial.exclusive_array(metric.name)
                inc = trial.inclusive_array(metric.name)
                rows = [
                    (metric_id, event_ids[events[e].name], thread_ids[threads[t]],
                     float(exc[e, t]), float(inc[e, t]))
                    for e in range(len(events))
                    for t in range(len(threads))
                ]
                conn.executemany(
                    "INSERT INTO value VALUES (?, ?, ?, ?, ?)", rows
                )
                _stmt("insert", len(rows))
            calls = trial.calls_array()
            subrs = trial.subroutines_array()
            rows = [
                (event_ids[events[e].name], thread_ids[threads[t]],
                 float(calls[e, t]), float(subrs[e, t]))
                for e in range(len(events))
                for t in range(len(threads))
            ]
            conn.executemany("INSERT INTO callcount VALUES (?, ?, ?, ?)", rows)
            _stmt("insert", len(rows))
            sp.set(trial_id=trial_id)
        self._notify("save", application, experiment, trial.name)
        return trial_id

    # -- loading -------------------------------------------------------------
    def _trial_row(self, application: str, experiment: str, trial: str):
        row = self.connection.execute(
            """SELECT t.id, t.metadata FROM trial t
               JOIN experiment e ON t.exp_id = e.id
               JOIN application a ON e.app_id = a.id
               WHERE a.name = ? AND e.name = ? AND t.name = ?""",
            (application, experiment, trial),
        ).fetchone()
        if row is None:
            raise ProfileError(
                f"no trial {application!r}/{experiment!r}/{trial!r} in repository"
            )
        return row

    def load_trial(self, application: str, experiment: str, trial: str) -> Trial:
        """Reconstruct a :class:`Trial` from the repository."""
        with observe.span("perfdmf.load_trial", application=application,
                          experiment=experiment, trial=trial) as sp:
            out = self._load_trial(application, experiment, trial)
            sp.set(events=out.event_count, threads=out.thread_count,
                   metrics=len(out.metrics))
        return out

    def _load_trial(self, application: str, experiment: str, trial: str) -> Trial:
        conn = self.connection
        trial_id, meta_json = self._trial_row(application, experiment, trial)
        out = Trial(trial, json.loads(meta_json))

        events = conn.execute(
            "SELECT id, name, grp FROM event WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        out.add_events(Event(name, grp) for _, name, grp in events)
        event_pos = {row[0]: i for i, row in enumerate(events)}

        threads = conn.execute(
            "SELECT id, node, context, thread FROM thread WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        out.add_threads(ThreadId(n, c, t) for _, n, c, t in threads)
        thread_pos = {row[0]: i for i, row in enumerate(threads)}

        metrics = conn.execute(
            "SELECT id, name, units, derived FROM metric WHERE trial_id = ? ORDER BY id",
            (trial_id,),
        ).fetchall()
        n_e, n_t = len(events), len(threads)
        for metric_id, name, units, derived in metrics:
            out.add_metric(Metric(name, units=units, derived=bool(derived)))
            exc = np.zeros((n_e, n_t))
            inc = np.zeros((n_e, n_t))
            for event_id, thread_id, x, i in conn.execute(
                "SELECT event_id, thread_id, exclusive, inclusive FROM value "
                "WHERE metric_id = ?",
                (metric_id,),
            ):
                exc[event_pos[event_id], thread_pos[thread_id]] = x
                inc[event_pos[event_id], thread_pos[thread_id]] = i
            out._exclusive[name][:, :] = exc
            out._inclusive[name][:, :] = inc

        if events:
            event_id_list = [row[0] for row in events]
            marks = ",".join("?" for _ in event_id_list)
            for event_id, thread_id, calls, subrs in conn.execute(
                f"SELECT event_id, thread_id, calls, subroutines FROM callcount "
                f"WHERE event_id IN ({marks})",
                event_id_list,
            ):
                out._calls[event_pos[event_id], thread_pos[thread_id]] = calls
                out._subrs[event_pos[event_id], thread_pos[thread_id]] = subrs
        _stmt("select", len(events) * len(threads) * max(len(metrics), 1))
        return out

    # -- content addressing ---------------------------------------------------
    def content_hash(self, application: str, experiment: str, trial: str) -> str:
        """A digest of everything stored for one trial.

        Deliberately independent of row ids: re-uploading identical data
        (new primary keys) hashes the same, while any change to metadata,
        events, threads, metrics, values, or call counts changes the
        digest.  This is the trial component of the serve layer's
        content-addressed cache keys.
        """
        conn = self.connection
        trial_id, meta_json = self._trial_row(application, experiment, trial)
        h = hashlib.sha256()
        h.update(meta_json.encode())
        queries = (
            ("SELECT name, grp FROM event WHERE trial_id = ? "
             "ORDER BY name", (trial_id,)),
            ("SELECT node, context, thread FROM thread WHERE trial_id = ? "
             "ORDER BY node, context, thread", (trial_id,)),
            ("SELECT name, units, derived FROM metric WHERE trial_id = ? "
             "ORDER BY name", (trial_id,)),
            ("""SELECT m.name, e.name, t.node, t.context, t.thread,
                       v.exclusive, v.inclusive
                FROM value v
                JOIN metric m ON v.metric_id = m.id
                JOIN event  e ON v.event_id  = e.id
                JOIN thread t ON v.thread_id = t.id
                WHERE m.trial_id = ?
                ORDER BY m.name, e.name, t.node, t.context, t.thread""",
             (trial_id,)),
            ("""SELECT e.name, t.node, t.context, t.thread,
                       c.calls, c.subroutines
                FROM callcount c
                JOIN event  e ON c.event_id  = e.id
                JOIN thread t ON c.thread_id = t.id
                WHERE e.trial_id = ?
                ORDER BY e.name, t.node, t.context, t.thread""",
             (trial_id,)),
        )
        n_rows = 0
        for sql, params in queries:
            h.update(b"\x1d")
            for row in conn.execute(sql, params):
                h.update(repr(row).encode())
                h.update(b"\x1e")
                n_rows += 1
        _stmt("select", n_rows)
        return h.hexdigest()

    # -- listing --------------------------------------------------------------
    def applications(self) -> list[str]:
        return [r[0] for r in self.connection.execute(
            "SELECT name FROM application ORDER BY name")]

    def experiments(self, application: str) -> list[str]:
        return [r[0] for r in self.connection.execute(
            """SELECT e.name FROM experiment e JOIN application a
               ON e.app_id = a.id WHERE a.name = ? ORDER BY e.name""",
            (application,))]

    def trials(self, application: str, experiment: str) -> list[str]:
        return [r[0] for r in self.connection.execute(
            """SELECT t.name FROM trial t
               JOIN experiment e ON t.exp_id = e.id
               JOIN application a ON e.app_id = a.id
               WHERE a.name = ? AND e.name = ? ORDER BY t.id""",
            (application, experiment))]

    def delete_trial(self, application: str, experiment: str, trial: str) -> None:
        trial_id, _ = self._trial_row(application, experiment, trial)
        with observe.span("perfdmf.delete_trial", application=application,
                          experiment=experiment, trial=trial), \
                self._transaction():
            self.connection.execute("DELETE FROM trial WHERE id = ?", (trial_id,))
            _stmt("delete", 1)
        self._notify("delete", application, experiment, trial)

    def trial_metadata(self, application: str, experiment: str, trial: str) -> dict[str, Any]:
        _, meta_json = self._trial_row(application, experiment, trial)
        return json.loads(meta_json)

    def trial_id(self, application: str, experiment: str, trial: str) -> int:
        """The integer primary key of a stored trial (raises if absent)."""
        return self._trial_row(application, experiment, trial)[0]
