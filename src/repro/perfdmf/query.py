"""The ``Utilities`` facade: how analysis scripts address the repository.

The paper's Jython scripts load data with
``Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8")``.  This module
provides the same entry points over a process-global default repository
(swappable for tests and multi-repository workflows).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .database import PerfDMF
from .model import ProfileError, Trial

_default_repository: PerfDMF | None = None


def set_default_repository(repo: PerfDMF | None) -> None:
    """Install the repository :class:`Utilities` resolves against."""
    global _default_repository
    _default_repository = repo


def get_default_repository() -> PerfDMF:
    """The active repository, creating an in-memory one on first use."""
    global _default_repository
    if _default_repository is None:
        _default_repository = PerfDMF()
    return _default_repository


class Utilities:
    """Static-style query API mirroring PerfExplorer's script interface."""

    @staticmethod
    def getTrial(application: str, experiment: str, trial: str) -> Trial:
        """Load one trial (the paper's Fig. 1 call, verbatim)."""
        return get_default_repository().load_trial(application, experiment, trial)

    @staticmethod
    def getTrials(application: str, experiment: str) -> list[Trial]:
        """Load every trial of an experiment, in insertion order."""
        repo = get_default_repository()
        return [
            repo.load_trial(application, experiment, t)
            for t in repo.trials(application, experiment)
        ]

    @staticmethod
    def saveTrial(application: str, experiment: str, trial: Trial, *, replace: bool = False) -> int:
        return get_default_repository().save_trial(
            application, experiment, trial, replace=replace
        )

    @staticmethod
    def listApplications() -> list[str]:
        return get_default_repository().applications()

    @staticmethod
    def listExperiments(application: str) -> list[str]:
        return get_default_repository().experiments(application)

    @staticmethod
    def listTrials(application: str, experiment: str) -> list[str]:
        return get_default_repository().trials(application, experiment)

    @staticmethod
    def getMetadata(application: str, experiment: str, trial: str) -> dict:
        return get_default_repository().trial_metadata(application, experiment, trial)
