"""Storing interval profile snapshots as PerfDMF sub-trials.

A :class:`~repro.runtime.snapshot.SnapshotProfiler` cuts one
:class:`~repro.perfdmf.Trial` per application phase.  PerfDMF's hierarchy
has no sub-trial concept, so intervals are stored as ordinary trials under
a *derived experiment* named after the parent run
(``"<experiment>/<trial>@intervals"``).  That keeps every consumer working
unchanged — statistics and correlation operations load interval trials like
any other, and the regression sentinel can baseline/check an individual
interval (e.g. "iteration 7 regressed" instead of "the run regressed").
"""

from __future__ import annotations

from .database import PerfDMF
from .model import Trial

__all__ = [
    "interval_experiment",
    "store_interval_trials",
    "load_interval_trials",
]

#: Suffix marking a derived experiment that holds interval sub-trials.
INTERVAL_SUFFIX = "@intervals"


def interval_experiment(experiment: str, trial: str) -> str:
    """Name of the derived experiment holding ``experiment/trial``'s
    interval snapshots."""
    return f"{experiment}/{trial}{INTERVAL_SUFFIX}"


def store_interval_trials(
    db: PerfDMF,
    application: str,
    experiment: str,
    parent_trial: str,
    snapshots: list[Trial],
    *,
    replace: bool = True,
) -> list[int]:
    """Persist snapshot sub-trials; returns their trial ids in order."""
    derived = interval_experiment(experiment, parent_trial)
    ids = []
    for snap in snapshots:
        stamped = snap.copy()
        stamped.metadata.setdefault("parent_trial", parent_trial)
        stamped.metadata.setdefault("parent_experiment", experiment)
        ids.append(db.save_trial(application, derived, stamped, replace=replace))
    return ids


def load_interval_trials(
    db: PerfDMF, application: str, experiment: str, parent_trial: str
) -> list[Trial]:
    """Load a run's interval sub-trials in snapshot order."""
    derived = interval_experiment(experiment, parent_trial)
    names = sorted(db.trials(application, derived))
    return [db.load_trial(application, derived, n) for n in names]
