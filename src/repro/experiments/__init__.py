"""repro.experiments: declarative experiment orchestration.

The volume driver the knowledge layer was built for (ROADMAP item 3):
declarative specs (factors × vectors → content-addressed cases), a DAG
orchestrator submitting generate→run→collect→analyze jobs to
:mod:`repro.serve` with bounded fan-out and resumable state in the
PerfDMF file, and an adaptive rigor loop that reruns each case until its
confidence interval is tight enough — or flags it non-converged for the
``experiment-rules`` rulebase to critique.

Quick start::

    from repro import observe
    from repro.experiments import ExperimentSpec
    from repro.workflows import run_experiment

    spec = ExperimentSpec.from_toml("examples/msa_sweep.toml")
    result = run_experiment(spec, db_path="sweep.db")
    observe.echo(str(result.summary()))

(``observe.echo`` writes through the event log's console sink — the
same treatment rule ``echo`` output gets — so harnesses and the CLI can
capture or redirect it; a bare ``print`` cannot be.)
"""

from .orchestrator import CaseOutcome, ExperimentResult, Orchestrator
from .report import render_report, render_status
from .rigor import (
    Assessment,
    RigorPolicy,
    assess,
    drop_outliers,
    modified_zscores,
    t_critical,
)
from .spec import Case, ExperimentSpec, Plan, SpecError, case_rng, case_seed
from .state import (
    CaseRecord,
    ExperimentState,
    EXPERIMENTS_SCHEMA_VERSION,
    TERMINAL_CASE_STATUSES,
    ensure_experiments_schema,
)
from .summary import summary_fact
from .synthetic import run_synthetic_trial

__all__ = [
    "Assessment",
    "Case",
    "CaseOutcome",
    "CaseRecord",
    "EXPERIMENTS_SCHEMA_VERSION",
    "ExperimentResult",
    "ExperimentSpec",
    "ExperimentState",
    "Orchestrator",
    "Plan",
    "RigorPolicy",
    "SpecError",
    "TERMINAL_CASE_STATUSES",
    "assess",
    "case_rng",
    "case_seed",
    "drop_outliers",
    "ensure_experiments_schema",
    "modified_zscores",
    "render_report",
    "render_status",
    "run_synthetic_trial",
    "summary_fact",
    "t_critical",
]
