"""Adaptive statistical rigor: how many runs does a case deserve?

bentoo-style experiment layers fix the run count up front; this module
makes it adaptive.  Each case starts at ``min_runs`` repetitions, and the
orchestrator keeps adding runs until the Student-t confidence-interval
half-width of the key metric drops below a spec-declared relative
threshold — or the ``max_runs`` cap is hit, in which case the case is
flagged **non-converged** (a first-class outcome the knowledge layer
critiques, not a silent failure).

Outliers (OS jitter, a cold first run) are removed before the interval
is computed, using the modified z-score on the median absolute
deviation — robust at the tiny sample sizes experiment reruns live at —
with the conventional |M| > 3.5 cut-off.

Everything here is pure computation on sample vectors; the t critical
value is found by bisecting the repo's own stdlib-only
:func:`~repro.core.operations.statistics.student_t_sf`, so no SciPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.operations.statistics import student_t_sf

__all__ = [
    "Assessment",
    "RigorPolicy",
    "assess",
    "drop_outliers",
    "modified_zscores",
    "t_critical",
]

#: Conventional modified-z-score cut (Iglewicz & Hoaglin).
DEFAULT_OUTLIER_ZSCORE = 3.5


def modified_zscores(samples: Sequence[float]) -> list[float]:
    """Modified z-score of each sample: 0.6745·(x−median)/MAD.

    With MAD == 0 (identical or near-identical samples) every score is 0
    — nothing is an outlier among clones.
    """
    xs = [float(x) for x in samples]
    if not xs:
        return []
    med = _median(xs)
    mad = _median([abs(x - med) for x in xs])
    if mad == 0.0:
        return [0.0] * len(xs)
    return [0.6745 * (x - med) / mad for x in xs]


def _median(xs: list[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def drop_outliers(
    samples: Sequence[float], *,
    zmax: float = DEFAULT_OUTLIER_ZSCORE,
) -> tuple[list[float], list[int]]:
    """(kept samples, dropped indices).  Needs ≥ 4 samples to drop any —
    below that the median is too weak to call anything an outlier."""
    xs = [float(x) for x in samples]
    if len(xs) < 4:
        return xs, []
    scores = modified_zscores(xs)
    dropped = [i for i, m in enumerate(scores) if abs(m) > zmax]
    if len(dropped) >= len(xs) - 1:
        # Refuse to reduce a sample to a single point; keep everything.
        return xs, []
    kept = [x for i, x in enumerate(xs) if i not in set(dropped)]
    return kept, dropped


def t_critical(confidence: float, dof: float) -> float:
    """Two-sided Student-t critical value at ``confidence`` (e.g. 0.95),
    by bisection on the repo's survival function."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if dof <= 0:
        raise ValueError(f"dof must be positive, got {dof}")
    alpha = 1.0 - confidence
    lo, hi = 0.0, 2.0
    while student_t_sf(hi, dof) > alpha:
        hi *= 2.0
        if hi > 1e8:  # pragma: no cover - absurd confidence levels
            return hi
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if student_t_sf(mid, dof) > alpha:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10 * max(1.0, hi):
            break
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class RigorPolicy:
    """Spec-declared convergence contract for every case."""

    confidence: float = 0.95
    #: CI half-width / |mean| below which a case has converged.
    relative_halfwidth: float = 0.10
    min_runs: int = 3
    max_runs: int = 8
    outlier_zscore: float = DEFAULT_OUTLIER_ZSCORE
    #: Lognormal measurement-noise sigma injected per run (0 = none).
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.relative_halfwidth <= 0:
            raise ValueError("relative_halfwidth must be positive")
        if self.min_runs < 1:
            raise ValueError("min_runs must be >= 1")
        if self.max_runs < self.min_runs:
            raise ValueError("max_runs must be >= min_runs")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "confidence": self.confidence,
            "relative_halfwidth": self.relative_halfwidth,
            "min_runs": self.min_runs,
            "max_runs": self.max_runs,
            "outlier_zscore": self.outlier_zscore,
            "noise": self.noise,
        }


@dataclass(frozen=True)
class Assessment:
    """Where one case stands against its rigor policy."""

    n: int
    mean: float
    halfwidth: float
    rel_halfwidth: float
    converged: bool
    #: Sample indices removed as outliers before the interval.
    outliers: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "mean": self.mean,
            "halfwidth": self.halfwidth,
            "rel_halfwidth": self.rel_halfwidth,
            "converged": self.converged,
            "outliers": list(self.outliers),
        }


def assess(samples: Sequence[float], policy: RigorPolicy) -> Assessment:
    """Judge a case's sample vector against its policy.

    A single repetition (``min_runs == 1``) converges trivially — there
    is no interval to shrink.  Otherwise the CI half-width uses the
    outlier-cleaned samples and n−1 degrees of freedom.
    """
    kept, dropped = drop_outliers(samples, zmax=policy.outlier_zscore)
    n = len(kept)
    if n == 0:
        return Assessment(0, math.nan, math.inf, math.inf, False)
    mean = sum(kept) / n
    if n == 1:
        converged = policy.min_runs <= 1
        hw = 0.0 if converged else math.inf
        return Assessment(1, mean, hw, hw, converged, tuple(dropped))
    var = sum((x - mean) ** 2 for x in kept) / (n - 1)
    hw = t_critical(policy.confidence, n - 1) * math.sqrt(var / n)
    rel = hw / abs(mean) if mean != 0.0 else (0.0 if hw == 0.0 else math.inf)
    converged = n >= policy.min_runs and rel <= policy.relative_halfwidth
    return Assessment(n, mean, hw, rel, converged, tuple(dropped))
