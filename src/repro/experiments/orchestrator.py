"""The experiment orchestrator: plan → jobs over ``repro.serve``.

Each case becomes a small DAG — a batch of ``run-trial`` jobs (one per
rerun), an assessment against the spec's rigor policy, possibly more
reruns, and a final ``analyze-case`` job once the case converges::

    case ──► run-trial × min_runs ──► assess ──┬─ converged ─► analyze-case
                 ▲                             │
                 └──── one more rerun ◄── not converged, runs < max_runs
                                               │
                                               └─ runs == max_runs ─► flagged
                                                  non-converged

The orchestrator is a single-threaded event loop over a serve client
(in-process :class:`~repro.serve.Client` or a
:class:`~repro.serve.SocketClient` — one socket is sequential, so no
client locking is needed): it keeps at most ``max_in_flight`` cases
active, submits each case's rerun batch in **one** round trip via
``submit_many``, polls job status, and banks every completed sample in
:class:`~repro.experiments.state.ExperimentState` *before* deciding the
next step — so a kill at any instant loses at most in-flight jobs, never
banked reruns, and a resume skips terminal cases entirely.

Failures retry per rerun (``case_retries``); a rerun that exhausts its
budget fails the whole case, which a later resume retries from its
banked samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import observe
from ..observe.context import TraceContext, make_span, new_span_id
from ..rules import Fact
from ..version import version_key
from .rigor import Assessment, assess
from .spec import Case, Plan
from .state import ExperimentState, TERMINAL_CASE_STATUSES

__all__ = ["CaseOutcome", "ExperimentResult", "Orchestrator"]

_TERMINAL_JOB = ("done", "failed", "timeout", "cancelled")


@dataclass
class CaseOutcome:
    """How one case ended this orchestrator run."""

    case_key: str
    factors: dict[str, Any]
    status: str
    runs: int
    samples: list[float]
    assessment: dict[str, Any] | None = None
    analysis: dict[str, Any] | None = None
    error: str | None = None
    #: run-trial jobs this session actually executed (0 on pure resume).
    executed: int = 0
    #: The case's distributed trace (None when tracing is off).
    trace_id: str | None = None

    @property
    def short(self) -> str:
        return self.case_key[:12]

    def to_dict(self) -> dict[str, Any]:
        return {
            "case_key": self.case_key, "short": self.short,
            "factors": self.factors, "status": self.status,
            "runs": self.runs, "samples": self.samples,
            "assessment": self.assessment, "analysis": self.analysis,
            "error": self.error, "executed": self.executed,
            "trace_id": self.trace_id,
        }


@dataclass
class ExperimentResult:
    """The orchestrator's account of one (possibly resumed) sweep."""

    run_id: int
    spec_name: str
    spec_hash: str
    outcomes: list[CaseOutcome] = field(default_factory=list)
    #: Cases already terminal when this session started.
    skipped: int = 0
    wall_seconds: float = 0.0
    min_runs: int = 1
    #: Stitched timeline spans across the whole run (tracing mode):
    #: one ``exp.run`` root, one ``exp.case`` root per executed case,
    #: and underneath those every service/worker span of every job.
    spans: list[dict[str, Any]] = field(default_factory=list, repr=False)

    def count(self, status: str) -> int:
        return sum(o.status == status for o in self.outcomes)

    @property
    def executed_runs(self) -> int:
        return sum(o.executed for o in self.outcomes)

    def summary(self) -> dict[str, Any]:
        total_runs = sum(o.runs for o in self.outcomes)
        reruns = sum(max(0, o.runs - self.min_runs) for o in self.outcomes)
        return {
            "run_id": self.run_id,
            "spec": self.spec_name,
            "spec_hash": self.spec_hash,
            "cases": len(self.outcomes),
            "skipped": self.skipped,
            "converged": self.count("converged"),
            "non_converged": self.count("non-converged"),
            "failed": self.count("failed"),
            "total_runs": total_runs,
            "reruns": reruns,
            "executed_runs": self.executed_runs,
            "outliers": sum(len((o.assessment or {}).get("outliers", []))
                            for o in self.outcomes),
            "wall_seconds": self.wall_seconds,
        }

    def fact(self) -> Fact:
        """The knowledge layer's view: one ``ExperimentSummaryFact``."""
        s = self.summary()
        cases = s["cases"] or 1
        return Fact(
            "ExperimentSummaryFact",
            spec=s["spec"],
            cases=s["cases"],
            skipped=s["skipped"],
            converged=s["converged"],
            nonConverged=s["non_converged"],
            failed=s["failed"],
            totalRuns=s["total_runs"],
            reruns=s["reruns"],
            rerunRate=s["reruns"] / cases,
            outliers=s["outliers"],
        )

    def diagnose(self):
        """Run the ``experiment-rules`` rulebase over this result."""
        from ..core.harness import RuleHarness

        harness = RuleHarness("experiment-rules")
        harness.assertObjects([self.fact()])
        harness.processRules()
        return harness

    def export_trace(self, path) -> int:
        """Write the run's stitched spans as one Chrome ``trace_event``
        file (load in ``chrome://tracing`` / Perfetto).  Returns the
        span count; raises if the run was not traced."""
        from ..observe.export import write_timeline_chrome

        if not self.spans:
            raise ValueError(
                "no spans collected — run the Orchestrator with trace=True"
            )
        write_timeline_chrome(
            self.spans, path,
            label=f"experiment {self.spec_name} run {self.run_id}",
        )
        return len(self.spans)


class _Tracker:
    """One active case's in-flight bookkeeping."""

    def __init__(self, case: Case, samples: list[float],
                 trials: list[str], case_retries: int,
                 trace_ctx: TraceContext | None = None) -> None:
        self.case = case
        self.samples = list(samples)
        self.trials = list(trials)
        #: job_id -> rerun index, for outstanding run-trial jobs.
        self.jobs: dict[int, int] = {}
        #: rerun index -> resubmissions remaining.
        self.retries_left: dict[int, int] = {}
        self.executed = 0
        self.analyze_job: int | None = None
        self.analysis: dict[str, Any] | None = None
        self.failed_error: str | None = None
        self.final_assessment: Assessment | None = None
        self._default_retries = case_retries
        #: This case's trace: every job it submits hangs under one
        #: ``exp.case`` root span (tracing mode only).
        self.trace_ctx = trace_ctx
        self.span_id = new_span_id() if trace_ctx else None
        self.started_wall = time.time()
        #: Every job id this case ever submitted (for span collection).
        self.all_jobs: list[int] = []

    def job_trace(self) -> dict[str, str] | None:
        """The wire trace context this case's jobs submit under."""
        if self.trace_ctx is None:
            return None
        return {"trace_id": self.trace_ctx.trace_id,
                "parent_span_id": self.span_id}

    def retries(self, rerun: int) -> int:
        return self.retries_left.setdefault(rerun, self._default_retries)


class Orchestrator:
    """Drive one plan to completion over a serve client.

    Parameters
    ----------
    client:
        ``Client`` or ``SocketClient`` — anything with ``submit_many``
        and ``status``.
    state:
        :class:`ExperimentState` over the same repository the service
        writes trials to.
    plan:
        The expanded spec.
    max_in_flight:
        Cases being worked on concurrently (each holds at most a few
        outstanding jobs, so queue pressure ≈ this × min_runs).
    case_retries:
        Resubmissions per rerun before the case fails.
    analyze:
        Submit an ``analyze-case`` job for each converged case.
    trace:
        Thread one distributed trace per case: every job a case submits
        carries that case's trace context, and after each case finishes
        its stitched spans (client → queue → worker → handler) are
        pulled back via ``client.explain_job`` and parented under an
        ``exp.case`` root span.  The whole run — reruns, assessments,
        analyses — then exports as a single Chrome trace via
        :meth:`ExperimentResult.export_trace`.
    """

    def __init__(
        self,
        client,
        state: ExperimentState,
        plan: Plan,
        *,
        max_in_flight: int = 8,
        case_retries: int = 1,
        poll_interval: float = 0.01,
        analyze: bool = True,
        trace: bool = False,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.client = client
        self.state = state
        self.plan = plan
        self.max_in_flight = max(1, int(max_in_flight))
        self.case_retries = max(0, int(case_retries))
        self.poll_interval = poll_interval
        self.analyze = analyze
        self.trace = trace and hasattr(client, "explain_job")
        self._progress = progress or (lambda msg: None)

    # -- the loop ----------------------------------------------------------
    def run(self) -> ExperimentResult:
        started = time.monotonic()
        spec = self.plan.spec
        run_id = self.state.begin_run(self.plan)
        records = {r.case_key: r for r in self.state.cases(run_id)}
        result = ExperimentResult(
            run_id=run_id, spec_name=spec.name,
            spec_hash=self.plan.spec_hash,
            min_runs=spec.rigor.min_runs,
        )
        pending: list[Case] = []
        for case in self.plan.cases:
            rec = records[case.key]
            if rec.status in TERMINAL_CASE_STATUSES:
                result.skipped += 1
                result.outcomes.append(CaseOutcome(
                    case_key=case.key, factors=dict(case.factors),
                    status=rec.status, runs=rec.runs,
                    samples=list(rec.samples),
                    assessment=None if rec.mean is None else {
                        "n": rec.runs, "mean": rec.mean,
                        "halfwidth": rec.halfwidth,
                        "rel_halfwidth": rec.rel_halfwidth,
                        "converged": rec.status == "converged",
                        "outliers": [],
                    },
                ))
            else:
                pending.append(case)
        observe.event("exp.run", spec=spec.name, run_id=run_id,
                      cases=len(self.plan.cases), skipped=result.skipped)
        self._progress(
            f"run {run_id}: {len(pending)} case(s) to execute, "
            f"{result.skipped} already terminal (skipped)"
        )
        active: dict[str, _Tracker] = {}
        run_ctx = TraceContext.mint() if self.trace else None
        run_span_id = new_span_id() if self.trace else None
        run_start_wall = time.time()
        with observe.span("exp.orchestrate", spec=spec.name,
                          run_id=run_id, cases=len(pending)):
            while pending or active:
                while pending and len(active) < self.max_in_flight:
                    self._activate(run_id, pending.pop(0), records, active,
                                   result)
                if not active:
                    continue
                progressed = self._poll(run_id, active, result)
                if not progressed:
                    time.sleep(self.poll_interval)
        result.wall_seconds = time.monotonic() - started
        if self.trace:
            result.spans.append(make_span(
                run_ctx.trace_id, "exp.run",
                run_start_wall, time.time(),
                span_id=run_span_id, process="orchestrator",
                spec=spec.name, run=run_id,
                cases=len(result.outcomes), skipped=result.skipped,
            ))
        observe.event("exp.run.done", spec=spec.name,
                      **{k: v for k, v in result.summary().items()
                         if k != "spec" and isinstance(v, (int, float))})
        return result

    # -- case activation ---------------------------------------------------
    def _activate(self, run_id: int, case: Case, records, active,
                  result: ExperimentResult) -> None:
        rec = records[case.key]
        tracker = _Tracker(case, rec.samples, rec.trials, self.case_retries,
                           TraceContext.mint() if self.trace else None)
        policy = self.plan.spec.rigor
        if len(tracker.samples) >= policy.min_runs:
            # Banked samples from an interrupted session may already
            # satisfy the policy — never re-execute what converged.
            assessment = assess(tracker.samples, policy)
            if assessment.converged or len(tracker.samples) >= \
                    policy.max_runs:
                self.state.mark_running(run_id, case.key)
                active[case.key] = tracker
                self._conclude(run_id, tracker, assessment, active, result)
                return
        self.state.mark_running(run_id, case.key)
        active[case.key] = tracker
        need = max(policy.min_runs - len(tracker.samples), 1)
        self._submit_reruns(tracker, range(len(tracker.trials),
                                           len(tracker.trials) + need))

    def _submit_reruns(self, tracker: _Tracker, reruns) -> None:
        spec = self.plan.spec
        versions = version_key()
        requests = [{
            "kind": "run-trial",
            "params": {
                "app": spec.app,
                "application": spec.application,
                "experiment": spec.experiment_name,
                "case_key": tracker.case.key,
                "rerun": int(rerun),
                "factors": dict(tracker.case.factors),
                "metric": spec.metric,
                "key_event": spec.key_event,
                "noise": spec.rigor.noise,
                "spec": spec.name,
                "code_version": versions.code,
                "rulebase_version": versions.rulebase,
            },
        } for rerun in reruns]
        if not requests:
            return
        trace = tracker.job_trace()
        if trace is not None:
            for req in requests:
                req["trace"] = trace
        submitted = self.client.submit_many(requests, block=True)
        for req, job in zip(requests, submitted):
            rerun = req["params"]["rerun"]
            if "error" in job and "id" not in job:
                tracker.failed_error = f"submit failed: {job['error']}"
                continue
            tracker.jobs[job["id"]] = rerun
            tracker.all_jobs.append(job["id"])

    # -- polling -----------------------------------------------------------
    def _poll(self, run_id: int, active: dict[str, _Tracker],
              result: ExperimentResult) -> bool:
        progressed = False
        for key in list(active):
            tracker = active[key]
            for job_id in list(tracker.jobs):
                job = self.client.status(job_id)
                if job["status"] not in _TERMINAL_JOB:
                    continue
                progressed = True
                rerun = tracker.jobs.pop(job_id)
                if job["status"] == "done":
                    payload = job["result"]
                    tracker.executed += 1
                    if payload["trial"] not in tracker.trials:
                        tracker.trials.append(payload["trial"])
                        tracker.samples.append(float(payload["value"]))
                        self.state.record_sample(
                            run_id, key, payload["trial"],
                            float(payload["value"]),
                        )
                elif tracker.retries(rerun) > 0:
                    tracker.retries_left[rerun] -= 1
                    self._submit_reruns(tracker, [rerun])
                else:
                    tracker.failed_error = (
                        f"rerun {rerun} {job['status']}: {job['error']}"
                    )
            if tracker.analyze_job is not None:
                job = self.client.status(tracker.analyze_job)
                if job["status"] in _TERMINAL_JOB:
                    progressed = True
                    tracker.analyze_job = None
                    if job["status"] == "done":
                        tracker.analysis = job["result"]
                    self._finish_case(run_id, tracker, active, result)
                continue
            if tracker.jobs:
                continue
            # No outstanding work: decide the case's next step.
            if tracker.failed_error is not None:
                progressed = True
                self.state.finalize_case(run_id, key, "failed",
                                         error=tracker.failed_error)
                self._emit(run_id, tracker, "failed", None, active, result)
                continue
            policy = self.plan.spec.rigor
            assessment = assess(tracker.samples, policy)
            if assessment.converged or \
                    len(tracker.samples) >= policy.max_runs:
                progressed = True
                self._conclude(run_id, tracker, assessment, active, result)
            else:
                progressed = True
                self._submit_reruns(tracker, [len(tracker.trials)])
        return progressed

    # -- conclusions -------------------------------------------------------
    def _conclude(self, run_id: int, tracker: _Tracker,
                  assessment: Assessment, active, result) -> None:
        status = "converged" if assessment.converged else "non-converged"
        self.state.finalize_case(run_id, tracker.case.key, status,
                                 assessment)
        if status == "converged" and self.analyze and tracker.trials:
            spec = self.plan.spec
            request = {
                "kind": "analyze-case",
                "params": {
                    "application": spec.application,
                    "experiment": spec.experiment_name,
                    "trials": list(tracker.trials),
                    "metric": spec.metric,
                    "key_event": spec.key_event,
                },
            }
            trace = tracker.job_trace()
            if trace is not None:
                request["trace"] = trace
            submitted = self.client.submit_many([request], block=True)
            job = submitted[0]
            if "id" in job:
                # Defer the outcome until the analysis lands.
                tracker.analyze_job = job["id"]
                tracker.all_jobs.append(job["id"])
                tracker.final_assessment = assessment
                return
        self._emit(run_id, tracker, status, assessment, active, result)

    def _finish_case(self, run_id: int, tracker: _Tracker, active,
                     result) -> None:
        assessment = tracker.final_assessment
        status = "converged" if assessment and assessment.converged \
            else "non-converged"
        self._emit(run_id, tracker, status, assessment, active, result)

    def _emit(self, run_id: int, tracker: _Tracker, status: str,
              assessment: Assessment | None, active, result) -> None:
        active.pop(tracker.case.key, None)
        if tracker.trace_ctx is not None:
            self._collect_case_spans(tracker, status, result)
        result.outcomes.append(CaseOutcome(
            case_key=tracker.case.key,
            factors=dict(tracker.case.factors),
            status=status,
            runs=len(tracker.samples),
            samples=list(tracker.samples),
            assessment=assessment.to_dict() if assessment else None,
            analysis=tracker.analysis,
            error=tracker.failed_error,
            executed=tracker.executed,
            trace_id=tracker.trace_ctx.trace_id
            if tracker.trace_ctx else None,
        ))
        observe.event("exp.case", case=tracker.case.short, status=status,
                      runs=len(tracker.samples), executed=tracker.executed)
        self._progress(
            f"  case {tracker.case.short} {status} "
            f"({len(tracker.samples)} run(s), {tracker.executed} executed)"
        )

    def _collect_case_spans(self, tracker: _Tracker, status: str,
                            result: ExperimentResult) -> None:
        """Pull each finished job's stitched timeline back from the
        service and hang the lot under one ``exp.case`` root span."""
        for job_id in tracker.all_jobs:
            try:
                explain = self.client.explain_job(job_id)
            except Exception:  # noqa: BLE001 - tracing must not fail the run
                continue
            result.spans.extend(explain.get("spans") or [])
        result.spans.append(make_span(
            tracker.trace_ctx.trace_id, "exp.case",
            tracker.started_wall, time.time(),
            span_id=tracker.span_id,
            process=f"case {tracker.case.short}",
            case=tracker.case.short, status=status,
            runs=len(tracker.samples), jobs=len(tracker.all_jobs),
        ))
