"""Resumable experiment state: side tables in the PerfDMF file.

An experiment run must survive the orchestrator dying mid-sweep — the
CI smoke test literally ``kill -9``'s the service and resumes.  Like the
regress baseline registry, the state lives in the same SQLite file as
the trials it indexes (one artifact to ship, state cascades away with
its repository) and is versioned independently of the core schema via
``exp_meta.version`` with in-place migrations.

One ``exp_run`` row per spec content hash; one ``exp_case`` row per
content-addressed case key under it.  Case rows carry the full sample
history (values + trial names as JSON), so resume is pure bookkeeping:
terminal cases (``converged`` / ``non-converged``) are skipped outright,
``failed`` cases are retried, and cases left ``running`` by a crash are
reset to ``pending`` — their partial samples kept, so already-banked
reruns are never re-executed.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..perfdmf import PerfDMF, ProfileError
from .rigor import Assessment
from .spec import Plan

__all__ = [
    "CaseRecord",
    "ExperimentState",
    "ensure_experiments_schema",
    "EXPERIMENTS_SCHEMA_VERSION",
    "TERMINAL_CASE_STATUSES",
]

#: Current version of the experiments-side schema.
EXPERIMENTS_SCHEMA_VERSION = 1

#: Case statuses that resume never re-executes.
TERMINAL_CASE_STATUSES = frozenset({"converged", "non-converged"})

_V1_TABLES = """
CREATE TABLE IF NOT EXISTS exp_meta (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS exp_run (
    id         INTEGER PRIMARY KEY,
    spec_hash  TEXT NOT NULL UNIQUE,
    name       TEXT NOT NULL,
    spec_json  TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS exp_case (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES exp_run(id) ON DELETE CASCADE,
    case_key      TEXT NOT NULL,
    case_index    INTEGER NOT NULL,
    factors       TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    runs          INTEGER NOT NULL DEFAULT 0,
    outliers      INTEGER NOT NULL DEFAULT 0,
    mean          REAL,
    halfwidth     REAL,
    rel_halfwidth REAL,
    samples       TEXT NOT NULL DEFAULT '[]',
    trials        TEXT NOT NULL DEFAULT '[]',
    error         TEXT,
    UNIQUE(run_id, case_key)
);
CREATE INDEX IF NOT EXISTS idx_exp_case_run ON exp_case(run_id);
"""

#: version N → callable upgrading the schema from N to N+1.
_MIGRATIONS: dict[int, Any] = {}


def _retry_locked(fn: Callable[[], Any], *, timeout: float = 5.0) -> Any:
    """Run ``fn``, retrying on SQLITE_LOCKED/SQLITE_BUSY.

    File-backed repositories resolve write contention via WAL plus the
    busy timeout, but shared-cache ``:memory:`` databases (what an
    in-process thread-mode service uses) raise table-lock errors
    *immediately* while a worker holds a write — so the orchestrator's
    bookkeeping writes retry briefly instead.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            msg = str(exc)
            if ("locked" not in msg and "busy" not in msg) \
                    or time.monotonic() >= deadline:
                raise
            time.sleep(0.005)


def ensure_experiments_schema(db: PerfDMF) -> int:
    """Create or upgrade the experiments tables; returns the version."""
    conn = db.connection
    conn.executescript(_V1_TABLES)
    row = conn.execute("SELECT version FROM exp_meta").fetchone()
    if row is None:
        conn.execute("INSERT INTO exp_meta (version) VALUES (?)",
                     (EXPERIMENTS_SCHEMA_VERSION,))
        version = EXPERIMENTS_SCHEMA_VERSION
    else:
        version = row[0]
    if version > EXPERIMENTS_SCHEMA_VERSION:
        raise ProfileError(
            f"experiments schema version {version} is newer than this "
            f"build supports ({EXPERIMENTS_SCHEMA_VERSION})"
        )
    while version < EXPERIMENTS_SCHEMA_VERSION:
        _MIGRATIONS[version](conn)
        version += 1
        conn.execute("UPDATE exp_meta SET version = ?", (version,))
    conn.commit()
    return version


@dataclass(frozen=True)
class CaseRecord:
    """One case row, decoded."""

    case_key: str
    index: int
    factors: dict[str, Any]
    status: str
    runs: int
    outliers: int
    mean: float | None
    halfwidth: float | None
    rel_halfwidth: float | None
    samples: list[float]
    trials: list[str]
    error: str | None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_CASE_STATUSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "case_key": self.case_key,
            "short": self.case_key[:12],
            "index": self.index,
            "factors": self.factors,
            "status": self.status,
            "runs": self.runs,
            "outliers": self.outliers,
            "mean": self.mean,
            "halfwidth": self.halfwidth,
            "rel_halfwidth": self.rel_halfwidth,
            "samples": self.samples,
            "trials": self.trials,
            "error": self.error,
        }


class ExperimentState:
    """Run/case bookkeeping over an open :class:`PerfDMF` repository."""

    def __init__(self, db: PerfDMF) -> None:
        self.db = db
        self.schema_version = ensure_experiments_schema(db)

    # -- runs --------------------------------------------------------------
    def begin_run(self, plan: Plan) -> int:
        """Find or create the run row for this plan; insert any cases not
        yet recorded (idempotent — the resume entry point)."""
        return _retry_locked(lambda: self._begin_run_txn(plan))

    def _begin_run_txn(self, plan: Plan) -> int:
        conn = self.db.connection
        spec = plan.spec
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT id FROM exp_run WHERE spec_hash = ?",
                (plan.spec_hash,),
            ).fetchone()
            if row is None:
                cur = conn.execute(
                    "INSERT INTO exp_run (spec_hash, name, spec_json, "
                    "created_at) VALUES (?, ?, ?, ?)",
                    (plan.spec_hash, spec.name,
                     json.dumps(spec.to_dict()), time.time()),
                )
                run_id = cur.lastrowid
            else:
                run_id = row[0]
            for case in plan.cases:
                conn.execute(
                    "INSERT OR IGNORE INTO exp_case "
                    "(run_id, case_key, case_index, factors) "
                    "VALUES (?, ?, ?, ?)",
                    (run_id, case.key, case.index,
                     json.dumps(case.factors, sort_keys=True)),
                )
            # A crash mid-case leaves 'running' rows; their samples are
            # banked, so they simply resume as pending.
            conn.execute(
                "UPDATE exp_case SET status = 'pending' "
                "WHERE run_id = ? AND status = 'running'",
                (run_id,),
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return run_id

    def run_id_for(self, spec_hash: str) -> int | None:
        row = self.db.connection.execute(
            "SELECT id FROM exp_run WHERE spec_hash = ?", (spec_hash,)
        ).fetchone()
        return row[0] if row else None

    def run_info(self, run_id: int) -> dict[str, Any]:
        row = self.db.connection.execute(
            "SELECT spec_hash, name, spec_json, created_at FROM exp_run "
            "WHERE id = ?", (run_id,),
        ).fetchone()
        if row is None:
            raise ProfileError(f"no experiment run with id {run_id}")
        return {"id": run_id, "spec_hash": row[0], "name": row[1],
                "spec": json.loads(row[2]), "created_at": row[3]}

    # -- cases -------------------------------------------------------------
    def cases(self, run_id: int) -> list[CaseRecord]:
        rows = self.db.connection.execute(
            "SELECT case_key, case_index, factors, status, runs, outliers, "
            "mean, halfwidth, rel_halfwidth, samples, trials, error "
            "FROM exp_case WHERE run_id = ? ORDER BY case_index",
            (run_id,),
        ).fetchall()
        return [self._decode(r) for r in rows]

    def case(self, run_id: int, case_key: str) -> CaseRecord:
        row = self.db.connection.execute(
            "SELECT case_key, case_index, factors, status, runs, outliers, "
            "mean, halfwidth, rel_halfwidth, samples, trials, error "
            "FROM exp_case WHERE run_id = ? AND case_key = ?",
            (run_id, case_key),
        ).fetchone()
        if row is None:
            raise ProfileError(
                f"no case {case_key[:12]}… in experiment run {run_id}"
            )
        return self._decode(row)

    @staticmethod
    def _decode(row) -> CaseRecord:
        return CaseRecord(
            case_key=row[0], index=row[1], factors=json.loads(row[2]),
            status=row[3], runs=row[4], outliers=row[5],
            mean=row[6], halfwidth=row[7], rel_halfwidth=row[8],
            samples=json.loads(row[9]), trials=json.loads(row[10]),
            error=row[11],
        )

    def mark_running(self, run_id: int, case_key: str) -> None:
        self._exec(
            "UPDATE exp_case SET status = 'running', error = NULL "
            "WHERE run_id = ? AND case_key = ?", (run_id, case_key),
        )

    def record_sample(self, run_id: int, case_key: str,
                      trial: str, value: float) -> None:
        """Bank one completed rerun (durable before the next submit)."""
        _retry_locked(
            lambda: self._record_sample_txn(run_id, case_key, trial, value)
        )

    def _record_sample_txn(self, run_id: int, case_key: str,
                           trial: str, value: float) -> None:
        conn = self.db.connection
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT samples, trials FROM exp_case "
                "WHERE run_id = ? AND case_key = ?", (run_id, case_key),
            ).fetchone()
            if row is None:
                raise ProfileError(f"no case {case_key[:12]}… to record")
            samples = json.loads(row[0])
            trials = json.loads(row[1])
            if trial not in trials:
                samples.append(float(value))
                trials.append(trial)
            conn.execute(
                "UPDATE exp_case SET samples = ?, trials = ?, runs = ? "
                "WHERE run_id = ? AND case_key = ?",
                (json.dumps(samples), json.dumps(trials), len(trials),
                 run_id, case_key),
            )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def finalize_case(self, run_id: int, case_key: str, status: str,
                      assessment: Assessment | None = None,
                      error: str | None = None) -> None:
        if assessment is not None:
            self._exec(
                "UPDATE exp_case SET status = ?, outliers = ?, mean = ?, "
                "halfwidth = ?, rel_halfwidth = ?, error = ? "
                "WHERE run_id = ? AND case_key = ?",
                (status, len(assessment.outliers), assessment.mean,
                 assessment.halfwidth, assessment.rel_halfwidth, error,
                 run_id, case_key),
            )
        else:
            self._exec(
                "UPDATE exp_case SET status = ?, error = ? "
                "WHERE run_id = ? AND case_key = ?",
                (status, error, run_id, case_key),
            )

    def _exec(self, sql: str, params: tuple) -> None:
        def txn():
            conn = self.db.connection
            conn.execute(sql, params)
            conn.commit()

        _retry_locked(txn)

    # -- summaries ---------------------------------------------------------
    def summary(self, run_id: int) -> dict[str, Any]:
        cases = self.cases(run_id)
        by_status: dict[str, int] = {}
        for c in cases:
            by_status[c.status] = by_status.get(c.status, 0) + 1
        min_runs = 1
        info = self.run_info(run_id)
        rigor = info["spec"].get("rigor") or {}
        min_runs = int(rigor.get("min_runs", 1))
        total_runs = sum(c.runs for c in cases)
        reruns = sum(max(0, c.runs - min_runs) for c in cases)
        return {
            "run_id": run_id,
            "name": info["name"],
            "spec_hash": info["spec_hash"],
            "cases": len(cases),
            "by_status": by_status,
            "total_runs": total_runs,
            "reruns": reruns,
            "outliers": sum(c.outliers for c in cases),
        }
