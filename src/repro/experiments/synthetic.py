"""The ``synthetic`` experiment app: a cheap, tunable trial generator.

Experiment sweeps need an application whose cost and variance are knobs,
not emergent properties — for CI smoke runs, throughput benchmarks, and
the adaptive-rigor tests (a case must be *constructably* high-variance
to prove the rerun loop works).  This runs a tiny simulated kernel per
thread through the real :class:`~repro.runtime.Profiler` and
:func:`~repro.runtime.execute_work` path, so the explicit-``Generator``
noise hook is exercised end to end: the same seeded rng produces the
same trial, bit for bit.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..machine import WorkSignature, uniform_machine
from ..perfdmf import Trial
from ..runtime import Profiler, execute_work

__all__ = ["run_synthetic_trial"]

#: Inner region executed once per thread.
EVENT_MAIN = "main"
EVENT_KERNEL = "synthetic_kernel"


def run_synthetic_trial(
    *,
    scale: float = 1.0,
    threads: int = 4,
    imbalance: float = 0.0,
    noise: float = 0.0,
    rng=None,
    name: str = "synthetic",
    metadata: Mapping[str, Any] | None = None,
) -> Trial:
    """One synthetic trial: ``threads`` CPUs each run one kernel.

    ``scale`` multiplies the operation counts (run cost), ``imbalance``
    skews work toward higher thread ids (0 = perfectly balanced, 1 =
    the last thread does double work), and ``noise`` adds lognormal
    measurement jitter through the explicit ``rng`` — refusing, like all
    of :mod:`repro.runtime`, to draw from global randomness.
    """
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    machine = uniform_machine(threads)
    profiler = Profiler(machine)
    cpus = list(range(threads))
    for cpu in cpus:
        profiler.enter(cpu, EVENT_MAIN)
        profiler.enter(cpu, EVENT_KERNEL)
        skew = 1.0 + float(imbalance) * (cpu / (threads - 1) if threads > 1
                                         else 0.0)
        work = WorkSignature(
            flops=2.0e5 * scale * skew,
            int_ops=1.0e5 * scale * skew,
            loads=1.5e5 * scale * skew,
            stores=5.0e4 * scale * skew,
            branches=2.0e4 * scale * skew,
            footprint_bytes=256 * 1024,
        )
        execute_work(machine, profiler, cpu, work, rng=rng, noise=noise)
        profiler.exit(cpu, EVENT_KERNEL)
    # Close main at a common barrier so inclusive times are comparable.
    end = max(profiler.clock(c) for c in cpus)
    for cpu in cpus:
        profiler.advance_clock_to(cpu, end)
        profiler.exit(cpu, EVENT_MAIN)
    meta = {
        "application": "synthetic",
        "scale": float(scale),
        "threads": threads,
        "imbalance": float(imbalance),
        "noise": float(noise),
    }
    if metadata:
        meta.update(metadata)
    return profiler.to_trial(name, meta)
