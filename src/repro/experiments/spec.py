"""Declarative experiment specs: factors × vectors → content-addressed cases.

The paper's premise is that knowledge-based analysis pays off over large
bodies of trials; this module is the volume driver's front end.  An
:class:`ExperimentSpec` names an application, a key metric/event, a set
of **factors** (named value lists: schedule, thread count, noise seed,
machine model, ...) and a **vector** describing how factors combine:

* ``cartesian`` — the full cross product, in factor declaration order;
* ``zip`` — parallel iteration (all factor lists must agree in length);
* ``cases`` — an explicit list of factor assignments.

Expansion applies ``exclude`` constraint tables (a case is dropped when
it matches *every* key of any exclude entry), enforces the ``max_cases``
cap by **refusing** — never silently truncating — and yields a
:class:`Plan` of :class:`Case` rows.  Each case is content-addressed:
its :attr:`Case.key` is a SHA-256 over the canonical JSON of everything
that determines the produced data (app, storage coordinates, metric,
key event, noise level, and the factor assignment).  Two expansions of
the same spec therefore produce the same ordered case keys — the basis
of the resume model (DESIGN §10) — and every run's random stream is
derived from the key via :func:`case_seed`, so any case is
bit-reproducible in isolation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.result import AnalysisError
from .rigor import RigorPolicy

__all__ = [
    "Case",
    "ExperimentSpec",
    "Plan",
    "SpecError",
    "case_rng",
    "case_seed",
]

#: Applications the run-trial handler knows how to drive.
KNOWN_APPS = ("synthetic", "msa", "genidlest")

#: Default expansion cap; specs may raise it explicitly via ``[limits]``.
DEFAULT_MAX_CASES = 1_000


class SpecError(AnalysisError):
    """A spec that cannot be expanded (the error says why)."""


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def case_seed(case_key: str, rerun: int = 0) -> int:
    """The 64-bit seed of one case execution, derived from its content
    address — run ``rerun`` of a case is reproducible anywhere."""
    digest = hashlib.sha256(f"{case_key}:{int(rerun)}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def case_rng(case_key: str, rerun: int = 0):
    """A :class:`numpy.random.Generator` seeded by :func:`case_seed` —
    what the run-trial handler feeds ``runtime.exec`` / ``perturb_trial``."""
    import numpy as np

    return np.random.default_rng(case_seed(case_key, rerun))


@dataclass(frozen=True)
class Case:
    """One expanded test case: a full factor assignment plus its address."""

    index: int
    factors: dict[str, Any]
    key: str

    @property
    def short(self) -> str:
        """Display / trial-name prefix (12 hex chars of the key)."""
        return self.key[:12]

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "key": self.key,
                "short": self.short, "factors": dict(self.factors)}


@dataclass(frozen=True)
class Plan:
    """A spec expanded: the ordered, content-addressed case list."""

    spec: "ExperimentSpec"
    cases: tuple[Case, ...]
    excluded: int = 0

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash

    def case_keys(self) -> list[str]:
        return [c.key for c in self.cases]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.name,
            "spec_hash": self.spec_hash,
            "cases": [c.to_dict() for c in self.cases],
            "excluded": self.excluded,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative description of one experiment sweep."""

    name: str
    app: str = "synthetic"
    #: PerfDMF storage coordinates: application / experiment rows.
    application: str = "experiments"
    experiment: str | None = None
    metric: str = "TIME"
    key_event: str = "main"
    factors: dict[str, list[Any]] = field(default_factory=dict)
    vector: str = "cartesian"
    #: Explicit factor assignments (``vector == "cases"`` only).
    cases: tuple[dict[str, Any], ...] = ()
    #: Constraint tables; a case matching every key of one entry is dropped.
    excludes: tuple[dict[str, Any], ...] = ()
    max_cases: int = DEFAULT_MAX_CASES
    rigor: RigorPolicy = field(default_factory=RigorPolicy)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec needs a name")
        if self.app not in KNOWN_APPS:
            raise SpecError(
                f"unknown app {self.app!r}; known: {list(KNOWN_APPS)}"
            )
        if self.vector not in ("cartesian", "zip", "cases"):
            raise SpecError(
                f"vector kind must be cartesian, zip, or cases; "
                f"got {self.vector!r}"
            )
        if self.max_cases < 1:
            raise SpecError("max_cases must be positive")

    # -- identity ----------------------------------------------------------
    @property
    def experiment_name(self) -> str:
        """The PerfDMF experiment row trials land under."""
        return self.experiment or self.name

    @property
    def spec_hash(self) -> str:
        """Content address of the whole spec (keys run/resume state)."""
        return hashlib.sha256(_canonical({
            "name": self.name,
            "app": self.app,
            "application": self.application,
            "experiment": self.experiment_name,
            "metric": self.metric,
            "key_event": self.key_event,
            "factors": self.factors,
            "vector": self.vector,
            "cases": list(self.cases),
            "excludes": list(self.excludes),
            "rigor": self.rigor.to_dict(),
        }).encode()).hexdigest()

    def case_key(self, factors: Mapping[str, Any]) -> str:
        """Content address of one case: everything that determines the
        data it produces (spec identity minus the rigor thresholds, which
        govern *how many* runs happen, not what each run computes)."""
        return hashlib.sha256(_canonical({
            "app": self.app,
            "application": self.application,
            "experiment": self.experiment_name,
            "metric": self.metric,
            "key_event": self.key_event,
            "noise": self.rigor.noise,
            "factors": dict(factors),
        }).encode()).hexdigest()

    # -- expansion ---------------------------------------------------------
    def _factor_rows(self) -> Iterable[dict[str, Any]]:
        names = list(self.factors)
        for fname in names:
            if not self.factors[fname]:
                raise SpecError(
                    f"factor {fname!r} has no values — remove it or give "
                    "it at least one"
                )
        if self.vector == "cases":
            if not self.cases:
                raise SpecError("vector kind 'cases' needs [[vector.case]] "
                                "entries")
            keys = set(self.cases[0])
            for i, case in enumerate(self.cases):
                if set(case) != keys:
                    raise SpecError(
                        f"explicit case {i} assigns {sorted(case)} but "
                        f"case 0 assigns {sorted(keys)}: all cases must "
                        "assign the same factors"
                    )
            yield from (dict(c) for c in self.cases)
            return
        if not names:
            raise SpecError("spec declares no factors")
        if self.vector == "zip":
            lengths = {f: len(self.factors[f]) for f in names}
            if len(set(lengths.values())) > 1:
                raise SpecError(
                    "zip vector needs equal-length factors; got "
                    + ", ".join(f"{f}={n}" for f, n in lengths.items())
                )
            for values in zip(*(self.factors[f] for f in names)):
                yield dict(zip(names, values))
            return
        for values in itertools.product(*(self.factors[f] for f in names)):
            yield dict(zip(names, values))

    def _raw_count(self) -> int:
        if self.vector == "cases":
            return len(self.cases)
        if self.vector == "zip":
            return max((len(v) for v in self.factors.values()), default=0)
        return math.prod(len(v) for v in self.factors.values()) \
            if self.factors else 0

    def expand(self) -> Plan:
        """Materialize the plan; refuses (never truncates) past the cap."""
        raw = self._raw_count()
        if raw > self.max_cases:
            raise SpecError(
                f"spec {self.name!r} expands to {raw} cases, over the "
                f"max_cases cap of {self.max_cases} — shrink a factor, "
                "add excludes, or raise [limits] max_cases explicitly"
            )
        cases: list[Case] = []
        excluded = 0
        for factors in self._factor_rows():
            if any(
                all(k in factors and factors[k] == v for k, v in ex.items())
                for ex in self.excludes if ex
            ):
                excluded += 1
                continue
            cases.append(Case(
                index=len(cases),
                factors=factors,
                key=self.case_key(factors),
            ))
        if not cases:
            raise SpecError(
                f"spec {self.name!r} expands to zero cases "
                f"({excluded} excluded by constraints)"
            )
        return Plan(spec=self, cases=tuple(cases), excluded=excluded)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from the TOML document shape (see module doc)."""
        data = dict(data)
        vector = data.get("vector") or {}
        if isinstance(vector, str):
            vector = {"kind": vector}
        limits = data.get("limits") or {}
        rigor_data = data.get("rigor") or {}
        try:
            rigor = RigorPolicy(**rigor_data)
        except TypeError as exc:
            raise SpecError(f"bad [rigor] section: {exc}") from None
        factors = {
            str(k): list(v) for k, v in (data.get("factors") or {}).items()
        }
        return cls(
            name=str(data.get("name", "")),
            app=str(data.get("app", "synthetic")),
            application=str(data.get("application", "experiments")),
            experiment=data.get("experiment"),
            metric=str(data.get("metric", "TIME")),
            key_event=str(data.get("key_event", "main")),
            factors=factors,
            vector=str(vector.get("kind", "cartesian")),
            cases=tuple(dict(c) for c in vector.get("case", [])),
            excludes=tuple(dict(e) for e in data.get("exclude", [])),
            max_cases=int(limits.get("max_cases", DEFAULT_MAX_CASES)),
            rigor=rigor,
        )

    @classmethod
    def from_toml(cls, path: str) -> "ExperimentSpec":
        import tomllib

        with open(path, "rb") as fh:
            try:
                data = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"{path}: {exc}") from None
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "app": self.app,
            "application": self.application,
            "experiment": self.experiment_name,
            "metric": self.metric,
            "key_event": self.key_event,
            "factors": {k: list(v) for k, v in self.factors.items()},
            "vector": self.vector,
            "cases": [dict(c) for c in self.cases],
            "excludes": [dict(e) for e in self.excludes],
            "max_cases": self.max_cases,
            "rigor": self.rigor.to_dict(),
        }
