"""ExperimentSummaryFact from persisted state (no orchestrator needed).

``ExperimentResult.fact()`` summarizes the session that just ran; this
builds the same fact shape from the durable ``exp_case`` rows, so
``exp report`` can critique a sweep long after (or while) it runs.
"""

from __future__ import annotations

from ..rules import Fact
from .state import ExperimentState

__all__ = ["summary_fact"]


def summary_fact(state: ExperimentState, run_id: int) -> Fact:
    s = state.summary(run_id)
    by = s["by_status"]
    cases = s["cases"] or 1
    return Fact(
        "ExperimentSummaryFact",
        spec=s["name"],
        cases=s["cases"],
        skipped=0,
        converged=by.get("converged", 0),
        nonConverged=by.get("non-converged", 0),
        failed=by.get("failed", 0),
        unfinished=by.get("pending", 0) + by.get("running", 0),
        totalRuns=s["total_runs"],
        reruns=s["reruns"],
        rerunRate=s["reruns"] / cases,
        outliers=s["outliers"],
    )
