"""Human-readable views of experiment state: ``exp status`` / ``exp report``.

Pure rendering over :class:`~repro.experiments.state.ExperimentState` —
the orchestrator does not need to be running (or to ever have finished)
for these to work, which is exactly what a kill-and-resume workflow
needs: ``exp status`` against a half-run sweep shows which cases are
banked, which converged, and which still owe runs.
"""

from __future__ import annotations

from typing import Any

from .state import ExperimentState

__all__ = ["render_report", "render_status"]


def _fmt(value: float | None, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


def _factor_text(factors: dict[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(factors.items()))


def render_status(state: ExperimentState, run_id: int) -> str:
    """Per-case convergence table for one experiment run."""
    info = state.run_info(run_id)
    cases = state.cases(run_id)
    lines = [
        f"experiment {info['name']!r}  run {run_id}  "
        f"spec {info['spec_hash'][:12]}",
        f"{'case':<14}{'status':<15}{'runs':>5}{'mean':>12}"
        f"{'rel-hw':>9}  factors",
    ]
    for c in cases:
        lines.append(
            f"{c.case_key[:12]:<14}{c.status:<15}{c.runs:>5}"
            f"{_fmt(c.mean):>12}{_fmt(c.rel_halfwidth, 3):>9}  "
            f"{_factor_text(c.factors)}"
        )
    summary = state.summary(run_id)
    by = summary["by_status"]
    lines.append(
        f"{summary['cases']} case(s): "
        + ", ".join(f"{n} {s}" for s, n in sorted(by.items()))
        + f"; {summary['total_runs']} run(s), {summary['reruns']} "
          f"adaptive rerun(s), {summary['outliers']} outlier(s) dropped"
    )
    return "\n".join(lines)


def render_report(state: ExperimentState, run_id: int,
                  *, diagnose: bool = True) -> str:
    """Full report: status table, non-converged detail, and the
    ``experiment-rules`` critique of the sweep itself."""
    lines = [render_status(state, run_id)]
    cases = state.cases(run_id)
    problem = [c for c in cases if c.status in ("non-converged", "failed")]
    if problem:
        lines.append("")
        lines.append("cases needing attention:")
        for c in problem:
            detail = c.error or (
                f"rel half-width {_fmt(c.rel_halfwidth, 3)} after "
                f"{c.runs} runs"
            )
            lines.append(f"  {c.case_key[:12]} [{c.status}] "
                         f"{_factor_text(c.factors)}: {detail}")
    if diagnose:
        from ..core.harness import RuleHarness
        from ..knowledge import render_report as render_harness
        from .summary import summary_fact

        harness = RuleHarness("experiment-rules")
        harness.assertObjects([summary_fact(state, run_id)])
        harness.processRules()
        lines.append("")
        lines.append(render_harness(
            harness, title=f"Experiment critique (run {run_id})"
        ))
    return "\n".join(lines)
