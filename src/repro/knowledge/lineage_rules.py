"""LineageRules: explaining performance history, not just flagging it.

These rules consume the fact vocabulary of :mod:`repro.lineage.facts`
— the output of sweeping the regression detectors along a version chain
— and produce the three history-level diagnoses a bare per-pair
comparison cannot:

* **first-bad-version** — the earliest step that flips to ``regressed``
  after healthy history, joined with its offending event so the
  recommendation names *where* the slowdown landed, not just when;
* **slow-creep** — a run of individually-insignificant worsening steps
  whose compound change is large: no single commit is the culprit and
  bisect will not converge on one;
* **rulebase-coincident-regression** — the analyzer's own rulebase
  fingerprint changed across the regressing step, so the "regression"
  may be a measurement-side artifact and deserves a re-run under the
  old rulebase before anyone blames the code.

``lineage_rulebase()`` registers under ``"lineage-rules"``.
"""

from __future__ import annotations

from ..core.harness import register_rulebase
from ..rules import Rule, RuleBuilder, RuleContext

#: Degradations below this share of runtime get logged, not recommended.
DEGRADATION_SEVERITY_THRESHOLD = 0.01
#: A drift run is "creep" when its compound change exceeds this ...
CREEP_TOTAL_THRESHOLD = 0.10
#: ... while every individual step stayed below this.
CREEP_STEP_THRESHOLD = 0.08

RULEBASE_NAME = "lineage-rules"


def first_bad_version_rule(
    *, severity_threshold: float = DEGRADATION_SEVERITY_THRESHOLD
) -> Rule:
    """The bisect target: the earliest regressed step after healthy
    history, localized to its worst event."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"First bad version: {ctx['v']} (parent {ctx['p']}) — "
            f"{ctx['e']} changed {ctx['chg']:+.1%} "
            f"({ctx['sev']:.1%} of runtime, {ctx['m']})."
        )
        ctx.insert(
            "Recommendation",
            category="first-bad-version",
            version=ctx["v"],
            parent=ctx["p"],
            event=ctx["e"],
            metric=ctx["m"],
            severity=ctx["sev"],
            relative_change=ctx["chg"],
            message=(
                f"performance history turns bad at {ctx['v']}: "
                f"{ctx['e']} regressed {ctx['chg']:+.1%} vs {ctx['p']}; "
                "inspect the change introduced there"
            ),
        )

    return (
        RuleBuilder(
            "First bad version identified",
            salience=15,
            doc="lineage: regressed step after healthy history, with locus",
        )
        .when(
            "c",
            "VersionComparisonFact",
            "v := version",
            "p := parentVersion",
            ("verdict", "==", "regressed"),
            ("prevVerdict", "!=", "regressed"),
        )
        .when(
            "d",
            "DegradationFact",
            ("version", "==", "$v"),
            "e := eventName",
            "m := metric",
            "chg := relativeChange",
            "sev := severity",
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def slow_creep_rule(
    *,
    total_threshold: float = CREEP_TOTAL_THRESHOLD,
    step_threshold: float = CREEP_STEP_THRESHOLD,
) -> Rule:
    """Many small worsening steps compounding into a real slowdown."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Slow creep: {ctx['tc']:+.1%} across {ctx['n']} versions "
            f"({ctx['s']}..{ctx['en']}), no step above "
            f"{ctx['ms']:+.1%} — no single culprit commit."
        )
        ctx.insert(
            "Recommendation",
            category="slow-creep",
            event="<program>",
            start_version=ctx["s"],
            end_version=ctx["en"],
            versions=ctx["n"],
            severity=ctx["tc"],
            max_step_change=ctx["ms"],
            message=(
                f"performance crept {ctx['tc']:+.1%} over {ctx['n']} "
                f"versions ({ctx['s']}..{ctx['en']}); bisect will not "
                "converge — audit the whole range"
            ),
        )

    return (
        RuleBuilder(
            "Slow creep across versions",
            salience=10,
            doc="lineage: large compound change from small steps",
        )
        .when(
            "dr",
            "DriftFact",
            "s := startVersion",
            "en := endVersion",
            "n := versions",
            "tc := totalChange",
            "ms := maxStepChange",
            ("totalChange", ">", total_threshold),
            ("maxStepChange", "<", step_threshold),
        )
        .then(action)
        .build()
    )


def rulebase_bump_rule() -> Rule:
    """A regression coinciding with a rulebase change is suspect — the
    measuring stick moved with the measurement."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Caution: regression at {ctx['v']} coincides with a "
            "rulebase change — re-verify under the parent's rulebase "
            "before blaming the code."
        )
        ctx.insert(
            "Recommendation",
            category="rulebase-coincident-regression",
            event="<program>",
            version=ctx["v"],
            parent=ctx["p"],
            severity=ctx["tc"],
            message=(
                f"regression at {ctx['v']} landed together with a "
                "rulebase bump; confirm with the old rulebase first"
            ),
        )

    return (
        RuleBuilder(
            "Regression coincides with rulebase bump",
            salience=12,
            doc="lineage: flag analyzer-side changes at the bad step",
        )
        .when(
            "c",
            "VersionComparisonFact",
            "v := version",
            "p := parentVersion",
            "tc := totalChange",
            ("verdict", "==", "regressed"),
            ("rulebaseChanged", "==", True),
        )
        .then(action)
        .build()
    )


def lineage_history_rule() -> Rule:
    """Headline logging for every compared step (salience-first)."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"History step {ctx['p']} -> {ctx['v']}: {ctx['verdict']} "
            f"({ctx['tc']:+.1%})."
        )

    return (
        RuleBuilder(
            "Lineage step summary",
            salience=20,
            doc="lineage: log each compared step before diagnoses",
        )
        .when(
            "c",
            "VersionComparisonFact",
            "v := version",
            "p := parentVersion",
            "verdict := verdict",
            "tc := totalChange",
        )
        .then(action)
        .build()
    )


def lineage_rules(**overrides) -> list[Rule]:
    """The history-level rules with optional threshold overrides."""
    first_kw = {}
    if "severity_threshold" in overrides:
        first_kw["severity_threshold"] = overrides.pop("severity_threshold")
    creep_kw = {}
    for key in ("total_threshold", "step_threshold"):
        if key in overrides:
            creep_kw[key] = overrides.pop(key)
    if overrides:
        raise ValueError(f"unknown threshold overrides: {sorted(overrides)}")
    return [
        lineage_history_rule(),
        first_bad_version_rule(**first_kw),
        rulebase_bump_rule(),
        slow_creep_rule(**creep_kw),
    ]


def lineage_rulebase() -> list[Rule]:
    return lineage_rules()


register_rulebase(RULEBASE_NAME, lineage_rulebase)
