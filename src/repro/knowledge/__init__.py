"""The performance-knowledge layer: the paper's expert rules, the analysis
scripts that feed them, and recommendation reporting."""

from .facts_gen import (
    INEFFICIENCY_METRIC,
    STALL_RATE_METRIC,
    imbalance_facts,
    inefficiency_facts,
    locality_facts,
    phase_imbalance_facts,
    power_level_facts,
    serialization_facts,
    stall_decomposition_facts,
    stall_rate_facts,
    thread_cluster_facts,
    wait_state_facts,
)
from .recommendations import (
    Recommendation,
    recommendations_of,
    render_report,
    summarize_categories,
)
from .lineage_rules import (
    CREEP_STEP_THRESHOLD,
    CREEP_TOTAL_THRESHOLD,
    DEGRADATION_SEVERITY_THRESHOLD,
    lineage_rulebase,
    lineage_rules,
)
from .regression_rules import (
    REGRESSION_SEVERITY_THRESHOLD,
    regression_rulebase,
    regression_rules,
)
from .rulebase import (
    RULEBASE_NAME,
    diagnose_genidlest,
    diagnose_load_balance,
    diagnose_locality,
    diagnose_stalls,
    diagnose_timeline,
    openuh_rules,
    prl_rules,
    recommend_power_levels,
)
from .service_rules import (
    COLD_CACHE_HIT_RATE,
    service_rules,
)
from .experiment_rules import (
    RERUN_HEAVY_RATE,
    experiment_rules,
)
from .rules_def import (
    IMBALANCE_RATIO_THRESHOLD,
    IMBALANCE_SEVERITY_THRESHOLD,
    STALL_COVERAGE_THRESHOLD,
    STALL_RATE_SEVERITY_THRESHOLD,
    WAIT_STATE_SEVERITY_THRESHOLD,
)

__all__ = [
    "COLD_CACHE_HIT_RATE",
    "CREEP_STEP_THRESHOLD",
    "CREEP_TOTAL_THRESHOLD",
    "DEGRADATION_SEVERITY_THRESHOLD",
    "IMBALANCE_RATIO_THRESHOLD",
    "RERUN_HEAVY_RATE",
    "experiment_rules",
    "IMBALANCE_SEVERITY_THRESHOLD",
    "INEFFICIENCY_METRIC",
    "REGRESSION_SEVERITY_THRESHOLD",
    "RULEBASE_NAME",
    "Recommendation",
    "STALL_COVERAGE_THRESHOLD",
    "STALL_RATE_METRIC",
    "STALL_RATE_SEVERITY_THRESHOLD",
    "WAIT_STATE_SEVERITY_THRESHOLD",
    "diagnose_genidlest",
    "diagnose_load_balance",
    "diagnose_locality",
    "diagnose_stalls",
    "diagnose_timeline",
    "imbalance_facts",
    "inefficiency_facts",
    "lineage_rulebase",
    "lineage_rules",
    "locality_facts",
    "openuh_rules",
    "phase_imbalance_facts",
    "power_level_facts",
    "prl_rules",
    "recommend_power_levels",
    "recommendations_of",
    "regression_rulebase",
    "regression_rules",
    "render_report",
    "serialization_facts",
    "service_rules",
    "stall_decomposition_facts",
    "stall_rate_facts",
    "summarize_categories",
    "thread_cluster_facts",
    "wait_state_facts",
]
