"""RegressionRules: the sentinel's slice of the expert rulebase.

These rules consume the fact vocabulary of :mod:`repro.regress.facts` and
*chain* with the shipped diagnosis rules — the point of running detection
inside the knowledge pipeline instead of a bare threshold script.  A
regression that joins against an ImbalanceFact, for example, comes back
with the same scheduling recommendation the paper's §III.A case study
produces, now scoped to "this got slower since the baseline".

``regression_rulebase()`` is the merged base (diagnosis + regression) and
registers under the name ``"regression-rules"`` so scripts can write
``RuleHarness.useGlobalRules("regression-rules")``.
"""

from __future__ import annotations

from ..core.harness import register_rulebase
from ..rules import Rule, RuleBuilder, RuleContext
from .rules_def import IMBALANCE_RATIO_THRESHOLD

#: Regressions below this share of runtime get logged but no recommendation.
REGRESSION_SEVERITY_THRESHOLD = 0.01

RULEBASE_NAME = "regression-rules"


def regression_detected_rule(
    *, severity_threshold: float = REGRESSION_SEVERITY_THRESHOLD
) -> Rule:
    """Every significant regression yields an investigation recommendation."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Regression: {ctx['e']} is {ctx['chg']:.1%} slower than "
            f"baseline {ctx['base']} ({ctx['bm']:.4g} → {ctx['cm']:.4g} "
            f"{ctx['m']}, {ctx['sev']:.1%} of runtime)."
        )
        ctx.insert(
            "Recommendation",
            category="performance-regression",
            event=ctx["e"],
            severity=ctx["sev"],
            relative_change=ctx["chg"],
            baseline=ctx["base"],
            metric=ctx["m"],
            message=(
                f"{ctx['e']} regressed {ctx['chg']:.1%} vs baseline "
                f"{ctx['base']}; bisect the change that touched it"
            ),
        )

    return (
        RuleBuilder(
            "Performance regression detected",
            salience=5,
            doc="regress: flag each offending event with context",
        )
        .when(
            "r",
            "RegressionFact",
            "e := eventName",
            "m := metric",
            "chg := relativeChange",
            "sev := severity",
            "base := baseline",
            "bm := baselineMean",
            "cm := candidateMean",
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def regression_imbalance_rule(
    *, ratio_threshold: float = IMBALANCE_RATIO_THRESHOLD
) -> Rule:
    """Chained diagnosis: a regressed event that is also imbalanced across
    threads gets the §III.A scheduling recommendation, not just a flag."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Regression localized: {ctx['e']} regressed {ctx['chg']:.1%} "
            f"and is unbalanced across threads (ratio {ctx['ratio']:.3f}) — "
            "the slowdown concentrates on a subset of threads."
        )
        ctx.log(
            "    Suggested scheduling change: schedule(dynamic,1) on the "
            "parallel loop."
        )
        ctx.insert(
            "Recommendation",
            category="regression-load-imbalance",
            event=ctx["e"],
            severity=ctx["sev"],
            relative_change=ctx["chg"],
            imbalance_ratio=ctx["ratio"],
            suggested_schedule="dynamic,1",
            message=(
                f"regression in {ctx['e']} coincides with load imbalance; "
                "use dynamic scheduling"
            ),
        )

    return (
        RuleBuilder(
            "Regression localized in imbalanced event",
            salience=10,
            doc="regress: join RegressionFact with ImbalanceFact",
        )
        .when(
            "r",
            "RegressionFact",
            "e := eventName",
            "chg := relativeChange",
            "sev := severity",
        )
        .when(
            "i",
            "ImbalanceFact",
            ("eventName", "==", "$e"),
            "ratio := ratio",
            ("ratio", ">", ratio_threshold),
        )
        .then(action)
        .build()
    )


def regression_summary_rule() -> Rule:
    """Whole-trial verdict logging (the CI gate's headline)."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Trial {ctx['t']} vs baseline {ctx['base']}: verdict "
            f"{ctx['v']} (total {ctx['tc']:+.1%}, "
            f"{ctx['nr']} regressed / {ctx['ni']} improved events)."
        )

    return (
        RuleBuilder(
            "Regression summary",
            salience=20,
            doc="regress: log the comparison verdict first",
        )
        .when(
            "s",
            "RegressionSummaryFact",
            "t := trial",
            "base := baseline",
            "v := verdict",
            "tc := totalChange",
            "nr := regressedEvents",
            "ni := improvedEvents",
        )
        .then(action)
        .build()
    )


def improvement_promotion_rule() -> Rule:
    """Accepted improvements propose a baseline promotion — the sentinel
    reads this recommendation to auto-promote."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Improvement: trial {ctx['t']} is {-ctx['tc']:.1%} faster than "
            f"baseline {ctx['base']}; promote it."
        )
        ctx.insert(
            "Recommendation",
            category="baseline-promotion",
            event="<program>",
            severity=-ctx["tc"],
            trial=ctx["t"],
            baseline=ctx["base"],
            message=(
                f"trial {ctx['t']} improved {-ctx['tc']:.1%} over "
                f"{ctx['base']}; promote it to baseline"
            ),
        )

    return (
        RuleBuilder(
            "Improvement promotes baseline",
            salience=8,
            doc="regress: accepted improvements move the baseline forward",
        )
        .when(
            "s",
            "RegressionSummaryFact",
            ("verdict", "==", "improved"),
            "t := trial",
            "base := baseline",
            "tc := totalChange",
        )
        .then(action)
        .build()
    )


def regression_rules(**overrides) -> list[Rule]:
    """Just the sentinel's rules (no diagnosis chaining)."""
    kw = {}
    if "severity_threshold" in overrides:
        kw["severity_threshold"] = overrides.pop("severity_threshold")
    ratio_kw = {}
    if "ratio_threshold" in overrides:
        ratio_kw["ratio_threshold"] = overrides.pop("ratio_threshold")
    if overrides:
        raise ValueError(f"unknown threshold overrides: {sorted(overrides)}")
    return [
        regression_summary_rule(),
        regression_imbalance_rule(**ratio_kw),
        improvement_promotion_rule(),
        regression_detected_rule(**kw),
    ]


def regression_rulebase() -> list[Rule]:
    """The merged rulebase: shipped diagnosis rules + regression rules,
    so regressions chain into full diagnoses."""
    from .rulebase import openuh_rules

    return openuh_rules() + regression_rules()


register_rulebase(RULEBASE_NAME, regression_rulebase)
