"""Rendering diagnosis results as user-facing reports.

The current system (Fig. 3, solid arrows) ends at "User Recommendations":
this module formats a harness's output — the fired-rule explanations and
the Recommendation facts — into the report a developer would read, and
into the structured form the feedback optimizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.harness import RuleHarness
from ..rules import Fact


@dataclass(frozen=True)
class Recommendation:
    """A structured view over one Recommendation fact."""

    category: str
    event: str
    severity: float
    message: str
    details: dict = field(default_factory=dict, hash=False, compare=False)

    @classmethod
    def from_fact(cls, fact: Fact) -> "Recommendation":
        fields = fact.as_dict()
        return cls(
            category=fields.pop("category", "unknown"),
            event=str(fields.pop("event", "<program>")),
            severity=float(fields.pop("severity", 0.0) or 0.0),
            message=fields.pop("message", ""),
            details=fields,
        )


def recommendations_of(harness: RuleHarness) -> list[Recommendation]:
    """Structured recommendations, most severe first."""
    return [Recommendation.from_fact(f) for f in harness.recommendations()]


def render_report(harness: RuleHarness, *, title: str = "Performance diagnosis") -> str:
    """The human-readable report (explanations + ranked recommendations)."""
    lines = [title, "=" * len(title), ""]
    if harness.output:
        lines.append("Findings:")
        for entry in harness.output:
            lines.append(f"  {entry}")
        lines.append("")
    recs = recommendations_of(harness)
    if recs:
        lines.append("Recommendations (most severe first):")
        for i, rec in enumerate(recs, 1):
            sev = f" [{rec.severity:.0%} of runtime]" if rec.severity else ""
            lines.append(f"  {i}. ({rec.category}) {rec.event}{sev}: {rec.message}")
    else:
        lines.append("No problems diagnosed.")
    lines.append("")
    lines.append(f"Rules fired: {len(harness.engine.trace)}")
    return "\n".join(lines)


def summarize_categories(harness: RuleHarness) -> dict[str, int]:
    """Recommendation counts per category (benchmark-friendly)."""
    counts: dict[str, int] = {}
    for rec in recommendations_of(harness):
        counts[rec.category] = counts.get(rec.category, 0) + 1
    return counts
