"""ServiceRules: operations advice for the analysis service itself.

:mod:`repro.serve` turns the analyzer into a long-lived service; this
module gives the expert system an opinion about *that* — the same
inference engine that diagnoses application trials consumes
``ServiceStatsFact`` / ``ServiceDegradedFact`` rows from
``AnalysisService.service_facts()`` and produces capacity and
configuration recommendations (add workers, raise the queue bound,
investigate failing handlers, pre-warm the cache).  Trend rules consume
``ServiceTrendFact`` rows from :mod:`repro.serve.monitor` — degradation
*across* self-monitoring snapshots, not just in one.

Registers under the name ``"service-rules"`` so
``RuleHarness("service-rules")`` — and ``serve diagnose`` /
``AnalysisService.diagnose_service()`` — resolve it by name.
"""

from __future__ import annotations

from ..core.harness import register_rulebase
from ..rules import Rule, RuleBuilder, RuleContext

RULEBASE_NAME = "service-rules"

#: Below this cache hit rate (with real traffic) the cache isn't earning
#: its memory; above it, repeated analyses are effectively free.
COLD_CACHE_HIT_RATE = 0.10
#: How many finished jobs before cache-efficiency advice is meaningful.
_MIN_FINISHED_FOR_CACHE_ADVICE = 20


def service_summary_rule() -> Rule:
    """Headline logging: one line of service health before any advice."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Service: {ctx['sub']} submitted / {ctx['fin']} finished, "
            f"failure rate {ctx['fr']:.1%}, queue depth {ctx['qd']}, "
            f"queue-wait p95 {ctx['p95']:.4f}s, cache hit rate "
            f"{ctx['chr']:.1%} ({ctx['w']} {ctx['mode']} workers)."
        )

    return (
        RuleBuilder(
            "Service summary",
            salience=20,
            doc="serve: log the health headline first",
        )
        .when(
            "s",
            "ServiceStatsFact",
            "sub := submitted",
            "fin := finished",
            "fr := failureRate",
            "qd := queueDepth",
            "p95 := queueWaitP95",
            "chr := cacheHitRate",
            "w := workers",
            "mode := mode",
        )
        .then(action)
        .build()
    )


def queue_latency_rule() -> Rule:
    """Jobs wait too long before a worker picks them up → capacity."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Degraded (queue-latency): p95 queue wait {ctx['v']:.3f}s "
            f"exceeds {ctx['thr']:.3f}s with {ctx['w']} workers."
        )
        ctx.insert(
            "Recommendation",
            category="service-queue-latency",
            event="<service>",
            severity=ctx["v"],
            threshold=ctx["thr"],
            workers=ctx["w"],
            message=(
                f"p95 queue wait {ctx['v']:.3f}s > {ctx['thr']:.3f}s: the "
                f"{ctx['w']}-worker pool is saturated — add workers, or "
                "lower per-job cost (smaller analyses, cacheable kinds)"
            ),
        )

    return (
        RuleBuilder(
            "Queue latency exceeds budget",
            salience=10,
            doc="serve: saturated pool → scale workers",
        )
        .when(
            "d",
            "ServiceDegradedFact",
            ("reason", "==", "queue-latency"),
            "v := value",
            "thr := threshold",
            "w := workers",
        )
        .then(action)
        .build()
    )


def failure_rate_rule() -> Rule:
    """Too many jobs end FAILED/TIMEOUT → investigate, don't just retry."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Degraded (failure-rate): {ctx['v']:.1%} of finished jobs "
            f"failed or timed out (budget {ctx['thr']:.1%})."
        )
        ctx.insert(
            "Recommendation",
            category="service-failure-rate",
            event="<service>",
            severity=ctx["v"],
            threshold=ctx["thr"],
            message=(
                f"{ctx['v']:.1%} of jobs fail — inspect per-job errors "
                "(`serve status <id>`), raise per-job timeouts if work is "
                "legitimately slow, and reserve retries for transient faults"
            ),
        )

    return (
        RuleBuilder(
            "Job failure rate exceeds budget",
            salience=10,
            doc="serve: failing handlers need eyes, not retries",
        )
        .when(
            "d",
            "ServiceDegradedFact",
            ("reason", "==", "failure-rate"),
            "v := value",
            "thr := threshold",
        )
        .then(action)
        .build()
    )


def backpressure_rule() -> Rule:
    """Admissions bounce off the full queue → bound or submission rate."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Degraded (backpressure): {ctx['v']:.1%} of submissions "
            f"rejected at queue bound {ctx['qb']}."
        )
        ctx.insert(
            "Recommendation",
            category="service-backpressure",
            event="<service>",
            severity=ctx["v"],
            threshold=ctx["thr"],
            queue_bound=ctx["qb"],
            message=(
                f"{ctx['v']:.1%} of submissions rejected: raise the queue "
                f"bound (now {ctx['qb']}), submit with block=True, or slow "
                "the producers"
            ),
        )

    return (
        RuleBuilder(
            "Queue backpressure rejects submissions",
            salience=10,
            doc="serve: bounded queue is shedding load",
        )
        .when(
            "d",
            "ServiceDegradedFact",
            ("reason", "==", "backpressure"),
            "v := value",
            "thr := threshold",
            "qb := queueBound",
        )
        .then(action)
        .build()
    )


def saturated_and_shedding_rule() -> Rule:
    """Chained diagnosis: latency *and* backpressure together mean the
    pool is undersized, not merely the queue bound — growing the queue
    would only lengthen the wait."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            "Degraded (capacity): queue latency and backpressure are both "
            "over budget — the pool is undersized; a bigger queue would "
            "only hide the wait."
        )
        ctx.insert(
            "Recommendation",
            category="service-capacity",
            event="<service>",
            severity=max(ctx["lv"], ctx["bv"]),
            message=(
                "both queue-wait and rejection rate are over budget: add "
                "workers (capacity), not queue depth (latency)"
            ),
        )

    return (
        RuleBuilder(
            "Saturated pool sheds load",
            salience=15,
            doc="serve: join latency with backpressure → capacity verdict",
        )
        .when(
            "lat",
            "ServiceDegradedFact",
            ("reason", "==", "queue-latency"),
            "lv := value",
        )
        .when(
            "bp",
            "ServiceDegradedFact",
            ("reason", "==", "backpressure"),
            "bv := value",
        )
        .then(action)
        .build()
    )


def cold_cache_rule(
    *, hit_rate_threshold: float = COLD_CACHE_HIT_RATE
) -> Rule:
    """Plenty of traffic but almost no cache hits → the workload never
    repeats, or every submission varies a parameter that shouldn't join
    the content address."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Cache is cold: {ctx['chr']:.1%} hit rate over {ctx['fin']} "
            "finished jobs."
        )
        ctx.insert(
            "Recommendation",
            category="service-cold-cache",
            event="<service>",
            severity=1.0 - ctx["chr"],
            message=(
                f"cache hit rate is {ctx['chr']:.1%}: repeated analyses "
                "are not repeating — check that submissions reuse exact "
                "parameters, or drop non-semantic params from the job"
            ),
        )

    return (
        RuleBuilder(
            "Result cache is cold under real traffic",
            salience=5,
            doc="serve: a cache that never hits is wasted memory",
        )
        .when(
            "s",
            "ServiceStatsFact",
            "chr := cacheHitRate",
            "fin := finished",
            ("finished", ">=", _MIN_FINISHED_FOR_CACHE_ADVICE),
            ("cacheHitRate", "<", hit_rate_threshold),
        )
        .then(action)
        .build()
    )


def latency_trend_rule() -> Rule:
    """Queue wait grows snapshot over snapshot → act before it's an
    incident.  Consumes ``ServiceTrendFact`` rows from
    :func:`repro.serve.monitor.service_trend_facts` — the *trend* layer
    the point-in-time rules above cannot see."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Trend (queue-wait-p95): {ctx['first']:.4f}s → "
            f"{ctx['last']:.4f}s over {ctx['n']} snapshots."
        )
        ctx.insert(
            "Recommendation",
            category="service-latency-trend",
            event="<service>",
            severity=ctx["last"],
            message=(
                f"p95 queue wait grew {ctx['first']:.4f}s → "
                f"{ctx['last']:.4f}s across {ctx['n']} monitor snapshots — "
                "load is outpacing the pool; add workers now, before the "
                "wait breaches its budget"
            ),
        )

    return (
        RuleBuilder(
            "Queue latency trending up",
            salience=12,
            doc="serve: monotone queue-wait growth across snapshots",
        )
        .when(
            "t",
            "ServiceTrendFact",
            ("metric", "==", "queue-wait-p95"),
            "first := first",
            "last := last",
            "n := snapshots",
        )
        .then(action)
        .build()
    )


def cache_decay_trend_rule() -> Rule:
    """Hit rate decays across snapshots → the workload drifted away from
    what the cache holds (or invalidations are churning it)."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Trend (cache-hit-rate): {ctx['first']:.1%} → "
            f"{ctx['last']:.1%} over {ctx['n']} snapshots."
        )
        ctx.insert(
            "Recommendation",
            category="service-cache-decay",
            event="<service>",
            severity=ctx["first"] - ctx["last"],
            message=(
                f"cache hit rate decayed {ctx['first']:.1%} → "
                f"{ctx['last']:.1%} across {ctx['n']} snapshots — the "
                "workload is drifting from the cached population; check "
                "for parameter churn or an undersized cache evicting hot "
                "entries"
            ),
        )

    return (
        RuleBuilder(
            "Cache hit rate trending down",
            salience=12,
            doc="serve: monotone hit-rate decay across snapshots",
        )
        .when(
            "t",
            "ServiceTrendFact",
            ("metric", "==", "cache-hit-rate"),
            "first := first",
            "last := last",
            "n := snapshots",
        )
        .then(action)
        .build()
    )


def worker_churn_trend_rule() -> Rule:
    """Workers keep getting respawned → something in the handlers (or a
    poison job) is repeatedly wedging vehicles."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Trend (worker-respawns): +{ctx['chg']:.0f} respawns over "
            f"{ctx['n']} snapshots."
        )
        ctx.insert(
            "Recommendation",
            category="service-worker-churn",
            event="<service>",
            severity=ctx["chg"],
            message=(
                f"{ctx['chg']:.0f} worker respawns across {ctx['n']} "
                "snapshots — a handler or job kind is repeatedly timing "
                "out and wedging vehicles; find it with `serve status` "
                "and `serve explain-job`, and raise its timeout or fix it"
            ),
        )

    return (
        RuleBuilder(
            "Workers respawn-churning",
            salience=12,
            doc="serve: respawn count climbing across snapshots",
        )
        .when(
            "t",
            "ServiceTrendFact",
            ("metric", "==", "worker-respawns"),
            "chg := change",
            "n := snapshots",
        )
        .then(action)
        .build()
    )


def service_rules(**overrides) -> list[Rule]:
    """The ``service-rules`` rulebase content."""
    cache_kw = {}
    if "hit_rate_threshold" in overrides:
        cache_kw["hit_rate_threshold"] = overrides.pop("hit_rate_threshold")
    if overrides:
        raise ValueError(f"unknown threshold overrides: {sorted(overrides)}")
    return [
        service_summary_rule(),
        saturated_and_shedding_rule(),
        queue_latency_rule(),
        failure_rate_rule(),
        backpressure_rule(),
        cold_cache_rule(**cache_kw),
        latency_trend_rule(),
        cache_decay_trend_rule(),
        worker_churn_trend_rule(),
    ]


register_rulebase(RULEBASE_NAME, service_rules)
