"""The expert rulebase: the paper's diagnosis knowledge as rules.

Every rule asserts a ``Recommendation`` fact (category + event + severity +
message + category-specific fields) and logs an explanation.  The
categories are the vocabulary :class:`repro.openuh.feedback.FeedbackOptimizer`
understands, closing the Fig. 3 loop.

Thresholds are module constants so the ablation benchmark can sweep them;
the defaults are the paper's: imbalance ratio 0.25, severity 5%, stall
coverage 90%, stall/cycle severity 10%.
"""

from __future__ import annotations

from ..rules import Rule, RuleBuilder, RuleContext

# -- the paper's thresholds ---------------------------------------------------
IMBALANCE_RATIO_THRESHOLD = 0.25
IMBALANCE_SEVERITY_THRESHOLD = 0.05
IMBALANCE_CORRELATION_THRESHOLD = -0.5
STALL_RATE_SEVERITY_THRESHOLD = 0.10
STALL_COVERAGE_THRESHOLD = 0.90
LOCALITY_SEVERITY_THRESHOLD = 0.05
SERIALIZATION_CONCENTRATION_THRESHOLD = 0.80
SERIALIZATION_SEVERITY_THRESHOLD = 0.10


def load_imbalance_rule(
    *,
    ratio_threshold: float = IMBALANCE_RATIO_THRESHOLD,
    severity_threshold: float = IMBALANCE_SEVERITY_THRESHOLD,
    correlation_threshold: float = IMBALANCE_CORRELATION_THRESHOLD,
) -> Rule:
    """§III.A: the four-condition load-imbalance rule.

    1. both loops have stddev/mean ratio above threshold,
    2. both occupy more than ``severity_threshold`` of runtime,
    3. the events are nested (a callgraph edge joins them),
    4. their per-thread times are strongly negatively correlated.
    """

    def action(ctx: RuleContext) -> None:
        parent, child = ctx["pn"], ctx["cn"]
        ctx.log(
            f"Load imbalance: {child} (inside {parent}) is unbalanced "
            f"across threads (ratio {ctx['cratio']:.3f}); threads leaving "
            f"{child} early wait in {parent} (correlation "
            f"{ctx['corr']:.2f})."
        )
        ctx.log(
            "    Suggested scheduling change: schedule(dynamic,1) on the "
            "parallel loop."
        )
        ctx.insert(
            "Recommendation",
            category="load-imbalance",
            event=child,
            parent=parent,
            severity=ctx["csev"],
            imbalance_ratio=ctx["cratio"],
            suggested_schedule="dynamic,1",
            message=f"unbalanced work in {child}; use dynamic scheduling",
        )

    return (
        RuleBuilder(
            "Load imbalance with barrier waiting",
            salience=10,
            doc="MSA case study: imbalance + nesting + negative correlation",
        )
        .when(
            "p",
            "ImbalanceFact",
            "pn := eventName",
            ("ratio", ">", ratio_threshold),
            ("severity", ">", severity_threshold),
        )
        .when(
            "c",
            "ImbalanceFact",
            "cn := eventName",
            "cratio := ratio",
            "csev := severity",
            ("ratio", ">", ratio_threshold),
            ("severity", ">", severity_threshold),
        )
        .when(
            "edge",
            "CallGraphEdge",
            ("parent", "==", "$pn"),
            ("child", "==", "$cn"),
        )
        .when(
            "corr_fact",
            "CorrelationFact",
            ("eventA", "==", "$pn"),
            ("eventB", "==", "$cn"),
            "corr := correlation",
            ("correlation", "<", correlation_threshold),
        )
        .then(action)
        .build()
    )


def high_inefficiency_rule(
    *, severity_threshold: float = STALL_RATE_SEVERITY_THRESHOLD
) -> Rule:
    """§III.B script 1: events with higher-than-main Inefficiency."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']} has higher than average inefficiency "
            f"(FP_OPS x stall rate): {ctx['v']:.4g} vs {ctx['a']:.4g}"
        )
        ctx.insert(
            "Recommendation",
            category="stall-per-cycle",
            event=ctx["e"],
            severity=ctx["f"]["severity"],
            message=f"{ctx['e']} wastes FP capacity on stalls; examine its "
            "memory behaviour",
        )

    return (
        RuleBuilder(
            "High inefficiency",
            salience=8,
            doc="Inefficiency = FP_OPS * (stalls/cycles), compared to main",
        )
        .when(
            "f",
            "MeanEventFact",
            ("metric", "==", "Inefficiency"),
            ("higherLower", "==", "higher"),
            ("severity", ">", severity_threshold),
            "e := eventName",
            "a := mainValue",
            "v := eventValue",
            ("factType", "==", "Compared to Main"),
        )
        .then(action)
        .build()
    )


def memory_bound_rule(
    *, coverage_threshold: float = STALL_COVERAGE_THRESHOLD,
    severity_threshold: float = IMBALANCE_SEVERITY_THRESHOLD,
) -> Rule:
    """§III.B script 2: ≥90% of stalls from memory + FP, memory dominant."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']}: {ctx['cov']:.0%} of stalls are memory+FP "
            f"(memory {ctx['mem']:.0%}); memory-bound."
        )
        ctx.insert(
            "Recommendation",
            category="memory-bound",
            event=ctx["e"],
            severity=ctx["sev"],
            memory_fraction=ctx["mem"],
            message=f"{ctx['e']} is memory-bound; run the locality analysis",
        )

    def guard(bindings) -> bool:
        return bindings["mem"] >= bindings["fp"]

    return (
        RuleBuilder(
            "Memory-bound stalls",
            salience=7,
            doc="stall decomposition: memory + FP cover >=90%, memory wins",
        )
        .when(
            "d",
            "StallDecomposition",
            "e := eventName",
            "mem := memoryFraction",
            "fp := fpFraction",
            "cov := coveredFraction",
            "sev := severity",
            ("coveredFraction", ">=", coverage_threshold),
            ("severity", ">", severity_threshold),
        )
        .test(guard, "memoryFraction >= fpFraction")
        .then(action)
        .build()
    )


def fp_bound_rule(
    *, coverage_threshold: float = STALL_COVERAGE_THRESHOLD,
    severity_threshold: float = IMBALANCE_SEVERITY_THRESHOLD,
) -> Rule:
    """Symmetric: FP stalls dominate — a scheduling/pipelining target."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']}: FP stalls dominate ({ctx['fp']:.0%}); "
            "dependency chains limit the pipeline."
        )
        ctx.insert(
            "Recommendation",
            category="fp-bound",
            event=ctx["e"],
            severity=ctx["sev"],
            message=f"{ctx['e']} is FP-latency-bound; favour software "
            "pipelining / vectorization",
        )

    def guard(bindings) -> bool:
        return bindings["fp"] > bindings["mem"]

    return (
        RuleBuilder("FP-bound stalls", salience=7)
        .when(
            "d",
            "StallDecomposition",
            "e := eventName",
            "mem := memoryFraction",
            "fp := fpFraction",
            "sev := severity",
            ("coveredFraction", ">=", coverage_threshold),
            ("severity", ">", severity_threshold),
        )
        .test(guard, "fpFraction > memoryFraction")
        .then(action)
        .build()
    )


def unexplained_stalls_rule(
    *, coverage_threshold: float = STALL_COVERAGE_THRESHOLD,
    severity_threshold: float = IMBALANCE_SEVERITY_THRESHOLD,
) -> Rule:
    """The paper's methodology escape hatch: below 90% coverage, collect
    the remaining decomposition counters in additional runs."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']}: only {ctx['cov']:.0%} of stalls explained "
            "by memory+FP; additional counter runs required (branch, "
            "I-miss, stack engine, register dependencies, flushes)."
        )
        ctx.insert(
            "Recommendation",
            category="more-counters",
            event=ctx["e"],
            severity=ctx["sev"],
            message=f"re-run {ctx['e']} with the full stall counter set",
        )

    return (
        RuleBuilder("Stall sources unexplained", salience=3)
        .when(
            "d",
            "StallDecomposition",
            "e := eventName",
            "cov := coveredFraction",
            "sev := severity",
            ("coveredFraction", "<", coverage_threshold),
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def data_locality_rule(
    *, severity_threshold: float = LOCALITY_SEVERITY_THRESHOLD
) -> Rule:
    """§III.B script 3: events with worse-than-average remote ratios."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']}: remote-access ratio {ctx['r']:.0%} vs "
            f"application average {ctx['avg']:.0%} — poor data locality "
            "(first-touch placed its pages elsewhere)."
        )
        ctx.log(
            "    Parallelize the initialization loops so first-touch "
            "places data with its consumers."
        )
        ctx.insert(
            "Recommendation",
            category="data-locality",
            event=ctx["e"],
            severity=ctx["sev"],
            remote_ratio=ctx["r"],
            message=f"{ctx['e']} reads mostly remote memory; fix first-touch "
            "initialization",
        )

    def worse_than_average(bindings) -> bool:
        # both relative (5% above the app average) and absolute (at least
        # 5% remote) — an all-local application has nothing to fix
        return bindings["r"] > max(bindings["avg"] * 1.05, 0.05)

    return (
        RuleBuilder(
            "Poor data locality",
            salience=9,
            doc="GenIDLEST: remote accesses above the application average",
        )
        .when(
            "l",
            "LocalityFact",
            "e := eventName",
            "r := remoteRatio",
            "avg := appRemoteRatio",
            "sev := severity",
            ("severity", ">", severity_threshold),
        )
        .test(worse_than_average, "remoteRatio > appRemoteRatio")
        .then(action)
        .build()
    )


def sequential_bottleneck_rule(
    *,
    concentration_threshold: float = SERIALIZATION_CONCENTRATION_THRESHOLD,
    severity_threshold: float = SERIALIZATION_SEVERITY_THRESHOLD,
) -> Rule:
    """The exchange_var diagnosis: significant work stuck on one thread."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Event {ctx['e']} is effectively sequential "
            f"({ctx['c']:.0%} of its time on one thread) and costs "
            f"{ctx['sev']:.0%} of the runtime — it limits scalability."
        )
        ctx.log("    Parallelize its copies across threads (direct copies, "
                "no intermediate buffers).")
        ctx.insert(
            "Recommendation",
            category="sequential-bottleneck",
            event=ctx["e"],
            severity=ctx["sev"],
            concentration=ctx["c"],
            message=f"parallelize {ctx['e']}",
        )

    return (
        RuleBuilder("Sequential bottleneck", salience=9)
        .when(
            "s",
            "SerializationFact",
            "e := eventName",
            "c := concentration",
            "sev := severity",
            ("concentration", ">", concentration_threshold),
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def thread_population_rule(*, separation_threshold: float = 2.0) -> Rule:
    """Data-mining corroboration: k-means finds distinct thread populations.

    When clustering splits the threads into groups whose total times differ
    by more than ``separation_threshold``×, the run has structurally
    different thread roles — either intended (master/worker) or a symptom
    (bad schedule, NUMA victim threads).
    """

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Thread clustering ({ctx['k']} clusters, sizes {ctx['sizes']}) "
            f"separates populations by {ctx['sep']:.1f}x on {ctx['m']} — "
            "threads are not doing equivalent work."
        )
        ctx.insert(
            "Recommendation",
            category="thread-populations",
            event="<threads>",
            severity=0.0,
            separation=ctx["sep"],
            message="inspect why thread groups diverge (schedule, NUMA, "
            "master-only work)",
        )

    return (
        RuleBuilder("Distinct thread populations", salience=2)
        .when(
            "c",
            "ThreadClusterFact",
            "sep := separation",
            "sizes := sizes",
            "k := k",
            "m := metric",
            ("separation", ">", separation_threshold),
        )
        .then(action)
        .build()
    )


# -- power/energy rules (§III.C) ---------------------------------------------


def lowest_power_rule() -> Rule:
    """Recommend the optimization level with the lowest power draw."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Lowest power: {ctx['lvl']} ({ctx['w']:.1f} W) — enable it when "
            "compiling for low power (cooling/reliability constraints)."
        )
        ctx.insert(
            "Recommendation",
            category="power",
            target="power",
            suggested_level=ctx["lvl"],
            severity=0.0,
            message=f"compile at {ctx['lvl']} for lowest power",
        )

    return (
        RuleBuilder("Lowest power level", salience=5)
        .when("f", "PowerLevelFact", "lvl := level", "w := watts")
        .when_not("PowerLevelFact", ("watts", "<", "$w"))
        .then(action)
        .build()
    )


def lowest_energy_rule() -> Rule:
    """Recommend the level with the lowest energy (joules)."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Lowest energy: {ctx['lvl']} ({ctx['j']:.3g} J) — enable it "
            "when compiling for energy efficiency."
        )
        ctx.insert(
            "Recommendation",
            category="energy",
            target="energy",
            suggested_level=ctx["lvl"],
            severity=0.0,
            message=f"compile at {ctx['lvl']} for lowest energy",
        )

    return (
        RuleBuilder("Lowest energy level", salience=5)
        .when("f", "PowerLevelFact", "lvl := level", "j := joules")
        .when_not("PowerLevelFact", ("joules", "<", "$j"))
        .then(action)
        .build()
    )


def balanced_power_energy_rule() -> Rule:
    """The paper's 'O2 for both power and energy efficiency'.

    A level qualifies when its power draw stays at the floor (the
    ``near_baseline_power`` flag computed at fact generation); among the
    qualifiers, the one with the lowest energy wins.  On Table I this
    selects O2: O1/O3 burn measurably more watts, and O0 wastes energy.
    """

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Best power x energy balance: {ctx['lvl']} "
            f"({ctx['w']:.1f} W at the power floor, {ctx['j']:.3g} J)."
        )
        ctx.insert(
            "Recommendation",
            category="power",
            target="both",
            suggested_level=ctx["lvl"],
            severity=0.0,
            message=f"compile at {ctx['lvl']} for power and energy balance",
        )

    return (
        RuleBuilder("Balanced power-energy level", salience=4)
        .when("f", "PowerLevelFact", "lvl := level", "w := watts",
              "j := joules", ("near_baseline_power", "==", True))
        .when_not(
            "PowerLevelFact",
            ("near_baseline_power", "==", True),
            ("joules", "<", "$j"),
        )
        .then(action)
        .build()
    )


# -- trace/timeline rules -----------------------------------------------------
WAIT_STATE_SEVERITY_THRESHOLD = 0.05


def late_sender_rule(
    *, severity_threshold: float = WAIT_STATE_SEVERITY_THRESHOLD
) -> Rule:
    """Trace diagnosis: a rank whose late sends make receivers block."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Late sender: rank {ctx['r']} delivered messages late "
            f"{ctx['n']} time(s); receivers (worst: rank {ctx['v']}) spent "
            f"{ctx['ws']*1e3:.3f} ms blocked in {ctx['ev']}."
        )
        ctx.log(
            "    Post the matching sends earlier, or overlap the wait with "
            "independent computation on the receiving rank."
        )
        ctx.insert(
            "Recommendation",
            category="late-sender",
            event=ctx["ev"],
            rank=ctx["r"],
            victim=ctx["v"],
            severity=ctx["sev"],
            wait_seconds=ctx["ws"],
            message=f"rank {ctx['r']} sends late; receivers idle in {ctx['ev']}",
        )

    return (
        RuleBuilder(
            "Late sender",
            salience=9,
            doc="wait-state analysis: receiver blocked until a message landed",
        )
        .when(
            "w",
            "WaitStateFact",
            ("kind", "==", "late-sender"),
            "r := rank",
            "v := victimRank",
            "ws := waitSeconds",
            "n := occurrences",
            "ev := eventName",
            "sev := severity",
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def late_receiver_rule(
    *, severity_threshold: float = WAIT_STATE_SEVERITY_THRESHOLD
) -> Rule:
    """Trace diagnosis: messages sat fully transferred while the receiver
    was busy elsewhere (eager-protocol late receiver)."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Late receiver: rank {ctx['r']} entered {ctx['ev']} after its "
            f"messages (from rank {ctx['v']}) had already arrived, "
            f"{ctx['n']} time(s), {ctx['ws']*1e3:.3f} ms of queueing."
        )
        ctx.insert(
            "Recommendation",
            category="late-receiver",
            event=ctx["ev"],
            rank=ctx["r"],
            victim=ctx["v"],
            severity=ctx["sev"],
            wait_seconds=ctx["ws"],
            message=f"rank {ctx['r']} consumes messages late in {ctx['ev']}",
        )

    return (
        RuleBuilder(
            "Late receiver",
            salience=9,
            doc="wait-state analysis: message queued before the receiver waited",
        )
        .when(
            "w",
            "WaitStateFact",
            ("kind", "==", "late-receiver"),
            "r := rank",
            "v := victimRank",
            "ws := waitSeconds",
            "n := occurrences",
            "ev := eventName",
            "sev := severity",
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def barrier_straggler_rule(
    *, severity_threshold: float = WAIT_STATE_SEVERITY_THRESHOLD
) -> Rule:
    """Trace diagnosis: one participant's late arrival stalls a barrier or
    collective for everyone (MPI ranks or OpenMP threads)."""

    def action(ctx: RuleContext) -> None:
        who = "thread" if ctx["con"] == "openmp" else "rank"
        ctx.log(
            f"Barrier straggler: {who} {ctx['r']} arrived last at "
            f"{ctx['ev']} {ctx['n']} time(s); the earliest {who} "
            f"({ctx['v']}) lost {ctx['ws']*1e3:.3f} ms waiting."
        )
        ctx.log(
            f"    Rebalance the work feeding {ctx['ev']} so {who} "
            f"{ctx['r']} stops arriving last."
        )
        ctx.insert(
            "Recommendation",
            category="barrier-straggler",
            event=ctx["ev"],
            rank=ctx["r"],
            victim=ctx["v"],
            construct=ctx["con"],
            severity=ctx["sev"],
            wait_seconds=ctx["ws"],
            message=f"{who} {ctx['r']} straggles into {ctx['ev']}",
        )

    return (
        RuleBuilder(
            "Barrier straggler",
            salience=9,
            doc="wait-state analysis: last arrival dominates barrier time",
        )
        .when(
            "w",
            "WaitStateFact",
            ("kind", "==", "barrier-straggler"),
            "r := rank",
            "v := victimRank",
            "ws := waitSeconds",
            "n := occurrences",
            "ev := eventName",
            "con := construct",
            "sev := severity",
            ("severity", ">", severity_threshold),
        )
        .then(action)
        .build()
    )


def phase_imbalance_rule(
    *,
    ratio_threshold: float = IMBALANCE_RATIO_THRESHOLD,
    severity_threshold: float = IMBALANCE_SEVERITY_THRESHOLD,
) -> Rule:
    """Timeline diagnosis: imbalance resolved over interval snapshots.

    Where the §III.A rule can only say "imbalance exists", the snapshot
    timeline lets this rule say *when*: growing across iterations (an
    evolving decomposition problem), or persistent with a worst interval.
    """

    def action(ctx: RuleContext) -> None:
        trend = ctx["trend"]
        worst = ctx["wi"]
        label = ctx["wl"] or f"interval {worst}"
        if trend == "growing":
            ctx.log(
                f"Phase imbalance: {ctx['e']} imbalance GROWS over "
                f"{ctx['k']} intervals (ratio {ctx['fr']:.3f} -> "
                f"{ctx['lr']:.3f}); worst at {label}."
            )
            ctx.log(
                "    The decomposition degrades as the run progresses — "
                "rebalance periodically, not just at startup."
            )
        else:
            ctx.log(
                f"Phase imbalance: {ctx['e']} is unbalanced in time "
                f"(max ratio {ctx['mr']:.3f} at {label}, trend {trend})."
            )
        ctx.insert(
            "Recommendation",
            category="phase-imbalance",
            event=ctx["e"],
            severity=ctx["sev"],
            trend=trend,
            worst_interval=worst,
            worst_label=ctx["wl"],
            first_ratio=ctx["fr"],
            last_ratio=ctx["lr"],
            message=f"imbalance in {ctx['e']} is {trend} over intervals "
                    f"(worst: {label})",
        )

    return (
        RuleBuilder(
            "Phase imbalance over intervals",
            salience=9,
            doc="snapshot timeline: imbalance trajectory across phases",
        )
        .when(
            "p",
            "PhaseImbalanceFact",
            "e := eventName",
            "k := intervals",
            "fr := firstRatio",
            "lr := lastRatio",
            "mr := maxRatio",
            "wi := worstInterval",
            "wl := worstLabel",
            "trend := trend",
            "sev := severity",
            ("maxRatio", ">", ratio_threshold),
            ("severity", ">", severity_threshold),
            ("intervals", ">=", 2),
        )
        .then(action)
        .build()
    )
