"""ExperimentRules: the knowledge layer critiques the experiment itself.

The paper's closing argument is that captured knowledge should judge
*processes*, not just profiles.  :mod:`repro.experiments` summarizes
each sweep as an ``ExperimentSummaryFact`` (cases, adaptive reruns,
non-converged cases, failures); this rulebase turns that into advice —
loosen or tighten the rigor policy, look at noisy cases, rerun failures
— through the same inference engine that diagnoses trials.

Registers under ``"experiment-rules"`` so ``RuleHarness
("experiment-rules")`` — and ``exp report`` /
``ExperimentResult.diagnose()`` — resolve it by name.
"""

from __future__ import annotations

from ..core.harness import register_rulebase
from ..rules import Rule, RuleBuilder, RuleContext

RULEBASE_NAME = "experiment-rules"

#: Mean adaptive reruns per case above which the noise floor (not the
#: science) is driving the experiment's cost.
RERUN_HEAVY_RATE = 1.0


def experiment_summary_rule() -> Rule:
    """Headline logging: one line of sweep health before any advice."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Experiment {ctx['spec']!r}: {ctx['cases']} case(s) — "
            f"{ctx['conv']} converged, {ctx['nc']} non-converged, "
            f"{ctx['fail']} failed; {ctx['runs']} run(s) total, "
            f"{ctx['reruns']} adaptive rerun(s), "
            f"{ctx['outliers']} outlier(s) dropped."
        )

    return (
        RuleBuilder(
            "Experiment summary",
            salience=20,
            doc="experiments: log the sweep headline first",
        )
        .when(
            "e",
            "ExperimentSummaryFact",
            "spec := spec",
            "cases := cases",
            "conv := converged",
            "nc := nonConverged",
            "fail := failed",
            "runs := totalRuns",
            "reruns := reruns",
            "outliers := outliers",
        )
        .then(action)
        .build()
    )


def non_convergence_rule() -> Rule:
    """Cases hit the rerun cap without a tight interval → the rigor
    policy and the noise level disagree."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"{ctx['nc']} of {ctx['cases']} case(s) hit the rerun cap "
            "without converging."
        )
        ctx.insert(
            "Recommendation",
            category="experiment-non-convergence",
            event="<experiment>",
            severity=ctx["nc"] / max(ctx["cases"], 1),
            message=(
                f"{ctx['nc']} case(s) never met the CI half-width "
                "target: raise [rigor] max_runs, loosen "
                "relative_halfwidth, or reduce the injected noise — "
                "and inspect those cases for genuine run-to-run "
                "variance worth diagnosing"
            ),
        )

    return (
        RuleBuilder(
            "Cases failed to converge",
            salience=10,
            doc="experiments: rerun cap hit → policy vs noise mismatch",
        )
        .when(
            "e",
            "ExperimentSummaryFact",
            ("nonConverged", ">", 0),
            "nc := nonConverged",
            "cases := cases",
        )
        .then(action)
        .build()
    )


def failed_cases_rule() -> Rule:
    """Cases failed outright (handler errors, timeouts) → resume retries
    them, but the errors deserve eyes first."""

    def action(ctx: RuleContext) -> None:
        ctx.log(f"{ctx['fail']} case(s) failed outright.")
        ctx.insert(
            "Recommendation",
            category="experiment-failed-cases",
            event="<experiment>",
            severity=ctx["fail"] / max(ctx["cases"], 1),
            message=(
                f"{ctx['fail']} case(s) failed: inspect their errors "
                "(`exp status`), then re-run the same spec — resume "
                "retries failed cases and skips everything converged"
            ),
        )

    return (
        RuleBuilder(
            "Cases failed outright",
            salience=10,
            doc="experiments: failures retry on resume, after a look",
        )
        .when(
            "e",
            "ExperimentSummaryFact",
            ("failed", ">", 0),
            "fail := failed",
            "cases := cases",
        )
        .then(action)
        .build()
    )


def rerun_heavy_rule(*, rate_threshold: float = RERUN_HEAVY_RATE) -> Rule:
    """The sweep converged, but only by brute reruns — the measurement
    noise is eating the budget."""

    def action(ctx: RuleContext) -> None:
        ctx.log(
            f"Rerun-heavy sweep: {ctx['rate']:.2f} adaptive rerun(s) per "
            "case on average."
        )
        ctx.insert(
            "Recommendation",
            category="experiment-rerun-heavy",
            event="<experiment>",
            severity=ctx["rate"],
            message=(
                f"averaging {ctx['rate']:.2f} extra run(s) per case to "
                "reach the CI target: the noise floor is driving cost — "
                "quiet the platform, or accept a wider "
                "relative_halfwidth"
            ),
        )

    return (
        RuleBuilder(
            "Adaptive reruns dominate the budget",
            salience=5,
            doc="experiments: many reruns per case → noisy measurements",
        )
        .when(
            "e",
            "ExperimentSummaryFact",
            ("rerunRate", ">", rate_threshold),
            "rate := rerunRate",
        )
        .then(action)
        .build()
    )


def experiment_rules(**overrides) -> list[Rule]:
    """The ``experiment-rules`` rulebase content."""
    rerun_kw = {}
    if "rate_threshold" in overrides:
        rerun_kw["rate_threshold"] = overrides.pop("rate_threshold")
    if overrides:
        raise ValueError(f"unknown threshold overrides: {sorted(overrides)}")
    return [
        experiment_summary_rule(),
        non_convergence_rule(),
        failed_cases_rule(),
        rerun_heavy_rule(**rerun_kw),
    ]


register_rulebase(RULEBASE_NAME, experiment_rules)
