"""Assembly of the shipped rulebase and the high-level diagnosis scripts.

``openuh_rules()`` merges the Python-defined rules (rules_def) with the
``.prl``-defined ones (OpenUHRules.prl) and registers the result under the
name ``"openuh-rules"`` so scripts can write
``RuleHarness.useGlobalRules("openuh-rules")`` — the Fig. 1 call.

The ``diagnose_*`` functions are the complete analysis scripts of §III:
each builds a harness, generates facts from the trial, fires the rules, and
returns the harness for inspection (output lines, Recommendation facts).
"""

from __future__ import annotations

from importlib import resources

from ..core.facts import trial_metadata_facts
from ..core.harness import RuleHarness, register_rulebase
from ..core.result import PerformanceResult
from ..perfdmf import Trial
from ..power.energy import LevelMeasurement
from ..rules import Rule, parse_rules
from . import rules_def
from .facts_gen import (
    imbalance_facts,
    thread_cluster_facts,
    inefficiency_facts,
    locality_facts,
    phase_imbalance_facts,
    power_level_facts,
    serialization_facts,
    stall_decomposition_facts,
    stall_rate_facts,
    wait_state_facts,
)

RULEBASE_NAME = "openuh-rules"


def prl_rules() -> list[Rule]:
    """The rules shipped in OpenUHRules.prl."""
    text = (
        resources.files("repro.knowledge")
        .joinpath("OpenUHRules.prl")
        .read_text()
    )
    return parse_rules(text)


def openuh_rules(**threshold_overrides) -> list[Rule]:
    """The full shipped rulebase (Python + .prl faces).

    ``threshold_overrides`` are forwarded to the Python rule factories
    (``ratio_threshold=...`` etc.) by matching parameter names — unknown
    names raise, so ablations cannot silently misconfigure a rule.
    """

    def take(factory, *names):
        kw = {}
        for name in names:
            if name in threshold_overrides:
                kw[name] = threshold_overrides[name]
        return factory(**kw)

    known = {
        "ratio_threshold",
        "severity_threshold",
        "correlation_threshold",
        "coverage_threshold",
        "concentration_threshold",
    }
    unknown = set(threshold_overrides) - known
    if unknown:
        raise ValueError(f"unknown threshold overrides: {sorted(unknown)}")

    rules = [
        take(rules_def.load_imbalance_rule,
             "ratio_threshold", "severity_threshold", "correlation_threshold"),
        take(rules_def.high_inefficiency_rule, "severity_threshold"),
        take(rules_def.memory_bound_rule,
             "coverage_threshold", "severity_threshold"),
        take(rules_def.fp_bound_rule,
             "coverage_threshold", "severity_threshold"),
        take(rules_def.unexplained_stalls_rule,
             "coverage_threshold", "severity_threshold"),
        take(rules_def.data_locality_rule, "severity_threshold"),
        take(rules_def.sequential_bottleneck_rule,
             "concentration_threshold", "severity_threshold"),
        take(rules_def.late_sender_rule, "severity_threshold"),
        take(rules_def.late_receiver_rule, "severity_threshold"),
        take(rules_def.barrier_straggler_rule, "severity_threshold"),
        take(rules_def.phase_imbalance_rule,
             "ratio_threshold", "severity_threshold"),
        rules_def.thread_population_rule(),
        rules_def.lowest_power_rule(),
        rules_def.lowest_energy_rule(),
        rules_def.balanced_power_energy_rule(),
    ]
    rules.extend(prl_rules())
    return rules


# register the default rulebase for RuleHarness.useGlobalRules("openuh-rules")
register_rulebase(RULEBASE_NAME, openuh_rules)


def _harness(*, indexing: bool = True, **overrides) -> RuleHarness:
    # `indexing` configures the engine (naive vs alpha-indexed matching —
    # same diagnoses either way); everything else is a threshold override.
    return RuleHarness(openuh_rules(**overrides), indexing=indexing)


def diagnose_load_balance(
    trial: Trial, *, harness: RuleHarness | None = None, **overrides
) -> RuleHarness:
    """§III.A: the MSA load-balancing diagnosis script."""
    h = harness or _harness(**overrides)
    result = PerformanceResult(trial)
    h.assertObjects(imbalance_facts(result))
    h.assertObjects(trial_metadata_facts(result))
    if result.thread_count >= 4:
        h.assertObjects(thread_cluster_facts(result))
    h.processRules()
    return h


def diagnose_stalls(
    trial: Trial, *, harness: RuleHarness | None = None, **overrides
) -> RuleHarness:
    """§III.B scripts 1+2: inefficiency, stall rate, stall decomposition."""
    h = harness or _harness(**overrides)
    result = PerformanceResult(trial)
    h.assertObjects(stall_rate_facts(result))
    h.assertObjects(inefficiency_facts(result))
    h.assertObjects(stall_decomposition_facts(result))
    h.processRules()
    return h


def diagnose_locality(
    trial: Trial, *, harness: RuleHarness | None = None, **overrides
) -> RuleHarness:
    """§III.B script 3: remote-access ratios + serialization detection."""
    h = harness or _harness(**overrides)
    result = PerformanceResult(trial)
    h.assertObjects(locality_facts(result))
    h.assertObjects(serialization_facts(result))
    h.processRules()
    return h


def diagnose_genidlest(
    trial: Trial, *, harness: RuleHarness | None = None, **overrides
) -> RuleHarness:
    """The full §III.B pipeline: all three scripts over one trial."""
    h = harness or _harness(**overrides)
    result = PerformanceResult(trial)
    h.assertObjects(stall_rate_facts(result))
    h.assertObjects(inefficiency_facts(result))
    h.assertObjects(stall_decomposition_facts(result))
    h.assertObjects(locality_facts(result))
    h.assertObjects(serialization_facts(result))
    h.assertObjects(trial_metadata_facts(result))
    h.processRules()
    return h


def diagnose_timeline(
    *,
    trace=None,
    snapshots=None,
    trial: str = "run",
    harness: RuleHarness | None = None,
    min_wait_seconds: float = 1e-9,
    **overrides,
) -> RuleHarness:
    """Trace/timeline diagnosis: wait states from an event trace plus
    phase-imbalance trajectories from interval snapshots.

    Either input may be omitted; whatever evidence is available becomes
    facts and the timeline rules fire over it.
    """
    from ..core.operations.tracing import detect_wait_states

    h = harness or _harness(**overrides)
    if trace is not None:
        states = detect_wait_states(trace, min_wait_seconds=min_wait_seconds)
        h.assertObjects(wait_state_facts(
            states, trial=trial, wall_seconds=trace.duration() or None
        ))
    if snapshots:
        h.assertObjects(phase_imbalance_facts(snapshots, trial=trial))
    h.processRules()
    return h


def recommend_power_levels(
    measurements: list[LevelMeasurement],
    *,
    harness: RuleHarness | None = None,
) -> RuleHarness:
    """§III.C: which optimization level for power / energy / both."""
    h = harness or _harness()
    h.assertObjects(power_level_facts(measurements))
    h.processRules()
    return h
