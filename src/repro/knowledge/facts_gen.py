"""Analysis scripts that turn profiles into diagnosis facts.

These are the reproduction's equivalents of the paper's PerfExplorer Jython
scripts: each loads/receives trial data, runs the analysis operations, and
produces the fact vocabulary the rulebase matches:

================  ==========================================================
Fact type         Fields
================  ==========================================================
ImbalanceFact     trial, eventName, ratio (stddev/mean), severity
CorrelationFact   trial, eventA, eventB, correlation
CallGraphEdge     trial, parent, child
MeanEventFact     (see :mod:`repro.core.facts`) — metric comparisons
StallDecomposition trial, eventName, memoryFraction, fpFraction,
                  coveredFraction, severity
LocalityFact      trial, eventName, remoteRatio, appRemoteRatio, severity
SerializationFact trial, eventName, concentration, severity
PowerLevelFact    level, watts, joules, seconds
================  ==========================================================

Severity is always the event's share of mean total runtime, so every rule
can gate on significance the same way the paper's do.
"""

from __future__ import annotations

import numpy as np

from ..core.facts import MeanEventFact, severity_of
from ..core.operations.correlation import event_correlation
from ..core.operations.derive import DeriveMetricOperation
from ..core.operations.statistics import BasicStatisticsOperation
from ..core.result import AnalysisError, PerformanceResult
from ..machine import counters as C
from ..power.energy import LevelMeasurement
from ..rules import Fact

#: The paper's derived inefficiency metric name (§III.B first script).
INEFFICIENCY_METRIC = "Inefficiency"
#: The Fig. 1/Fig. 2 stall-rate metric name.
STALL_RATE_METRIC = "(BACK_END_BUBBLE_ALL / CPU_CYCLES)"


def _mean(result: PerformanceResult) -> PerformanceResult:
    if result.thread_count == 1:
        return result
    return BasicStatisticsOperation(result).mean()


def imbalance_facts(
    result: PerformanceResult, *, metric: str = C.TIME
) -> list[Fact]:
    """§III.A script: per-event imbalance ratios + pairwise correlations +
    callgraph edges, over the *per-thread* result."""
    if result.thread_count < 2:
        raise AnalysisError("imbalance analysis needs a multi-thread result")
    facts: list[Fact] = []
    mean_result = _mean(result)
    arr = result.exclusive(metric)
    means = arr.mean(axis=1)
    stds = arr.std(axis=1)
    ratios = np.divide(stds, means, out=np.zeros_like(stds), where=means != 0)
    for i, event in enumerate(result.events):
        facts.append(
            Fact(
                "ImbalanceFact",
                trial=result.name,
                eventName=event,
                ratio=float(ratios[i]),
                severity=severity_of(mean_result, event),
            )
        )
    edges = result.metadata.get("callgraph", [])
    for parent, child in edges:
        facts.append(
            Fact("CallGraphEdge", trial=result.name, parent=parent, child=child)
        )
        # correlation only where the rule will join (parent-child pairs)
        if result.has_event(parent) and result.has_event(child):
            facts.append(
                Fact(
                    "CorrelationFact",
                    trial=result.name,
                    eventA=parent,
                    eventB=child,
                    correlation=event_correlation(result, parent, child, metric),
                )
            )
    return facts


def stall_rate_facts(result: PerformanceResult) -> list[Fact]:
    """The Fig. 1 script: derive stalls/cycle, compare each event to main."""
    for needed in (C.BACK_END_BUBBLE_ALL, C.CPU_CYCLES):
        if not result.has_metric(needed):
            raise AnalysisError(f"stall-rate analysis needs {needed}")
    mean_result = _mean(result)
    op = DeriveMetricOperation(
        mean_result, C.BACK_END_BUBBLE_ALL, C.CPU_CYCLES,
        DeriveMetricOperation.DIVIDE,
    )
    derived = op.process_data()[0]
    main = derived.main_event()
    return [
        MeanEventFact.compare_event_to_main(derived, main, event, op.derived_name)
        for event in derived.events
        if event != main
    ]


def inefficiency_facts(result: PerformanceResult) -> list[Fact]:
    """§III.B first script: Inefficiency = FP_OPS × (stalls / cycles)."""
    for needed in (C.FP_OPS, C.BACK_END_BUBBLE_ALL, C.CPU_CYCLES):
        if not result.has_metric(needed):
            raise AnalysisError(f"inefficiency analysis needs {needed}")
    mean_result = _mean(result)
    rate_op = DeriveMetricOperation(
        mean_result, C.BACK_END_BUBBLE_ALL, C.CPU_CYCLES,
        DeriveMetricOperation.DIVIDE,
    )
    with_rate = rate_op.process_data()[0]
    ineff_op = DeriveMetricOperation(
        with_rate, C.FP_OPS, rate_op.derived_name,
        DeriveMetricOperation.MULTIPLY,
    )
    derived = ineff_op.process_data()[0]
    main = derived.main_event()
    facts = []
    for event in derived.events:
        if event == main:
            continue
        fact = MeanEventFact.compare_event_to_main(
            derived, main, event, ineff_op.derived_name
        )
        # rebadge under the paper's metric name so rules read naturally
        fields = fact.as_dict()
        fields["metric"] = INEFFICIENCY_METRIC
        facts.append(Fact("MeanEventFact", **fields))
    return facts


def stall_decomposition_facts(result: PerformanceResult) -> list[Fact]:
    """§III.B second script: what fraction of stalls are memory + FP?

    The paper: "If 90% of the stalls are due to these two causes, we ignore
    other sources of stalls in the formula. If that is not the case, we
    will have to perform additional runs."
    """
    needed = (C.BACK_END_BUBBLE_ALL, C.L1D_CACHE_MISS_STALLS, C.FP_STALLS)
    for metric in needed:
        if not result.has_metric(metric):
            raise AnalysisError(f"stall decomposition needs {metric}")
    mean_result = _mean(result)
    facts = []
    total = mean_result.exclusive(C.BACK_END_BUBBLE_ALL)[:, 0]
    memory = mean_result.exclusive(C.L1D_CACHE_MISS_STALLS)[:, 0]
    fp = mean_result.exclusive(C.FP_STALLS)[:, 0]
    for i, event in enumerate(mean_result.events):
        t = total[i]
        mem_frac = memory[i] / t if t > 0 else 0.0
        fp_frac = fp[i] / t if t > 0 else 0.0
        facts.append(
            Fact(
                "StallDecomposition",
                trial=result.name,
                eventName=event,
                memoryFraction=float(mem_frac),
                fpFraction=float(fp_frac),
                coveredFraction=float(mem_frac + fp_frac),
                severity=severity_of(mean_result, event),
            )
        )
    return facts


def locality_facts(result: PerformanceResult) -> list[Fact]:
    """§III.B third script: remote-access ratios vs the application mean.

    remoteRatio = remote accesses / total memory accesses per event; the
    application average provides the rule's comparison baseline (the paper
    flags events "having a lower ratio of local to remote memory references
    than the application on average").
    """
    if not result.has_metric(C.LOCAL_MEMORY_ACCESSES):
        raise AnalysisError(
            f"locality analysis needs {C.LOCAL_MEMORY_ACCESSES}"
        )
    mean_result = _mean(result)
    local = mean_result.exclusive(C.LOCAL_MEMORY_ACCESSES)[:, 0]
    if result.has_metric(C.REMOTE_MEMORY_ACCESSES):
        remote = mean_result.exclusive(C.REMOTE_MEMORY_ACCESSES)[:, 0]
    else:
        # an entirely-local run never charges the remote counter at all
        remote = np.zeros_like(local)
    totals = remote + local
    ratios = np.divide(remote, totals, out=np.zeros_like(remote), where=totals != 0)
    app_remote = float(remote.sum())
    app_total = float(totals.sum())
    app_ratio = app_remote / app_total if app_total > 0 else 0.0
    facts = []
    for i, event in enumerate(mean_result.events):
        if totals[i] == 0:
            continue  # events with no memory traffic carry no signal
        facts.append(
            Fact(
                "LocalityFact",
                trial=result.name,
                eventName=event,
                remoteRatio=float(ratios[i]),
                appRemoteRatio=app_ratio,
                severity=severity_of(mean_result, event),
            )
        )
    return facts


def serialization_facts(
    result: PerformanceResult, *, metric: str = C.TIME
) -> list[Fact]:
    """Detect work concentrated on one thread (the exchange_var pattern).

    concentration = max thread share of the event's total exclusive time
    (1/n_threads = perfectly spread, 1.0 = fully serial).  Severity here is
    the *wall-clock* share of the busiest thread's time in the event —
    serial work gates the critical path regardless of how small it looks
    when averaged across threads.
    """
    if result.thread_count < 2:
        raise AnalysisError("serialization analysis needs a multi-thread result")
    mean_result = _mean(result)
    arr = result.exclusive(metric)
    totals = arr.sum(axis=1)
    maxima = arr.max(axis=1)
    with np.errstate(invalid="ignore"):
        conc = np.divide(
            maxima, totals, out=np.zeros_like(totals), where=totals != 0
        )
    main = result.main_event()
    wall = float(
        mean_result.event_row(main, metric, inclusive=True)[0]
    )
    facts = []
    for i, event in enumerate(result.events):
        if totals[i] == 0:
            continue
        facts.append(
            Fact(
                "SerializationFact",
                trial=result.name,
                eventName=event,
                concentration=float(conc[i]),
                severity=float(maxima[i] / wall) if wall > 0 else 0.0,
            )
        )
    return facts


def thread_cluster_facts(
    result: PerformanceResult,
    *,
    metric: str = C.TIME,
    k: int = 2,
    seed: int = 0,
) -> list[Fact]:
    """Data-mining script: cluster threads by behaviour (PerfExplorer's
    original k-means use case) and report cluster separation.

    One ``ThreadClusterFact`` per run, carrying the cluster sizes and the
    ratio between the busiest and least-busy cluster's total time — a
    separation well above 1 means distinct thread populations (e.g. the
    overloaded/underloaded split a bad schedule produces).
    """
    from ..core.operations.clustering import KMeansOperation

    if result.thread_count < k:
        raise AnalysisError(
            f"cannot split {result.thread_count} threads into {k} clusters"
        )
    op = KMeansOperation(result, metric, k, seed=seed)
    labels = op.labels()
    arr = result.exclusive(metric)
    totals = arr.sum(axis=0)  # per-thread total
    cluster_means = [
        float(totals[labels == c].mean()) if (labels == c).any() else 0.0
        for c in range(k)
    ]
    lo = min(m for m in cluster_means if m > 0) if any(cluster_means) else 0.0
    hi = max(cluster_means)
    separation = hi / lo if lo > 0 else 1.0
    return [
        Fact(
            "ThreadClusterFact",
            trial=result.name,
            metric=metric,
            k=k,
            sizes=tuple(op.cluster_sizes()),
            separation=float(separation),
        )
    ]


def power_level_facts(measurements: list[LevelMeasurement]) -> list[Fact]:
    """§III.C: one fact per optimization level's power/energy outcome."""
    if not measurements:
        raise AnalysisError("no level measurements")
    min_watts = min(m.watts for m in measurements)
    return [
        Fact(
            "PowerLevelFact",
            level=m.level,
            watts=m.watts,
            joules=m.joules,
            seconds=m.seconds,
            # watts × joules: a combined objective some rules use
            product=m.watts * m.joules,
            # the paper's 'O2 for both' logic: a level qualifies for the
            # balanced recommendation only if its power stays essentially
            # at the floor (within 3% — O1/O3's overlap-driven draw sits
            # clearly above that band, O2's does not)
            near_baseline_power=bool(m.watts <= min_watts * 1.03),
        )
        for m in measurements
    ]


def wait_state_facts(
    states,
    *,
    trial: str = "trace",
    wall_seconds: float | None = None,
) -> list[Fact]:
    """Trace script: aggregate diagnosed wait states into rule facts.

    Instances are grouped by (kind, offending rank, construct, event) and
    their wait seconds summed, so one fact says "rank 3's late sends cost
    4.2 ms across 12 waits" instead of twelve separate whispers.  Severity
    is the group's share of the run's wall time (like the profile rules'
    severity), or the raw seconds when ``wall_seconds`` is unknown.
    """
    groups: dict[tuple, list] = {}
    for s in states:
        groups.setdefault((s.kind, s.rank, s.construct, s.event), []).append(s)
    facts = []
    for (kind, rank, construct, event), members in sorted(groups.items()):
        total = sum(m.wait_seconds for m in members)
        victims = {}
        for m in members:
            victims[m.victim] = victims.get(m.victim, 0.0) + m.wait_seconds
        worst_victim = max(victims, key=lambda v: victims[v])
        severity = total / wall_seconds if wall_seconds else total
        facts.append(
            Fact(
                "WaitStateFact",
                trial=trial,
                kind=kind,
                rank=rank,
                victimRank=worst_victim,
                construct=construct,
                eventName=event,
                occurrences=len(members),
                waitSeconds=total,
                severity=float(severity),
            )
        )
    return facts


def phase_imbalance_facts(
    snapshots,
    *,
    trial: str = "run",
    metric: str = C.TIME,
    min_share: float = 0.01,
) -> list[Fact]:
    """Timeline script: per-event imbalance trajectories over interval
    snapshots — the evidence behind "imbalance grows over iterations"."""
    from ..core.operations.tracing import interval_imbalance

    facts = []
    for tl in interval_imbalance(snapshots, metric=metric, min_share=min_share):
        worst = tl.worst_interval
        facts.append(
            Fact(
                "PhaseImbalanceFact",
                trial=trial,
                eventName=tl.event,
                intervals=len(tl.ratios),
                firstRatio=tl.first_ratio,
                lastRatio=tl.last_ratio,
                maxRatio=tl.max_ratio,
                worstInterval=worst,
                worstLabel=tl.labels[worst],
                growth=tl.growth,
                slope=tl.slope,
                trend=tl.trend,
                severity=tl.mean_share,
            )
        )
    return facts
