"""``python -m repro`` — the same CLI as the ``repro-perf`` script.

One parser, two front doors: environments where entry-point scripts are
awkward (CI containers, ``PYTHONPATH=src`` checkouts) can still reach
every verb, including the long-running ``serve start``.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
