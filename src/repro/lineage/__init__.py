"""repro.lineage: commit-anchored performance lineage and bisect.

The regression sentinel (:mod:`repro.regress`) answers "is this trial
slower than the baseline?"; this package answers the question engineers
actually ask next — **"since when, and which change?"**  It anchors
stored trials to code versions in a :class:`LineageStore` (side tables
in the same PerfDMF file), sweeps the sentinel's detectors along
version history (:func:`scan_range`), turns the sweep into
``lineage-rules`` working memory (:mod:`repro.lineage.facts`), and
binary-searches history for the regression-introducing version
(:class:`PerfBisector`) — synthesizing missing samples through a
:mod:`repro.serve` service with the experiments layer's rigor loop when
banked history runs out.
"""

from .bisect import (
    BisectResult,
    PerfBisector,
    ProbeRecord,
    probe_budget,
    probe_case_key,
)
from .facts import (
    degradation_facts,
    diagnose_lineage,
    drift_facts,
    lineage_facts,
)
from .scanner import PairComparison, ScanResult, scan_range
from .store import (
    LINEAGE_SCHEMA_VERSION,
    LineageStore,
    TrialRef,
    VersionRecord,
    ensure_lineage_schema,
)

__all__ = [
    "LINEAGE_SCHEMA_VERSION",
    "BisectResult",
    "LineageStore",
    "PairComparison",
    "PerfBisector",
    "ProbeRecord",
    "ScanResult",
    "TrialRef",
    "VersionRecord",
    "degradation_facts",
    "diagnose_lineage",
    "drift_facts",
    "ensure_lineage_schema",
    "lineage_facts",
    "probe_budget",
    "probe_case_key",
    "scan_range",
]
