"""LineageStore: anchoring performance history to code versions.

Perun-style performance versioning needs one spine PerfDMF lacks: a map
from *code version* (a commit id, a build tag — any stable string) to
the trials and baselines measured at that version, plus the parent
links that make "since when?" answerable.  This module adds that spine
as side tables in the same SQLite file as the trials — one artifact to
ship, lineage cascades away with its repository — versioned
independently of the core schema via ``lineage_meta.version`` with
in-place migrations, exactly like ``regress.baseline`` and
``experiments.state``.

History may be a straight line (CI building every commit of one branch)
or a DAG (merge commits, multiple parents).  Reads take a **linear fast
path** — one recursive-CTE first-parent walk in SQL — whenever no
version has more than one parent, and fall back to a DAG-aware breadth
first parent walk in Python otherwise.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..experiments.state import _retry_locked
from ..perfdmf import PerfDMF, ProfileError
from ..version import version_key

__all__ = [
    "LINEAGE_SCHEMA_VERSION",
    "LineageStore",
    "TrialRef",
    "VersionRecord",
    "ensure_lineage_schema",
]

#: Current version of the lineage-side schema.
LINEAGE_SCHEMA_VERSION = 1

_V1_TABLES = """
CREATE TABLE IF NOT EXISTS lineage_meta (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS lineage_version (
    id               INTEGER PRIMARY KEY,
    version_id       TEXT NOT NULL UNIQUE,
    code_version     TEXT NOT NULL DEFAULT '',
    rulebase_version TEXT NOT NULL DEFAULT '',
    created_at       REAL NOT NULL,
    annotations      TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS lineage_parent (
    child_id  INTEGER NOT NULL
              REFERENCES lineage_version(id) ON DELETE CASCADE,
    parent_id INTEGER NOT NULL
              REFERENCES lineage_version(id) ON DELETE CASCADE,
    ordinal   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (child_id, parent_id)
);
CREATE INDEX IF NOT EXISTS idx_lineage_parent_child
    ON lineage_parent(child_id, ordinal);
CREATE TABLE IF NOT EXISTS lineage_trial (
    version_row INTEGER NOT NULL
                REFERENCES lineage_version(id) ON DELETE CASCADE,
    trial_id    INTEGER NOT NULL
                REFERENCES trial(id) ON DELETE CASCADE,
    role        TEXT NOT NULL DEFAULT 'trial',
    PRIMARY KEY (version_row, trial_id, role)
);
CREATE INDEX IF NOT EXISTS idx_lineage_trial_version
    ON lineage_trial(version_row);
"""

#: version N → callable upgrading the schema from N to N+1.
_MIGRATIONS: dict[int, Any] = {}


def ensure_lineage_schema(db: PerfDMF) -> int:
    """Create or upgrade the lineage tables; returns the version."""
    conn = db.connection
    conn.executescript(_V1_TABLES)
    row = conn.execute("SELECT version FROM lineage_meta").fetchone()
    if row is None:
        conn.execute("INSERT INTO lineage_meta (version) VALUES (?)",
                     (LINEAGE_SCHEMA_VERSION,))
        version = LINEAGE_SCHEMA_VERSION
    else:
        version = row[0]
    if version > LINEAGE_SCHEMA_VERSION:
        raise ProfileError(
            f"lineage schema version {version} is newer than this build "
            f"supports ({LINEAGE_SCHEMA_VERSION})"
        )
    while version < LINEAGE_SCHEMA_VERSION:
        _MIGRATIONS[version](conn)
        version += 1
        conn.execute("UPDATE lineage_meta SET version = ?", (version,))
    conn.commit()
    return version


@dataclass(frozen=True)
class TrialRef:
    """One stored trial attached to a version."""

    application: str
    experiment: str
    trial: str
    role: str = "trial"  # 'trial' | 'baseline'

    def to_dict(self) -> dict[str, str]:
        return {"application": self.application,
                "experiment": self.experiment,
                "trial": self.trial, "role": self.role}


@dataclass(frozen=True)
class VersionRecord:
    """One code version and everything lineage knows about it."""

    version_id: str
    parents: tuple[str, ...]
    code_version: str
    rulebase_version: str
    created_at: float
    annotations: dict[str, Any] = field(default_factory=dict)
    trials: tuple[TrialRef, ...] = ()

    @property
    def baselines(self) -> tuple[TrialRef, ...]:
        return tuple(t for t in self.trials if t.role == "baseline")

    @property
    def short(self) -> str:
        return self.version_id[:12]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version_id": self.version_id,
            "short": self.short,
            "parents": list(self.parents),
            "code_version": self.code_version,
            "rulebase_version": self.rulebase_version,
            "created_at": self.created_at,
            "annotations": dict(self.annotations),
            "trials": [t.to_dict() for t in self.trials],
        }


class LineageStore:
    """Version → {parents, trials, baselines, annotations} over PerfDMF.

    Parameters
    ----------
    db:
        An open :class:`~repro.perfdmf.PerfDMF` repository.  Lineage
        lives in the same file as the trials it anchors.
    """

    def __init__(self, db: PerfDMF) -> None:
        self.db = db
        self.schema_version = ensure_lineage_schema(db)

    # -- recording ---------------------------------------------------------
    def record(
        self,
        version_id: str,
        *,
        parents: Sequence[str] = (),
        annotations: dict[str, Any] | None = None,
        code_version: str | None = None,
        rulebase_version: str | None = None,
        timestamp: float | None = None,
    ) -> VersionRecord:
        """Record one code version (idempotent: re-recording merges
        annotations and parent links instead of failing).

        Parents must already be recorded — lineage grows tip-forward,
        like the VCS it mirrors.
        """
        if not version_id:
            raise ProfileError("lineage: version_id must be non-empty")
        vk = version_key(code_version, rulebase_version)
        _retry_locked(lambda: self._record_txn(
            version_id, tuple(parents), annotations or {},
            vk.code, vk.rulebase,
            time.time() if timestamp is None else float(timestamp),
        ))
        return self.get(version_id)

    def _record_txn(self, version_id: str, parents: tuple[str, ...],
                    annotations: dict[str, Any], code: str, rulebase: str,
                    created_at: float) -> None:
        conn = self.db.connection
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT id, annotations FROM lineage_version "
                "WHERE version_id = ?", (version_id,),
            ).fetchone()
            if row is None:
                cur = conn.execute(
                    "INSERT INTO lineage_version (version_id, code_version, "
                    "rulebase_version, created_at, annotations) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (version_id, code, rulebase, created_at,
                     json.dumps(annotations, sort_keys=True)),
                )
                child_row = cur.lastrowid
            else:
                child_row = row[0]
                if annotations:
                    merged = {**json.loads(row[1]), **annotations}
                    conn.execute(
                        "UPDATE lineage_version SET annotations = ? "
                        "WHERE id = ?",
                        (json.dumps(merged, sort_keys=True), child_row),
                    )
            for ordinal, parent in enumerate(parents):
                prow = conn.execute(
                    "SELECT id FROM lineage_version WHERE version_id = ?",
                    (parent,),
                ).fetchone()
                if prow is None:
                    raise ProfileError(
                        f"lineage: parent {parent!r} of {version_id!r} is "
                        "not recorded; record parents first"
                    )
                conn.execute(
                    "INSERT OR IGNORE INTO lineage_parent "
                    "(child_id, parent_id, ordinal) VALUES (?, ?, ?)",
                    (child_row, prow[0], ordinal),
                )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def attach_trial(
        self, version_id: str, application: str, experiment: str,
        trial: str, *, role: str = "trial",
    ) -> None:
        """Tie a stored trial to a version (role ``trial`` or
        ``baseline``)."""
        if role not in ("trial", "baseline"):
            raise ProfileError(f"lineage: unknown trial role {role!r}")
        version_row = self._row_id(version_id)
        trial_id = self.db.trial_id(application, experiment, trial)

        def txn() -> None:
            conn = self.db.connection
            conn.execute(
                "INSERT OR IGNORE INTO lineage_trial "
                "(version_row, trial_id, role) VALUES (?, ?, ?)",
                (version_row, trial_id, role),
            )
            conn.commit()

        _retry_locked(txn)

    def annotate(self, version_id: str, **annotations: Any) -> None:
        """Merge annotations into a recorded version."""
        row_id = self._row_id(version_id)

        def txn() -> None:
            conn = self.db.connection
            conn.execute("BEGIN IMMEDIATE")
            try:
                current = json.loads(conn.execute(
                    "SELECT annotations FROM lineage_version WHERE id = ?",
                    (row_id,),
                ).fetchone()[0])
                current.update(annotations)
                conn.execute(
                    "UPDATE lineage_version SET annotations = ? "
                    "WHERE id = ?",
                    (json.dumps(current, sort_keys=True), row_id),
                )
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

        _retry_locked(txn)

    # -- lookups -----------------------------------------------------------
    def _row_id(self, version_id: str) -> int:
        row = self.db.connection.execute(
            "SELECT id FROM lineage_version WHERE version_id = ?",
            (version_id,),
        ).fetchone()
        if row is None:
            raise ProfileError(f"lineage: unknown version {version_id!r}")
        return row[0]

    def exists(self, version_id: str) -> bool:
        return self.db.connection.execute(
            "SELECT 1 FROM lineage_version WHERE version_id = ?",
            (version_id,),
        ).fetchone() is not None

    def __len__(self) -> int:
        return self.db.connection.execute(
            "SELECT COUNT(*) FROM lineage_version"
        ).fetchone()[0]

    def get(self, version_id: str) -> VersionRecord:
        """Full record for one version."""
        conn = self.db.connection
        row = conn.execute(
            "SELECT id, code_version, rulebase_version, created_at, "
            "annotations FROM lineage_version WHERE version_id = ?",
            (version_id,),
        ).fetchone()
        if row is None:
            raise ProfileError(f"lineage: unknown version {version_id!r}")
        row_id, code, rulebase, created_at, annotations = row
        parents = tuple(r[0] for r in conn.execute(
            "SELECT v.version_id FROM lineage_parent p "
            "JOIN lineage_version v ON p.parent_id = v.id "
            "WHERE p.child_id = ? ORDER BY p.ordinal", (row_id,),
        ).fetchall())
        trials = tuple(
            TrialRef(app, exp, trial, role)
            for app, exp, trial, role in conn.execute(
                """SELECT a.name, e.name, t.name, lt.role
                   FROM lineage_trial lt
                   JOIN trial t ON lt.trial_id = t.id
                   JOIN experiment e ON t.exp_id = e.id
                   JOIN application a ON e.app_id = a.id
                   WHERE lt.version_row = ? ORDER BY lt.rowid""",
                (row_id,),
            ).fetchall()
        )
        return VersionRecord(
            version_id=version_id, parents=parents, code_version=code,
            rulebase_version=rulebase, created_at=created_at,
            annotations=json.loads(annotations), trials=trials,
        )

    def versions(self) -> list[str]:
        """Every recorded version id, oldest first."""
        return [r[0] for r in self.db.connection.execute(
            "SELECT version_id FROM lineage_version ORDER BY id"
        ).fetchall()]

    def tips(self) -> list[str]:
        """Versions with no recorded children (the heads of history)."""
        return [r[0] for r in self.db.connection.execute(
            "SELECT version_id FROM lineage_version WHERE id NOT IN "
            "(SELECT parent_id FROM lineage_parent) ORDER BY id"
        ).fetchall()]

    @property
    def is_linear(self) -> bool:
        """True when no version has more than one parent — the common
        single-branch CI shape, unlocking the SQL fast path."""
        return self.db.connection.execute(
            "SELECT 1 FROM lineage_parent GROUP BY child_id "
            "HAVING COUNT(*) > 1 LIMIT 1"
        ).fetchone() is None

    # -- walks -------------------------------------------------------------
    def history(self, version_id: str | None = None,
                *, limit: int | None = None) -> list[VersionRecord]:
        """Ancestry of ``version_id`` (default: the newest tip), newest
        first — ``git log`` for performance.

        Linear histories resolve in one recursive CTE; DAGs fall back to
        a breadth-first walk over all parents with deduplication.
        """
        if version_id is None:
            tips = self.tips()
            if not tips:
                return []
            version_id = tips[-1]
        if self.is_linear:
            ids = self._linear_ancestry(version_id, limit)
        else:
            ids = self._dag_ancestry(version_id, limit)
        return [self.get(v) for v in ids]

    def _linear_ancestry(self, version_id: str,
                         limit: int | None) -> list[str]:
        rows = self.db.connection.execute(
            """WITH RECURSIVE chain(id, version_id, depth) AS (
                   SELECT id, version_id, 0 FROM lineage_version
                   WHERE version_id = ?
                   UNION ALL
                   SELECT v.id, v.version_id, chain.depth + 1
                   FROM chain
                   JOIN lineage_parent p ON p.child_id = chain.id
                   JOIN lineage_version v ON v.id = p.parent_id
                   WHERE p.ordinal = 0
               )
               SELECT version_id FROM chain ORDER BY depth
               """ + ("LIMIT ?" if limit is not None else ""),
            (version_id, limit) if limit is not None else (version_id,),
        ).fetchall()
        if not rows:
            raise ProfileError(f"lineage: unknown version {version_id!r}")
        return [r[0] for r in rows]

    def _dag_ancestry(self, version_id: str,
                      limit: int | None) -> list[str]:
        self._row_id(version_id)  # raise on unknown
        out: list[str] = []
        seen: set[str] = set()
        frontier = [version_id]
        while frontier:
            batch, frontier = frontier, []
            for vid in batch:
                if vid in seen:
                    continue
                seen.add(vid)
                out.append(vid)
                if limit is not None and len(out) >= limit:
                    return out
                frontier.extend(self.get(vid).parents)
        return out

    def path(self, ancestor: str, descendant: str) -> list[str]:
        """The version chain from ``ancestor`` to ``descendant``
        inclusive, oldest first — what scanners and bisect walk.

        Follows first parents on the linear fast path; in a DAG, finds
        the first-parent-preferring ancestor path via breadth-first
        search (shortest such path wins).
        """
        self._row_id(ancestor)
        ancestry = (self._linear_ancestry(descendant, None)
                    if self.is_linear
                    else self._bfs_path(ancestor, descendant))
        if self.is_linear:
            if ancestor not in ancestry:
                raise ProfileError(
                    f"lineage: {ancestor!r} is not an ancestor of "
                    f"{descendant!r}"
                )
            chain = ancestry[: ancestry.index(ancestor) + 1]
            return list(reversed(chain))
        return ancestry

    def _bfs_path(self, ancestor: str, descendant: str) -> list[str]:
        # Breadth-first over parent links, remembering the child that
        # discovered each version so the path reconstructs backwards.
        via: dict[str, str | None] = {descendant: None}
        frontier = [descendant]
        while frontier and ancestor not in via:
            nxt: list[str] = []
            for vid in frontier:
                for parent in self.get(vid).parents:
                    if parent not in via:
                        via[parent] = vid
                        nxt.append(parent)
            frontier = nxt
        if ancestor not in via:
            raise ProfileError(
                f"lineage: {ancestor!r} is not an ancestor of "
                f"{descendant!r}"
            )
        path = [ancestor]
        cursor = via[ancestor]
        while cursor is not None:
            path.append(cursor)
            cursor = via[cursor]
        return path

    # -- trial access ------------------------------------------------------
    def trials_for(
        self, version_id: str, *, application: str | None = None,
        experiment: str | None = None, role: str | None = None,
    ) -> list[TrialRef]:
        """Trials attached to a version, optionally filtered."""
        return [
            t for t in self.get(version_id).trials
            if (application is None or t.application == application)
            and (experiment is None or t.experiment == experiment)
            and (role is None or t.role == role)
        ]

    def versions_of_trial(self, application: str, experiment: str,
                          trial: str) -> list[str]:
        """Which recorded versions a stored trial is attached to."""
        trial_id = self.db.trial_id(application, experiment, trial)
        return [r[0] for r in self.db.connection.execute(
            "SELECT v.version_id FROM lineage_trial lt "
            "JOIN lineage_version v ON lt.version_row = v.id "
            "WHERE lt.trial_id = ? ORDER BY v.id", (trial_id,),
        ).fetchall()]
