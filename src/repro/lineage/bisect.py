"""``repro-perf bisect``: binary search over performance history.

Given a known-good and a known-bad version, :class:`PerfBisector` finds
the regression-introducing version in ``<= ceil(log2 n) + 1`` probe
evaluations: one to confirm the bad endpoint really regresses against
the good one, then a midpoint binary search over the chain between
them.  Each probe is the sentinel's full paired/Welch comparison
(:func:`repro.regress.detect.compare_trials`), not a point estimate.

Samples come from two sources, by priority:

* **banked** — trials already attached to the version in the
  :class:`~repro.lineage.store.LineageStore` (recorded by CI as the
  history was built);
* **synthesized** — when a version has no banked trials but carries a
  ``factors`` annotation, the bisector submits ``run-trial`` jobs to a
  :mod:`repro.serve` service and reruns to CI convergence under the
  experiments layer's :class:`~repro.experiments.rigor.RigorPolicy`,
  exactly like the orchestrator's rigor loop.

Synthesis is deterministic — ``run-trial`` derives its random stream
from the case key, and the probe case key here derives from the version
id and its factors — and every synthesized trial is banked back into
the store, so a re-bisect over the same range returns the identical
result whether its samples were banked or freshly synthesized.

The final report names the offending metric and region (worst event of
the culprit step) and the ``lineage-rules`` facts and recommendations
the culprit pair triggers.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any

from .. import observe
from ..experiments.rigor import RigorPolicy, assess
from ..perfdmf import ProfileError, Trial
from ..regress.detect import RegressionReport, ThresholdPolicy, compare_trials
from .facts import diagnose_lineage
from .scanner import PairComparison, ScanResult, _representative
from .store import LineageStore

__all__ = ["BisectResult", "PerfBisector", "ProbeRecord", "probe_budget",
           "probe_case_key"]


def probe_budget(n_versions: int) -> int:
    """The probe ceiling for a chain of ``n_versions``:
    ``ceil(log2 n) + 1`` (endpoint confirmation + midpoint search)."""
    if n_versions < 2:
        return 1
    return math.ceil(math.log2(n_versions)) + 1


def probe_case_key(version_id: str, factors: dict[str, Any]) -> str:
    """Deterministic case key for synthesizing one version's samples.

    Derived from the version id and its factors only, so a probe run
    today and a probe run next week submit byte-identical ``run-trial``
    cases — and ``case_rng`` then makes the trials themselves identical.
    """
    canonical = json.dumps(factors, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(
        f"lineage:{version_id}:{canonical}".encode()
    ).hexdigest()


@dataclass(frozen=True)
class ProbeRecord:
    """One probe evaluation during the search."""

    version: str
    index: int
    verdict: str
    source: str  # 'banked' | 'synthesized'
    runs: int
    trial: str

    def to_dict(self) -> dict[str, Any]:
        return {"version": self.version, "index": self.index,
                "verdict": self.verdict, "source": self.source,
                "runs": self.runs, "trial": self.trial}


@dataclass
class BisectResult:
    """The bisect verdict plus everything needed to act on it."""

    status: str  # 'found' | 'no-regression'
    good: str
    bad: str
    versions: int
    probes: list[ProbeRecord]
    budget: int
    first_bad: str | None = None
    last_good: str | None = None
    offending: dict[str, Any] | None = None
    report: RegressionReport | None = None
    facts: list[dict[str, Any]] = field(default_factory=list)
    recommendations: list[dict[str, Any]] = field(default_factory=list)

    @property
    def probe_count(self) -> int:
        return len(self.probes)

    @property
    def within_budget(self) -> bool:
        return self.probe_count <= self.budget

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "good": self.good,
            "bad": self.bad,
            "versions": self.versions,
            "first_bad": self.first_bad,
            "last_good": self.last_good,
            "probes": [p.to_dict() for p in self.probes],
            "probe_count": self.probe_count,
            "budget": self.budget,
            "within_budget": self.within_budget,
            "offending": self.offending,
            "report": self.report.to_dict() if self.report else None,
            "facts": self.facts,
            "recommendations": self.recommendations,
        }


class PerfBisector:
    """Binary search for the regression-introducing version.

    Parameters
    ----------
    store:
        The lineage store holding the history (and the trials).
    client:
        Optional :class:`repro.serve.Client` / ``SocketClient``; without
        one, every probed version must have banked trials.
    application, experiment:
        PerfDMF coordinates for banked-trial lookup and for storing
        synthesized trials (defaults: per-version annotations, then
        ``lineage``/``bisect``).
    policy:
        Detection policy for every probe comparison.
    rigor:
        Convergence contract for synthesized samples.
    """

    def __init__(
        self,
        store: LineageStore,
        *,
        client=None,
        application: str | None = None,
        experiment: str | None = None,
        policy: ThresholdPolicy | None = None,
        rigor: RigorPolicy | None = None,
        wait_timeout: float = 120.0,
    ) -> None:
        self.store = store
        self.client = client
        self.application = application
        self.experiment = experiment
        self.policy = policy or ThresholdPolicy()
        self.rigor = rigor or RigorPolicy()
        self.wait_timeout = wait_timeout
        #: version -> (Trial, source, runs); probes reuse acquired samples.
        self._acquired: dict[str, tuple[Trial, str, int]] = {}

    # -- sample acquisition ------------------------------------------------
    def _coords(self, version_id: str) -> tuple[str, str]:
        ann = self.store.get(version_id).annotations
        application = self.application or ann.get("application", "lineage")
        experiment = self.experiment or ann.get("experiment", "bisect")
        return application, experiment

    def _ensure_samples(self, version_id: str) -> tuple[Trial, str, int]:
        """The version's representative trial, banking first, synthesis
        second.  Memoized: one acquisition per version per bisect."""
        cached = self._acquired.get(version_id)
        if cached is not None:
            return cached
        ref = _representative(
            self.store, version_id, self.application, self.experiment
        )
        if ref is not None:
            banked = self.store.trials_for(
                version_id, application=self.application,
                experiment=self.experiment,
            )
            trial = self.store.db.load_trial(
                ref.application, ref.experiment, ref.trial
            )
            acquired = (trial, "banked", len(banked))
        else:
            acquired = self._synthesize(version_id)
        self._acquired[version_id] = acquired
        return acquired

    def _synthesize(self, version_id: str) -> tuple[Trial, str, int]:
        """Rerun the version to CI convergence via ``run-trial`` jobs,
        banking every produced trial back into the store."""
        if self.client is None:
            raise ProfileError(
                f"lineage: version {version_id!r} has no banked trials and "
                "no service client was given to synthesize them"
            )
        ann = self.store.get(version_id).annotations
        factors = ann.get("factors")
        if not isinstance(factors, dict):
            raise ProfileError(
                f"lineage: version {version_id!r} has no banked trials and "
                "no 'factors' annotation to synthesize from"
            )
        application, experiment = self._coords(version_id)
        case_key = probe_case_key(version_id, factors)
        base_params = {
            "app": ann.get("app", "synthetic"),
            "application": application,
            "experiment": experiment,
            "case_key": case_key,
            "factors": factors,
            "metric": ann.get("metric", "TIME"),
            "key_event": ann.get("key_event", "main"),
            "noise": float(ann.get("noise", 0.0)),
        }
        samples: list[float] = []
        trials: list[str] = []
        with observe.span("lineage.synthesize", version=version_id,
                          case_key=case_key[:12]):
            # the orchestrator's rigor loop: a min_runs batch up front,
            # then one rerun at a time until converged or max_runs
            while True:
                want = max(self.rigor.min_runs - len(samples), 1)
                if len(samples) + want > self.rigor.max_runs:
                    want = self.rigor.max_runs - len(samples)
                jobs = self.client.submit_many([
                    {"kind": "run-trial",
                     "params": {**base_params, "rerun": len(samples) + i}}
                    for i in range(want)
                ])
                for job in jobs:
                    if "error" in job and "id" not in job:
                        raise ProfileError(
                            f"lineage: run-trial rejected: {job['error']}"
                        )
                    record = self.client.wait(
                        job["id"], timeout=self.wait_timeout
                    )
                    if record["status"] != "done":
                        raise ProfileError(
                            f"lineage: run-trial for {version_id!r} "
                            f"{record['status']}: {record.get('error')}"
                        )
                    result = record["result"]
                    samples.append(float(result["value"]))
                    trials.append(result["trial"])
                verdict = assess(samples, self.rigor)
                if verdict.converged or len(samples) >= self.rigor.max_runs:
                    break
        for trial_name in trials:
            self.store.attach_trial(
                version_id, application, experiment, trial_name
            )
        # rerun 0 is the representative: deterministic, so banked
        # re-reads and fresh synthesis agree bit for bit
        trial = self.store.db.load_trial(application, experiment, trials[0])
        return trial, "synthesized", len(samples)

    # -- the search --------------------------------------------------------
    def bisect(self, good: str, bad: str | None = None) -> BisectResult:
        """Find the first bad version in ``good..bad`` (default: the
        newest tip)."""
        if bad is None:
            tips = self.store.tips()
            if not tips:
                raise ProfileError("lineage: no versions recorded")
            bad = tips[-1]
        chain = self.store.path(good, bad)
        if len(chain) < 2:
            raise ProfileError(
                f"lineage: nothing to bisect between {good!r} and {bad!r}"
            )
        budget = probe_budget(len(chain))
        probes: list[ProbeRecord] = []
        verdicts: dict[str, str] = {}

        good_trial, _, _ = self._ensure_samples(good)

        def evaluate(index: int) -> str:
            version_id = chain[index]
            if version_id in verdicts:
                return verdicts[version_id]
            trial, source, runs = self._ensure_samples(version_id)
            report = compare_trials(
                good_trial, trial, policy=self.policy,
                application=self._coords(version_id)[0],
                experiment=self._coords(version_id)[1],
            )
            verdicts[version_id] = report.verdict
            probes.append(ProbeRecord(
                version=version_id, index=index, verdict=report.verdict,
                source=source, runs=runs, trial=trial.name,
            ))
            observe.event(
                "lineage.bisect.probe", version=version_id, index=index,
                verdict=report.verdict, source=source,
            )
            return report.verdict

        with observe.span("lineage.bisect", good=good, bad=bad,
                          versions=len(chain)):
            if evaluate(len(chain) - 1) != "regressed":
                return BisectResult(
                    status="no-regression", good=good, bad=bad,
                    versions=len(chain), probes=probes, budget=budget,
                )
            lo, hi = 0, len(chain) - 1
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if evaluate(mid) == "regressed":
                    hi = mid
                else:
                    lo = mid
            result = self._diagnose(chain, lo, hi, probes, budget,
                                    good, bad)
            observe.event(
                "lineage.bisect.done", first_bad=result.first_bad,
                probes=result.probe_count, budget=budget,
            )
            return result

    def _diagnose(self, chain: list[str], lo: int, hi: int,
                  probes: list[ProbeRecord], budget: int,
                  good: str, bad: str) -> BisectResult:
        """Name the culprit step's metric, region, and rule firings by
        comparing first-bad against its immediate predecessor."""
        last_good, first_bad = chain[lo], chain[hi]
        parent_trial, _, _ = self._ensure_samples(last_good)
        culprit_trial, _, _ = self._ensure_samples(first_bad)
        application, experiment = self._coords(first_bad)
        report = compare_trials(
            parent_trial, culprit_trial, policy=self.policy,
            application=application, experiment=experiment,
        )
        rulebase_changed = (
            self.store.get(first_bad).rulebase_version
            != self.store.get(last_good).rulebase_version
        )
        scan = ScanResult(
            start=last_good, end=first_bad, versions=[last_good, first_bad],
            application=application, experiment=experiment,
            comparisons=[PairComparison(
                version=first_bad, parent=last_good, index=hi,
                application=application, experiment=experiment,
                baseline_trial=parent_trial.name,
                candidate_trial=culprit_trial.name,
                rulebase_changed=rulebase_changed,
                bridged_gaps=tuple(chain[lo + 1:hi]),
                report=report,
            )],
        )
        harness = diagnose_lineage(scan)
        offending = None
        offenders = report.top_offenders()
        if offenders:
            worst = offenders[0]
            offending = {
                "event": worst.event,
                "metric": worst.metric,
                "relative_change": worst.relative_change,
                "severity": worst.severity,
            }
        return BisectResult(
            status="found", good=good, bad=bad, versions=len(chain),
            probes=probes, budget=budget,
            first_bad=first_bad, last_good=last_good,
            offending=offending, report=report,
            facts=[{"type": f.fact_type, **f.as_dict()}
                   for f in harness.facts("VersionComparisonFact")
                   + harness.facts("DegradationFact")],
            recommendations=[{"type": r.fact_type, **r.as_dict()}
                             for r in harness.recommendations()],
        )
