"""Lineage facts: turning a history sweep into working memory.

The scanner answers "which steps regressed?"; the knowledge layer's job
is to say *what that means* — "v17 is the first bad version", "this is
slow creep, no single commit is to blame", "the rulebase changed here
too, the regression may be an analyzer artifact".  Following the repo's
generator/rule split, the generators below compute numeric candidate
facts and leave every threshold to the ``lineage-rules`` rulebase:

=====================  ==================================================
Fact type              Fields
=====================  ==================================================
VersionComparisonFact  version, parentVersion, index, verdict,
                       prevVerdict, totalChange, rulebaseChanged,
                       bridgedGaps
DegradationFact        version, parentVersion, eventName, metric,
                       relativeChange, severity, pValue
DriftFact              startVersion, endVersion, versions, totalChange,
                       maxStepChange
=====================  ==================================================

A ``DriftFact`` is emitted for every maximal run of >= 2 consecutive
worsening steps — linear in history length — so the slow-creep rule can
threshold on "large total, small steps" without quadratic window
enumeration.
"""

from __future__ import annotations

from ..core.harness import RuleHarness
from ..rules import Fact
from .scanner import PairComparison, ScanResult

__all__ = [
    "degradation_facts",
    "diagnose_lineage",
    "drift_facts",
    "lineage_facts",
]


def degradation_facts(scan: ScanResult) -> list[Fact]:
    """Per-step facts: one VersionComparisonFact per adjacent pair plus
    one DegradationFact per (regressed step, offending event)."""
    facts: list[Fact] = []
    prev_verdict = "ok"
    for cmp_ in scan.comparisons:
        facts.append(Fact(
            "VersionComparisonFact",
            version=cmp_.version,
            parentVersion=cmp_.parent,
            index=cmp_.index,
            verdict=cmp_.verdict,
            prevVerdict=prev_verdict,
            totalChange=cmp_.report.total_relative_change,
            rulebaseChanged=cmp_.rulebase_changed,
            bridgedGaps=len(cmp_.bridged_gaps),
        ))
        prev_verdict = cmp_.verdict
        if cmp_.verdict != "regressed":
            continue
        # one fact per offending *event* (worst metric wins), mirroring
        # regress.facts: per-metric duplicates would multiply rule firings
        seen: set[str] = set()
        for delta in cmp_.report.top_offenders():
            if delta.event in seen:
                continue
            seen.add(delta.event)
            facts.append(Fact(
                "DegradationFact",
                version=cmp_.version,
                parentVersion=cmp_.parent,
                eventName=delta.event,
                metric=delta.metric,
                relativeChange=delta.relative_change,
                severity=delta.severity,
                pValue=delta.welch.p_value,
            ))
    return facts


def drift_facts(scan: ScanResult) -> list[Fact]:
    """One DriftFact per maximal run of consecutive worsening steps."""
    facts: list[Fact] = []
    run: list[PairComparison] = []

    def flush() -> None:
        if len(run) >= 2:
            total = 1.0
            for cmp_ in run:
                total *= 1.0 + cmp_.report.total_relative_change
            facts.append(Fact(
                "DriftFact",
                startVersion=run[0].parent,
                endVersion=run[-1].version,
                versions=len(run),
                totalChange=total - 1.0,
                maxStepChange=max(
                    c.report.total_relative_change for c in run
                ),
            ))
        run.clear()

    for cmp_ in scan.comparisons:
        if cmp_.report.total_relative_change > 0.0:
            run.append(cmp_)
        else:
            flush()
    flush()
    return facts


def lineage_facts(scan: ScanResult) -> list[Fact]:
    """The full fact vocabulary for one scan sweep."""
    return degradation_facts(scan) + drift_facts(scan)


def diagnose_lineage(
    scan: ScanResult, *, harness: RuleHarness | None = None
) -> RuleHarness:
    """Fire the ``lineage-rules`` rulebase over a scan sweep."""
    from ..knowledge.lineage_rules import lineage_rulebase

    h = harness or RuleHarness(lineage_rulebase())
    h.assertObjects(lineage_facts(scan))
    h.processRules()
    return h
