"""Degradation scanner: change detection swept along version history.

:func:`scan_range` walks a lineage version chain oldest-first and runs
the sentinel's paired/Welch detectors (:func:`repro.regress.detect.
compare_trials`) over every adjacent pair that has stored trials,
producing one :class:`PairComparison` per step.  Versions without an
attached trial for the scanned (application, experiment) are *gaps*:
the scanner bridges them — comparing across the hole against the last
measured version — and records which versions it had to skip, so a
downstream bisect knows where banked history runs out and synthesis
must take over.

The output feeds :mod:`repro.lineage.facts`, which turns the sweep into
working memory for the ``lineage-rules`` rulebase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .. import observe
from ..perfdmf import ProfileError, Trial
from ..regress.detect import RegressionReport, ThresholdPolicy, compare_trials
from .store import LineageStore, TrialRef

__all__ = ["PairComparison", "ScanResult", "scan_range"]


@dataclass(frozen=True)
class PairComparison:
    """One adjacent-version comparison in a scan sweep."""

    version: str
    parent: str
    #: Position of ``version`` in the walked chain (0 = range start).
    index: int
    application: str
    experiment: str
    baseline_trial: str
    candidate_trial: str
    #: Did the rulebase fingerprint change across this step?
    rulebase_changed: bool
    #: Versions between parent and version that had no trial to measure.
    bridged_gaps: tuple[str, ...]
    report: RegressionReport

    @property
    def verdict(self) -> str:
        return self.report.verdict

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "parent": self.parent,
            "index": self.index,
            "application": self.application,
            "experiment": self.experiment,
            "baseline_trial": self.baseline_trial,
            "candidate_trial": self.candidate_trial,
            "rulebase_changed": self.rulebase_changed,
            "bridged_gaps": list(self.bridged_gaps),
            "verdict": self.verdict,
            "total_relative_change": self.report.total_relative_change,
        }


@dataclass
class ScanResult:
    """A full sweep over one version range."""

    start: str
    end: str
    versions: list[str]
    application: str | None
    experiment: str | None
    comparisons: list[PairComparison] = field(default_factory=list)
    #: Versions in the range with no usable trial (bridged over).
    gaps: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[PairComparison]:
        return [c for c in self.comparisons if c.verdict == "regressed"]

    @property
    def first_bad(self) -> PairComparison | None:
        """The earliest step whose verdict flips to ``regressed`` after a
        non-regressed step (or from the start of the range)."""
        prev = "ok"
        for cmp_ in self.comparisons:
            if cmp_.verdict == "regressed" and prev != "regressed":
                return cmp_
            prev = cmp_.verdict
        return None

    def to_dict(self) -> dict[str, Any]:
        first_bad = self.first_bad
        return {
            "start": self.start,
            "end": self.end,
            "versions": list(self.versions),
            "application": self.application,
            "experiment": self.experiment,
            "comparisons": [c.to_dict() for c in self.comparisons],
            "gaps": list(self.gaps),
            "regressed_steps": len(self.regressions),
            "first_bad": first_bad.version if first_bad else None,
        }


def _representative(
    store: LineageStore,
    version_id: str,
    application: str | None,
    experiment: str | None,
) -> TrialRef | None:
    """The trial a version is measured by: the first attached ``trial``
    matching the filters, falling back to a ``baseline``."""
    trials = store.trials_for(
        version_id, application=application, experiment=experiment
    )
    for ref in trials:
        if ref.role == "trial":
            return ref
    return trials[0] if trials else None


def _load(store: LineageStore, ref: TrialRef) -> Trial:
    return store.db.load_trial(ref.application, ref.experiment, ref.trial)


def scan_range(
    store: LineageStore,
    start: str | None = None,
    end: str | None = None,
    *,
    application: str | None = None,
    experiment: str | None = None,
    policy: ThresholdPolicy | None = None,
) -> ScanResult:
    """Sweep the detectors across ``start..end`` (default: full history
    of the newest tip), oldest-first."""
    if end is None:
        tips = store.tips()
        if not tips:
            raise ProfileError("lineage: no versions recorded; nothing to scan")
        end = tips[-1]
    if start is None:
        chain = [r.version_id for r in reversed(store.history(end))]
    else:
        chain = store.path(start, end)
    policy = policy or ThresholdPolicy()

    with observe.span(
        "lineage.scan", start=chain[0], end=end, versions=len(chain)
    ):
        result = ScanResult(
            start=chain[0], end=end, versions=chain,
            application=application, experiment=experiment,
        )
        last_measured: tuple[str, TrialRef] | None = None
        pending_gaps: list[str] = []
        for index, version_id in enumerate(chain):
            ref = _representative(store, version_id, application, experiment)
            if ref is None:
                if last_measured is not None:
                    pending_gaps.append(version_id)
                result.gaps.append(version_id)
                continue
            if last_measured is None:
                last_measured = (version_id, ref)
                continue
            parent_id, parent_ref = last_measured
            report = compare_trials(
                _load(store, parent_ref),
                _load(store, ref),
                policy=policy,
                application=ref.application,
                experiment=ref.experiment,
            )
            rulebase_changed = (
                store.get(version_id).rulebase_version
                != store.get(parent_id).rulebase_version
            )
            result.comparisons.append(PairComparison(
                version=version_id,
                parent=parent_id,
                index=index,
                application=ref.application,
                experiment=ref.experiment,
                baseline_trial=parent_ref.trial,
                candidate_trial=ref.trial,
                rulebase_changed=rulebase_changed,
                bridged_gaps=tuple(pending_gaps),
                report=report,
            ))
            observe.event(
                "lineage.scan.step", version=version_id, parent=parent_id,
                verdict=report.verdict,
                total_change=report.total_relative_change,
            )
            last_measured = (version_id, ref)
            pending_gaps = []
        return result
