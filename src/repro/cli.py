"""Command-line interface: ``repro-perf``.

Subcommands::

    repro-perf reproduce {fig4a,fig4b,fig5a,fig5b,table1}
        Regenerate one of the paper's figures/tables and print its series.

    repro-perf run-msa [--sequences N] [--threads N] [--schedule S] [--db F]
        Simulate one MSAP configuration; optionally store the profile.

    repro-perf run-genidlest [--case {45rib,90rib}] [--version {openmp,mpi}]
                             [--procs N] [--optimized] [--db F]
        Simulate one GenIDLEST configuration; optionally store the profile.

    repro-perf diagnose --db F --app A --exp E --trial T [--rules FILE.prl]
        Run the knowledge-based diagnosis over a stored trial.

    repro-perf tune {msa,genidlest}
        Run the closed diagnose→plan→apply→verify loop and report.

    repro-perf regress {baseline,check,report} ...
        The performance-regression sentinel: tag baselines, gate new
        trials against them (non-zero exit on regression), and render
        full statistical reports with chained diagnoses.

    repro-perf trace <command ...> [--trace-out PREFIX]
        Run any repro-perf command with self-telemetry on; export the
        analyzer's own trace as JSONL + Chrome trace_event JSON and, when
        the inner command used --db, store the self-profile as a PerfDMF
        trial under repro.observe/<command> (the dogfood loop).

    repro-perf trace report --trace F.jsonl
    repro-perf trace export --trace F.jsonl --out F.json
        Digest or convert a previously exported trace.

    repro-perf trace-app {msa,genidlest} [--out F.json] [--db F] ...
        Run an *application* simulation with event tracing on: record the
        per-CPU event timeline, cut interval profile snapshots at phase
        boundaries (stored as PerfDMF sub-trials with --db), diagnose
        wait states and phase-imbalance trajectories, and optionally
        export a Chrome trace_event timeline with one lane per
        rank/thread.

    repro-perf explain --db F --app A --exp E --trial T
        Re-run the diagnosis and render the rule-firing audit trail:
        every firing, plus the why() provenance chain of each
        recommendation back to the input facts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Every ``--db`` option falls back to this environment variable, so a
#: shell (or CI job) can set the repository once instead of repeating it.
DB_ENV_VAR = "REPRO_PERFDMF_DB"


def _add_db_arg(parser: argparse.ArgumentParser, *, required: bool = False,
                help: str | None = None) -> None:
    """``--db`` with an ``$REPRO_PERFDMF_DB`` default."""
    env = os.environ.get(DB_ENV_VAR)
    parser.add_argument(
        "--db", default=env, required=required and not env,
        help=(help or "PerfDMF sqlite file")
        + f" (default: ${DB_ENV_VAR}" + (f" = {env}" if env else "") + ")",
    )


def _cmd_reproduce(args: argparse.Namespace) -> int:
    target = args.target
    if target == "fig4a":
        from repro.apps.msa import run_msa_trial
        from repro.machine import counters as C

        r = run_msa_trial(n_sequences=args.sequences, n_threads=16,
                          schedule="static", seed=0)
        t = r.trial
        inner = t.exclusive_array(C.TIME)[t.event_index("sw_align_inner_loop")] / 1e6
        outer = t.exclusive_array(C.TIME)[t.event_index("pairwise_outer_loop")] / 1e6
        print("Fig. 4(a): per-thread loop seconds (static, 16 threads)")
        print(f"{'thread':>8}{'inner':>12}{'outer/wait':>12}")
        for i in range(16):
            print(f"{i:>8}{inner[i]:>12.3f}{outer[i]:>12.3f}")
        print(f"imbalance ratio: {r.loop.imbalance_ratio:.3f}")
        return 0
    if target == "fig4b":
        from repro.apps.msa import relative_efficiency, run_msa_scaling

        schedules = ["static", "dynamic,16", "dynamic,4", "dynamic,1"]
        sweeps = run_msa_scaling(n_sequences=args.sequences,
                                 schedules=schedules,
                                 thread_counts=[1, 2, 4, 8, 16])
        eff = {s: dict(relative_efficiency(r)) for s, r in sweeps.items()}
        print("Fig. 4(b): MSAP relative efficiency")
        print(f"{'threads':>8}" + "".join(s.rjust(12) for s in schedules))
        for p in (1, 2, 4, 8, 16):
            print(f"{p:>8}" + "".join(f"{eff[s][p]:>12.2%}" for s in schedules))
        from repro.core.charts import line_chart

        print()
        print(line_chart(
            {s: sorted(eff[s].items()) for s in schedules},
            title="relative efficiency vs threads",
            x_label="threads", y_label="efficiency",
        ))
        return 0
    if target in ("fig5a", "fig5b"):
        from repro.apps.genidlest import RIB90, run_genidlest_scaling
        from repro.core.script import ScalabilityOperation, TrialResult

        counts = [1, 2, 4, 8, 16]
        if target == "fig5a":
            runs = run_genidlest_scaling(case=RIB90, version="openmp",
                                         optimized=False, proc_counts=counts,
                                         iterations=3)
            op = ScalabilityOperation([TrialResult(r.trial) for r in runs])
            events = ["bicgstab", "diff_coeff", "matxvec", "pc",
                      "pc_jac_glb", "mpi_send_recv_ko"]
            series = {
                e: op.event_series(e, inclusive=(e == "mpi_send_recv_ko"))
                for e in events
            }
            print("Fig. 5(a): per-event speedup, unoptimized OpenMP 90rib")
            print(f"{'procs':>6}" + "".join(e[:11].rjust(12) for e in events))
            for i, p in enumerate(counts):
                print(f"{p:>6}" + "".join(
                    f"{series[e].speedup[i]:>12.2f}" for e in events))
            return 0
        variants = {
            "MPI": dict(version="mpi", optimized=True),
            "OpenMP opt": dict(version="openmp", optimized=True),
            "OpenMP unopt": dict(version="openmp", optimized=False),
        }
        print("Fig. 5(b): GenIDLEST 90rib whole-app speedup")
        print(f"{'procs':>6}" + "".join(k.rjust(14) for k in variants))
        all_runs = {
            k: run_genidlest_scaling(case=RIB90, proc_counts=counts,
                                     iterations=3, **kw)
            for k, kw in variants.items()
        }
        series = {}
        for k in variants:
            base = all_runs[k][0].wall_seconds
            series[k] = [
                (p, base / all_runs[k][i].wall_seconds)
                for i, p in enumerate(counts)
            ]
        for i, p in enumerate(counts):
            row = f"{p:>6}"
            for k in variants:
                row += f"{series[k][i][1]:>14.2f}"
            print(row)
        from repro.core.charts import line_chart

        print()
        print(line_chart(series, title="speedup vs processors",
                         x_label="procs", y_label="speedup"))
        return 0
    if target == "table1":
        from repro.apps.genidlest.compiled import genidlest_compiled_program
        from repro.knowledge import recommend_power_levels
        from repro.machine import altix_300
        from repro.openuh import OPT_LEVELS, compile_program
        from repro.power import measure_signature, relative_table

        machine = altix_300()
        program = genidlest_compiled_program()
        meas = [
            measure_signature(l, compile_program(program, l).signature(),
                              machine, n_processors=16)
            for l in OPT_LEVELS
        ]
        print(relative_table(meas).render(
            title="Table I: relative differences, 16 MPI ranks (O0 baseline)"
        ))
        harness = recommend_power_levels(meas)
        print()
        for line in harness.output:
            print(line)
        return 0
    print(f"unknown reproduction target {target!r}", file=sys.stderr)
    return 2


def _cmd_run_msa(args: argparse.Namespace) -> int:
    from repro.apps.msa import run_msa_trial

    result = run_msa_trial(
        n_sequences=args.sequences, n_threads=args.threads,
        schedule=args.schedule, seed=args.seed,
    )
    print(f"trial {result.trial.name}: wall {result.wall_seconds:.3f} s, "
          f"imbalance {result.loop.imbalance_ratio:.3f}")
    if args.db:
        from repro.perfdmf import PerfDMF

        with PerfDMF(args.db) as repo:
            repo.save_trial("MSAP", f"{args.schedule}", result.trial,
                            replace=True)
        print(f"stored as MSAP/{args.schedule}/{result.trial.name} in {args.db}")
    return 0


def _cmd_run_genidlest(args: argparse.Namespace) -> int:
    from repro.apps.genidlest import RIB45, RIB90, RunConfig, run_genidlest

    case = RIB45 if args.case == "45rib" else RIB90
    result = run_genidlest(RunConfig(
        case=case, version=args.version, optimized=args.optimized,
        n_procs=args.procs, iterations=args.iterations,
    ))
    print(f"trial {result.trial.name}: wall {result.wall_seconds:.3f} s")
    if args.db:
        from repro.perfdmf import PerfDMF

        with PerfDMF(args.db) as repo:
            repo.save_trial("GenIDLEST", case.name, result.trial, replace=True)
        print(f"stored as GenIDLEST/{case.name}/{result.trial.name} "
              f"in {args.db}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.harness import RuleHarness
    from repro.knowledge import render_report
    from repro.knowledge.rulebase import diagnose_genidlest, diagnose_load_balance
    from repro.perfdmf import PerfDMF

    with PerfDMF(args.db) as repo:
        trial = repo.load_trial(args.app, args.exp, args.trial)
    harness = None
    if args.rules:
        harness = RuleHarness(args.rules)
    diagnose = (
        diagnose_load_balance if args.script == "load-balance"
        else diagnose_genidlest
    )
    harness = diagnose(trial, harness=harness)
    print(render_report(harness, title=f"Diagnosis of {args.app}/{args.trial}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """The §III.B comparison workflow: ratio of two stored trials."""
    from repro.core.script import (
        BasicStatisticsOperation,
        TrialRatioOperation,
        TrialResult,
    )
    from repro.perfdmf import PerfDMF

    with PerfDMF(args.db) as repo:
        a = repo.load_trial(args.app, args.exp, args.trial_a)
        b = repo.load_trial(args.app, args.exp, args.trial_b)
    mean_a = BasicStatisticsOperation(TrialResult(a)).mean()
    mean_b = BasicStatisticsOperation(TrialResult(b)).mean()
    ratio = TrialRatioOperation(mean_a, mean_b).process_data()[0]
    metric = args.metric
    if not ratio.has_metric(metric):
        print(f"no shared metric {metric!r}; have {ratio.metrics}",
              file=sys.stderr)
        return 2
    print(f"{args.trial_a} / {args.trial_b} per-event {metric} ratio "
          "(>1 means the first trial is slower):")
    rows = sorted(
        ((float(ratio.event_row(e, metric, inclusive=True)[0]), e)
         for e in ratio.events),
        reverse=True,
    )
    for value, event in rows:
        print(f"  {value:10.2f}  {event}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.perfdmf import PerfDMF

    with PerfDMF(args.db) as repo:
        apps = repo.applications()
        if not apps:
            print("(repository is empty)")
            return 0
        for app in apps:
            print(app)
            for exp in repo.experiments(app):
                print(f"  {exp}")
                for trial in repo.trials(app, exp):
                    meta = repo.trial_metadata(app, exp, trial)
                    extras = ", ".join(
                        f"{k}={meta[k]}"
                        for k in ("procs", "threads", "schedule", "case")
                        if k in meta
                    )
                    print(f"    {trial}" + (f"  ({extras})" if extras else ""))
    return 0


def _regress_errors(handler):
    """CI gates must keep exit 1 meaning *regressed*: configuration and
    repository errors print cleanly and exit 2 instead of tracebacking."""

    def wrapped(args: argparse.Namespace) -> int:
        from repro.core.result import AnalysisError
        from repro.perfdmf import ProfileError

        try:
            return handler(args)
        except (ProfileError, AnalysisError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapped


def _regress_policy(args: argparse.Namespace):
    from repro.regress import ThresholdPolicy

    kw = {}
    if getattr(args, "metric", None):
        kw["metrics"] = (args.metric,)
    if getattr(args, "threshold", None) is not None:
        kw["min_relative_change"] = args.threshold
    if getattr(args, "alpha", None) is not None:
        kw["alpha"] = args.alpha
    return ThresholdPolicy(**kw)


@_regress_errors
def _cmd_regress_baseline(args: argparse.Namespace) -> int:
    from repro.perfdmf import PerfDMF
    from repro.regress import BaselineRegistry

    with PerfDMF(args.db) as db:
        registry = BaselineRegistry(db)
        if args.action == "set":
            if not (args.app and args.exp and args.trial):
                print("baseline set requires --app, --exp and --trial",
                      file=sys.stderr)
                return 2
            registry.set_baseline(args.app, args.exp, args.trial,
                                  reason=args.reason or "set via CLI")
            print(f"baseline for {args.app}/{args.exp} -> {args.trial}")
            return 0
        # list
        if args.app and args.exp:
            records = registry.history(args.app, args.exp)
            if not records:
                print("(no baseline history)")
                return 0
            for rec in records:
                mark = "*" if rec.active else " "
                print(f" {mark} {rec.application}/{rec.experiment}: "
                      f"{rec.trial}" + (f"  ({rec.reason})" if rec.reason else ""))
            return 0
        records = registry.list_baselines()
        if not records:
            print("(no baselines set)")
            return 0
        for rec in records:
            print(f"{rec.application}/{rec.experiment}: {rec.trial}"
                  + (f"  ({rec.reason})" if rec.reason else ""))
    return 0


@_regress_errors
def _cmd_regress_check(args: argparse.Namespace) -> int:
    from repro.perfdmf import PerfDMF
    from repro.regress import check, render_regression_report

    with PerfDMF(args.db) as db:
        outcome = check(
            db, args.app, args.exp, args.trial,
            policy=_regress_policy(args),
            diagnose=not args.no_diagnose,
            auto_promote=args.promote,
        )
        print(render_regression_report(outcome.report, outcome.harness))
        if outcome.promoted:
            print(f"\nbaseline auto-promoted to {outcome.report.candidate_trial}")
    return outcome.exit_code


@_regress_errors
def _cmd_regress_report(args: argparse.Namespace) -> int:
    from repro.perfdmf import PerfDMF
    from repro.regress import check, render_regression_report

    with PerfDMF(args.db) as db:
        outcome = check(
            db, args.app, args.exp, args.trial,
            policy=_regress_policy(args), diagnose=True,
        )
        print(render_regression_report(outcome.report, outcome.harness))
        for fact in (outcome.harness.facts("Recommendation")
                     if outcome.harness else []):
            print()
            print(outcome.harness.why(fact))
    return 0


def _trace_inner_db(argv: list[str]) -> str | None:
    """The --db value of the traced inner command, if it had one."""
    for i, tok in enumerate(argv):
        if tok == "--db" and i + 1 < len(argv):
            return argv[i + 1]
        if tok.startswith("--db="):
            return tok.split("=", 1)[1]
    return None


def _cmd_trace_tools(argv: list[str]) -> int:
    """``trace report`` / ``trace export`` over a saved JSONL trace."""
    from repro.observe import export as obs_export

    parser = argparse.ArgumentParser(prog=f"repro-perf trace {argv[0]}")
    parser.add_argument("--trace", required=True,
                        help="JSONL trace written by `repro-perf trace ...`")
    if argv[0] == "report":
        parser.add_argument("--top", type=int, default=20)
        a = parser.parse_args(argv[1:])
        print(obs_export.render_report(obs_export.read_jsonl(a.trace),
                                       top=a.top))
        return 0
    parser.add_argument("--out", required=True,
                        help="Chrome trace_event JSON to write")
    a = parser.parse_args(argv[1:])
    n = obs_export.write_chrome_trace(obs_export.read_jsonl(a.trace), a.out)
    print(f"wrote {n} trace events to {a.out} "
          "(load in about:tracing or ui.perfetto.dev)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run an inner repro-perf command under self-telemetry and export."""
    import os
    from pathlib import Path

    from repro import observe
    from repro.observe import export as obs_export

    argv = list(args.cmd)
    if argv and argv[0] in ("report", "export"):
        return _cmd_trace_tools(argv)
    if not argv:
        print("trace: missing command to run "
              "(e.g. `repro-perf trace run-msa --threads 8`)",
              file=sys.stderr)
        return 2
    if argv[0] == "trace":
        print("trace: cannot trace the tracer", file=sys.stderr)
        return 2
    tracer = observe.enable(fresh=True)
    try:
        with observe.span(f"cli.{argv[0]}", argv=" ".join(argv)):
            rc = main(argv)
    finally:
        observe.disable()
    prefix = Path(args.trace_out or "trace")
    jsonl_path = prefix.with_suffix(".jsonl")
    chrome_path = prefix.with_suffix(".json")
    records = obs_export.to_jsonl_records(tracer)
    obs_export.write_jsonl(tracer, jsonl_path)
    obs_export.write_chrome_trace(records, chrome_path, pid=os.getpid())
    print()
    print(f"trace: {len(tracer.finished())} spans -> {jsonl_path} (JSONL), "
          f"{chrome_path} (Chrome trace_event)")
    db_path = _trace_inner_db(argv)
    if db_path:
        from repro.observe.bridge import store_self_profile
        from repro.perfdmf import PerfDMF

        with PerfDMF(db_path) as db:
            trial, _ = store_self_profile(
                tracer, db, experiment=argv[0],
                metadata={"argv": " ".join(argv), "exit_code": rc},
            )
        print(f"self-profile stored as repro.observe/{argv[0]}/{trial.name} "
              f"in {db_path}")
    print()
    print(obs_export.render_report(records, top=12))
    return rc


def _cmd_trace_app(args: argparse.Namespace) -> int:
    """Traced application run: timeline, snapshots, wait-state diagnosis."""
    from repro.workflows import trace_application

    if args.app == "msa":
        run_kwargs = dict(
            n_sequences=args.sequences, n_threads=args.threads,
            schedule=args.schedule, seed=args.seed,
        )
    else:
        from repro.apps.genidlest import RIB45, RIB90, RunConfig

        case = RIB45 if args.case == "45rib" else RIB90
        run_kwargs = dict(config=RunConfig(
            case=case, version=args.version, optimized=args.optimized,
            n_procs=args.procs, iterations=args.iterations,
        ))

    if args.db:
        from repro.perfdmf import PerfDMF

        with PerfDMF(args.db) as repo:
            result = trace_application(
                args.app, repository=repo, out=args.out, **run_kwargs
            )
    else:
        result = trace_application(args.app, out=args.out, **run_kwargs)

    trace = result.trace
    print(f"traced {args.app} trial {result.trial.name}: "
          f"{len(trace)} events on {len(trace.cpu_ids())} cpus, "
          f"{trace.duration():.6f} s simulated")
    labels = [
        snap.metadata.get("interval", {}).get("label") or snap.name
        for snap in result.snapshots
    ]
    print(f"{len(result.snapshots)} interval snapshots: " + ", ".join(labels))

    if result.wait_states:
        top = sorted(result.wait_states,
                     key=lambda s: s.wait_seconds, reverse=True)[:10]
        print(f"\n{len(result.wait_states)} wait states "
              f"(top {len(top)} by wait time):")
        for ws in top:
            who = "thread" if ws.construct == "openmp" else "rank"
            print(f"  {ws.kind:>18}  {who} {ws.rank} delays "
                  f"{who} {ws.victim}  {ws.wait_seconds * 1e3:9.3f} ms"
                  f"  in {ws.event}")
    else:
        print("\n(no wait states detected)")

    print("\nRule-firing audit trail:")
    for line in result.harness.explain():
        print(f"  {line}")
    print()
    print(result.report)

    if result.trial_id is not None:
        print(f"stored trial + {len(result.interval_ids)} interval "
              f"sub-trials in {args.db}")
    if result.chrome_path:
        print(f"Chrome trace: {result.chrome_path} "
              "(load in about:tracing or ui.perfetto.dev)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Render the rule-firing audit trail for a stored trial's diagnosis."""
    from repro.core.harness import RuleHarness
    from repro.knowledge.rulebase import diagnose_genidlest, diagnose_load_balance
    from repro.perfdmf import PerfDMF

    with PerfDMF(args.db) as repo:
        trial = repo.load_trial(args.app, args.exp, args.trial)
    harness = RuleHarness(args.rules) if args.rules else None
    diagnose = (
        diagnose_load_balance if args.script == "load-balance"
        else diagnose_genidlest
    )
    harness = diagnose(trial, harness=harness)
    print(f"Rule-firing audit trail: {args.app}/{args.exp}/{args.trial}")
    print("-" * 60)
    for line in harness.explain():
        print(f"  {line}")
    recs = harness.recommendations()
    if not recs:
        print("\n(no recommendations asserted)")
        return 0
    print(f"\n{len(recs)} recommendation(s); provenance chains:")
    for fact in recs:
        print()
        print(harness.why(fact))
    return 0


def _default_endpoint(db_path: str) -> str:
    """A predictable per-repository endpoint so the two-terminal flow
    needs no coordination: serve the file next to itself."""
    if db_path and db_path != ":memory:" and "mode=memory" not in db_path:
        return f"unix:{db_path}.sock"
    return "unix:repro-serve.sock"


def _serve_errors(handler):
    """Client verbs print clean errors (no traceback) and exit 2 when the
    service is unreachable or rejects the request."""

    def wrapped(args: argparse.Namespace) -> int:
        from repro.core.result import AnalysisError

        try:
            return handler(args)
        except (AnalysisError, ConnectionError, FileNotFoundError,
                TimeoutError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapped


def _serve_client(args: argparse.Namespace):
    from repro.serve import SocketClient

    endpoint = args.endpoint or _default_endpoint(args.db or "")
    return SocketClient(endpoint, timeout=args.client_timeout)


def _parse_job_params(args: argparse.Namespace) -> dict:
    """``--params '{json}'`` plus repeated ``--param key=value`` (values
    JSON-coerced, bare words kept as strings)."""
    params: dict = {}
    if args.params:
        loaded = json.loads(args.params)
        if not isinstance(loaded, dict):
            raise ValueError("--params must be a JSON object")
        params.update(loaded)
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"--param needs key=value, got {item!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_serve_start(args: argparse.Namespace) -> int:
    from repro.serve import AnalysisService, SelfMonitor, ServeServer

    db = args.db or ":memory:"
    endpoint = args.endpoint or _default_endpoint(db)
    service = AnalysisService(
        db_path=db, workers=args.workers, mode=args.mode,
        queue_depth=args.queue_depth, default_timeout=args.job_timeout,
    )
    service.start()
    monitor = None
    if args.monitor_interval and args.monitor_interval > 0:
        monitor = SelfMonitor(service, service.db,
                              interval=args.monitor_interval).start()
    server = ServeServer(service, endpoint).start()
    print(f"serving {db} at {server.endpoint} "
          f"({args.workers} {args.mode} workers, "
          f"queue depth {args.queue_depth}"
          + (f", self-monitor every {args.monitor_interval:g}s"
             if monitor else "") + ")")
    print(f"submit with: repro-perf serve submit "
          f"--endpoint {server.endpoint} diagnose --param app=... ")
    sys.stdout.flush()
    try:
        server.serve_forever()
    finally:
        if monitor is not None:
            monitor.stop()
        service.stop()
    print("service stopped")
    return 0


@_serve_errors
def _cmd_serve_submit(args: argparse.Namespace) -> int:
    try:
        params = _parse_job_params(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _serve_client(args) as client:
        job = client.submit(
            args.kind, params, priority=args.priority,
            timeout=args.job_timeout, block=args.block,
        )
        if args.wait and job["status"] not in ("done", "failed",
                                               "timeout", "cancelled"):
            job = client.wait(job["id"], timeout=args.wait_timeout)
    print(json.dumps(job, indent=None if args.compact else 2, default=str))
    if args.wait and job["status"] != "done":
        return 1
    return 0


@_serve_errors
def _cmd_serve_status(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        payload = client.status(args.id)
    print(json.dumps(payload, indent=None if args.compact else 2,
                     default=str))
    return 0


@_serve_errors
def _cmd_serve_stats(args: argparse.Namespace) -> int:
    import time as _time

    with _serve_client(args) as client:
        frames = 0
        try:
            while True:
                stats = client.stats()
                print(json.dumps(stats, indent=None if args.compact else 2,
                                 default=str))
                frames += 1
                if not args.watch:
                    break
                if args.iterations and frames >= args.iterations:
                    break
                sys.stdout.flush()
                _time.sleep(args.watch)
        except KeyboardInterrupt:
            pass
    return 0


@_serve_errors
def _cmd_serve_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.serve import render_top

    with _serve_client(args) as client:
        frames = 0
        try:
            while True:
                frame = render_top(client.stats())
                if not args.once and frames and sys.stdout.isatty():
                    # Home the cursor between frames; avoid a full clear
                    # so scrollback (and piped output) stays readable.
                    print("\x1b[H\x1b[J", end="")
                print(frame)
                frames += 1
                if args.once or (args.iterations
                                 and frames >= args.iterations):
                    break
                sys.stdout.flush()
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
    return 0


@_serve_errors
def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        sys.stdout.write(client.metrics())
    return 0


@_serve_errors
def _cmd_serve_health(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        health = client.health()
    print(json.dumps(health, indent=None if args.compact else 2,
                     default=str))
    return 0 if health.get("status") == "ok" else 1


@_serve_errors
def _cmd_serve_explain_job(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        explain = client.explain_job(args.id)
    if args.json:
        print(json.dumps(explain, indent=2, default=str))
        return 0
    wall = explain["wall_seconds"]
    print(f"job {explain['id']} ({explain['kind']}) — {explain['status']}, "
          f"{explain['attempts']} attempt(s), "
          f"{'cache hit, ' if explain['cache_hit'] else ''}"
          f"wall {wall:.4f}s")
    if not explain.get("traced"):
        print("  (job was not traced; no attribution available)")
        return 0
    attribution = explain.get("attribution") or {}
    for phase in ("queue", "retry", "exec", "cache", "other"):
        seconds = attribution.get(phase)
        if seconds is None:
            continue
        share = seconds / wall if wall > 0 else 0.0
        bar = "#" * int(round(share * 40))
        print(f"  {phase:>6}  {seconds:9.4f}s  {share:6.1%}  {bar}")
    handler = explain.get("handler_seconds")
    if handler is not None:
        print(f"  (handler span: {handler:.4f}s inside exec)")
    print(f"  {len(explain.get('spans') or [])} span(s), "
          f"coverage {explain.get('coverage', 0.0):.1%} of job wall time")
    if args.chrome:
        from repro.observe.export import write_timeline_chrome

        spans = explain.get("spans") or []
        write_timeline_chrome(spans, args.chrome,
                              label=f"job {explain['id']} "
                                    f"({explain['kind']})")
        print(f"  Chrome trace: {args.chrome} ({len(spans)} spans)")
    return 0


@_serve_errors
def _cmd_serve_trends(args: argparse.Namespace) -> int:
    from repro.knowledge import render_report
    from repro.perfdmf import PerfDMF
    from repro.serve import diagnose_trends, load_snapshots

    with PerfDMF(args.db, read_only=True) as db:
        snapshots = load_snapshots(db, last=args.window)
        if len(snapshots) < 3:
            print(f"only {len(snapshots)} self-monitor snapshot(s) in "
                  f"{args.db}; need >= 3 (serve start --monitor-interval)",
                  file=sys.stderr)
            return 2
        harness = diagnose_trends(db, window=args.window)
    print(render_report(harness,
                        title=f"Service trends ({len(snapshots)} "
                              f"snapshots)"))
    return 0


@_serve_errors
def _cmd_serve_diagnose(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        payload = client.diagnose()
    print(payload["report"])
    return 0


@_serve_errors
def _cmd_serve_stop(args: argparse.Namespace) -> int:
    with _serve_client(args) as client:
        client.shutdown()
    print("service stopping")
    return 0


def _exp_spec(args: argparse.Namespace):
    from repro.experiments import ExperimentSpec

    return ExperimentSpec.from_toml(args.spec)


@_serve_errors
def _cmd_exp_plan(args: argparse.Namespace) -> int:
    spec = _exp_spec(args)
    plan = spec.expand()
    print(f"spec {spec.name!r} ({args.spec})")
    print(f"  app={spec.app} metric={spec.metric} "
          f"key_event={spec.key_event} vector={spec.vector}")
    print(f"  spec hash {plan.spec_hash[:12]} — {len(plan.cases)} case(s), "
          f"{plan.excluded} excluded")
    rigor = spec.rigor
    print(f"  rigor: {rigor.min_runs}-{rigor.max_runs} runs/case, "
          f"CI {rigor.confidence:.0%} rel half-width "
          f"< {rigor.relative_halfwidth}")
    if args.cases:
        for case in plan.cases:
            factors = " ".join(f"{k}={v}" for k, v in
                               sorted(case.factors.items()))
            print(f"  [{case.index:4d}] {case.short}  {factors}")
    return 0


@_serve_errors
def _cmd_exp_run(args: argparse.Namespace) -> int:
    spec = _exp_spec(args)
    progress = None if args.quiet else print
    if args.endpoint:
        # Drive a long-lived served repository; state is written through
        # our own connection to the same file.
        from repro.experiments import ExperimentState, Orchestrator
        from repro.perfdmf import PerfDMF
        from repro.serve import SocketClient

        if not args.db:
            print("error: exp run --endpoint needs --db (or "
                  f"${DB_ENV_VAR}) for the resume state", file=sys.stderr)
            return 2
        plan = spec.expand()
        with PerfDMF(args.db) as repo, \
                SocketClient(args.endpoint,
                             timeout=args.client_timeout) as client:
            state = ExperimentState(repo)
            result = Orchestrator(
                client, state, plan,
                max_in_flight=args.max_in_flight,
                case_retries=args.case_retries,
                analyze=not args.no_analyze,
                trace=bool(args.trace_out),
                progress=progress,
            ).run()
    else:
        from repro.workflows import run_experiment

        result = run_experiment(
            spec,
            db_path=args.db or ":memory:",
            workers=args.workers,
            mode=args.mode,
            max_in_flight=args.max_in_flight,
            case_retries=args.case_retries,
            analyze=not args.no_analyze,
            trace=bool(args.trace_out),
            progress=progress,
        )
    from repro import observe

    summary = result.summary()
    observe.echo(
        f"run {summary['run_id']}: {summary['cases']} case(s) — "
        f"{summary['converged']} converged, "
        f"{summary['non_converged']} non-converged, "
        f"{summary['failed']} failed, {summary['skipped']} skipped "
        f"({summary['total_runs']} runs, {summary['reruns']} adaptive "
        f"reruns, {summary['wall_seconds']:.2f}s)")
    if args.trace_out:
        if result.spans:
            n = result.export_trace(args.trace_out)
            observe.echo(f"distributed trace: {args.trace_out} "
                         f"({n} spans)")
        else:
            observe.echo("no spans collected (all cases skipped?); "
                         "trace not written")
    return 1 if summary["failed"] else 0


@_serve_errors
def _cmd_exp_status(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentState, render_status
    from repro.perfdmf import PerfDMF

    spec = _exp_spec(args)
    with PerfDMF(args.db) as repo:
        state = ExperimentState(repo)
        run_id = state.run_id_for(spec.spec_hash)
        if run_id is None:
            print(f"error: no run recorded for spec {spec.name!r} "
                  f"in {args.db}", file=sys.stderr)
            return 2
        print(render_status(state, run_id))
    return 0


@_serve_errors
def _cmd_exp_report(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentState, render_report
    from repro.perfdmf import PerfDMF

    spec = _exp_spec(args)
    with PerfDMF(args.db) as repo:
        state = ExperimentState(repo)
        run_id = state.run_id_for(spec.spec_hash)
        if run_id is None:
            print(f"error: no run recorded for spec {spec.name!r} "
                  f"in {args.db}", file=sys.stderr)
            return 2
        print(render_report(state, run_id, diagnose=not args.no_diagnose))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.app == "msa":
        from repro.workflows import msa_tuning_loop

        outcome = msa_tuning_loop(n_sequences=args.sequences,
                                  n_threads=args.threads)
    else:
        from repro.apps.genidlest import RIB45, RIB90
        from repro.workflows import genidlest_tuning_loop

        case = RIB45 if args.case == "45rib" else RIB90
        outcome = genidlest_tuning_loop(case=case, n_procs=args.procs,
                                        iterations=args.iterations)
    print(outcome.describe())
    return 0


def _parse_kv(pairs: list[str] | None, *, what: str) -> dict:
    """``key=value`` pairs with JSON-decoded values (bare strings pass
    through), for annotation and factor options."""
    import json as _json

    out: dict = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: {what} must be key=value, got {pair!r}")
        try:
            out[key] = _json.loads(value)
        except ValueError:
            out[key] = value
    return out


def _parse_trial_ref(ref: str) -> tuple[str, str, str]:
    parts = ref.split("/")
    if len(parts) != 3 or not all(parts):
        raise SystemExit(
            f"error: trial reference must be APP/EXP/TRIAL, got {ref!r}"
        )
    return parts[0], parts[1], parts[2]


@_regress_errors
def _cmd_lineage_record(args: argparse.Namespace) -> int:
    from repro.lineage import LineageStore
    from repro.perfdmf import PerfDMF

    annotations = _parse_kv(args.annotate, what="--annotate")
    factors = _parse_kv(args.factor, what="--factor")
    if factors:
        annotations["factors"] = factors
    store = LineageStore(PerfDMF(args.db))
    store.record(args.version, parents=args.parent or [],
                 annotations=annotations)
    for ref in args.trial or []:
        app, exp, trial = _parse_trial_ref(ref)
        store.attach_trial(args.version, app, exp, trial)
    for ref in args.baseline or []:
        app, exp, trial = _parse_trial_ref(ref)
        store.attach_trial(args.version, app, exp, trial, role="baseline")
    record = store.get(args.version)
    parents = ", ".join(record.parents) or "(root)"
    print(f"recorded {record.version_id} <- {parents} "
          f"[code {record.code_version}, rulebase {record.rulebase_version}"
          f", {len(record.trials)} trial(s)]")
    return 0


@_regress_errors
def _cmd_lineage_log(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lineage import LineageStore
    from repro.perfdmf import PerfDMF

    store = LineageStore(PerfDMF(args.db))
    records = store.history(args.tip, limit=args.limit)
    if args.json:
        print(_json.dumps([r.to_dict() for r in records], indent=2))
        return 0
    if not records:
        print("no versions recorded")
        return 0
    print(f"{'version':<20}{'parents':<24}{'code':<10}{'rulebase':<18}"
          f"{'trials':>7}")
    for r in records:
        parents = ",".join(p[:12] for p in r.parents) or "(root)"
        print(f"{r.short:<20}{parents:<24}{r.code_version:<10}"
              f"{r.rulebase_version:<18}{len(r.trials):>7}")
    return 0


@_regress_errors
def _cmd_lineage_scan(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lineage import LineageStore, diagnose_lineage, scan_range
    from repro.perfdmf import PerfDMF

    store = LineageStore(PerfDMF(args.db))
    scan = scan_range(store, args.start, args.end,
                      application=args.application,
                      experiment=args.experiment,
                      policy=_regress_policy(args))
    harness = diagnose_lineage(scan)
    if args.json:
        payload = scan.to_dict()
        payload["recommendations"] = [
            dict(r.items()) for r in harness.recommendations()
        ]
        print(_json.dumps(payload, indent=2))
    else:
        for cmp_ in scan.comparisons:
            marker = {"regressed": "!", "improved": "+"}.get(cmp_.verdict,
                                                             " ")
            print(f" {marker} {cmp_.parent} -> {cmp_.version}: "
                  f"{cmp_.verdict} "
                  f"({cmp_.report.total_relative_change:+.1%})")
        if scan.gaps:
            print(f"   gaps (no trial): {', '.join(scan.gaps)}")
        for rec in harness.recommendations():
            print(f" * [{rec.get('category')}] {rec.get('message')}")
    return 1 if scan.regressions else 0


@_regress_errors
def _cmd_lineage_bisect(args: argparse.Namespace) -> int:
    import json as _json

    from repro.experiments.rigor import RigorPolicy
    from repro.lineage import LineageStore, PerfBisector
    from repro.perfdmf import PerfDMF

    client = None
    if args.endpoint:
        from repro.serve import SocketClient

        client = SocketClient(args.endpoint, timeout=args.client_timeout)
    store = LineageStore(PerfDMF(args.db))
    rigor = RigorPolicy(min_runs=args.min_runs, max_runs=args.max_runs,
                        relative_halfwidth=args.rel_halfwidth)
    bisector = PerfBisector(
        store, client=client,
        application=args.application, experiment=args.experiment,
        policy=_regress_policy(args), rigor=rigor,
        wait_timeout=args.client_timeout,
    )
    try:
        result = bisector.bisect(args.good, args.bad)
    finally:
        if client is not None:
            client.close()
    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(result.to_dict(), fh, indent=2)
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2))
        return 0 if result.status == "found" else 1
    if result.status == "no-regression":
        print(f"no regression between {result.good} and {result.bad} "
              f"({result.probe_count} probe(s))")
        return 1
    print(f"first bad version: {result.first_bad} "
          f"(last good: {result.last_good})")
    if result.offending:
        off = result.offending
        print(f"  offending: {off['event']} [{off['metric']}] "
              f"{off['relative_change']:+.1%} "
              f"({off['severity']:.1%} of runtime)")
    sources = {p.version: p.source for p in result.probes}
    synthesized = sum(1 for s in sources.values() if s == "synthesized")
    print(f"  probes: {result.probe_count}/{result.budget} budget "
          f"({synthesized} synthesized, "
          f"{len(sources) - synthesized} banked)")
    for rec in result.recommendations:
        print(f"  * [{rec.get('category')}] {rec.get('message')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Capturing Performance Knowledge for Automated Analysis "
        "(SC 2008) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reproduce", help="regenerate a paper figure/table")
    p.add_argument("target",
                   choices=["fig4a", "fig4b", "fig5a", "fig5b", "table1"])
    p.add_argument("--sequences", type=int, default=400)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("run-msa", help="simulate one MSAP configuration")
    p.add_argument("--sequences", type=int, default=400)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--schedule", default="static")
    p.add_argument("--seed", type=int, default=0)
    _add_db_arg(p, help="PerfDMF sqlite file to store the trial in")
    p.set_defaults(func=_cmd_run_msa)

    p = sub.add_parser("run-genidlest",
                       help="simulate one GenIDLEST configuration")
    p.add_argument("--case", choices=["45rib", "90rib"], default="90rib")
    p.add_argument("--version", choices=["openmp", "mpi"], default="openmp")
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--optimized", action="store_true")
    _add_db_arg(p, help="PerfDMF sqlite file to store the trial in")
    p.set_defaults(func=_cmd_run_genidlest)

    p = sub.add_parser("diagnose", help="diagnose a stored trial")
    _add_db_arg(p, required=True)
    p.add_argument("--app", required=True)
    p.add_argument("--exp", required=True)
    p.add_argument("--trial", required=True)
    p.add_argument("--script", choices=["load-balance", "genidlest"],
                   default="genidlest")
    p.add_argument("--rules", help="extra .prl rule file to load")
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser("list", help="browse a PerfDMF repository")
    _add_db_arg(p, required=True)
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("compare",
                       help="per-event ratio of two stored trials")
    _add_db_arg(p, required=True)
    p.add_argument("--app", required=True)
    p.add_argument("--exp", required=True)
    p.add_argument("trial_a")
    p.add_argument("trial_b")
    p.add_argument("--metric", default="TIME")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("regress", help="performance-regression sentinel")
    rsub = p.add_subparsers(dest="regress_command", required=True)

    rp = rsub.add_parser("baseline", help="tag or list baseline trials")
    rp.add_argument("action", choices=["set", "list"])
    _add_db_arg(rp, required=True)
    rp.add_argument("--app")
    rp.add_argument("--exp")
    rp.add_argument("--trial")
    rp.add_argument("--reason", help="why this trial becomes the baseline")
    rp.set_defaults(func=_cmd_regress_baseline)

    rp = rsub.add_parser(
        "check",
        help="gate a trial against its baseline (exit 1 on regression)")
    _add_db_arg(rp, required=True)
    rp.add_argument("--app", required=True)
    rp.add_argument("--exp", required=True)
    rp.add_argument("--trial", help="candidate trial (default: newest)")
    rp.add_argument("--metric", help="compare only this metric")
    rp.add_argument("--threshold", type=float,
                    help="per-event relative-change threshold (default 0.10)")
    rp.add_argument("--alpha", type=float,
                    help="Welch t-test significance level (default 0.05)")
    rp.add_argument("--promote", action="store_true",
                    help="auto-promote the baseline on accepted improvements")
    rp.add_argument("--no-diagnose", action="store_true",
                    help="skip the chained rule diagnosis")
    rp.set_defaults(func=_cmd_regress_check)

    rp = rsub.add_parser(
        "report",
        help="full regression report with explanation chains (exit 0)")
    _add_db_arg(rp, required=True)
    rp.add_argument("--app", required=True)
    rp.add_argument("--exp", required=True)
    rp.add_argument("--trial")
    rp.add_argument("--metric")
    rp.add_argument("--threshold", type=float)
    rp.add_argument("--alpha", type=float)
    rp.set_defaults(func=_cmd_regress_report)

    p = sub.add_parser(
        "trace",
        help="self-telemetry: run a command traced, or report/export traces")
    p.add_argument("--trace-out", default=None,
                   help="output path prefix (default ./trace => trace.jsonl "
                        "+ trace.json)")
    p.add_argument("cmd", nargs=argparse.REMAINDER,
                   help="inner repro-perf command, or report/export ...")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "trace-app",
        help="run an app simulation with event tracing + timeline diagnosis")
    p.add_argument("app", choices=["msa", "genidlest"])
    p.add_argument("--out", help="Chrome trace_event JSON to write")
    _add_db_arg(p, help="PerfDMF sqlite file for the trial + interval "
                   "sub-trials")
    # msa options
    p.add_argument("--sequences", type=int, default=200)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--schedule", default="static")
    p.add_argument("--seed", type=int, default=0)
    # genidlest options
    p.add_argument("--case", choices=["45rib", "90rib"], default="90rib")
    p.add_argument("--version", choices=["openmp", "mpi"], default="mpi")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--optimized", action="store_true")
    p.set_defaults(func=_cmd_trace_app)

    p = sub.add_parser(
        "explain",
        help="rule-firing audit trail + provenance for a stored trial")
    _add_db_arg(p, required=True)
    p.add_argument("--app", required=True)
    p.add_argument("--exp", required=True)
    p.add_argument("--trial", required=True)
    p.add_argument("--script", choices=["load-balance", "genidlest"],
                   default="genidlest")
    p.add_argument("--rules", help="extra .prl rule file to load")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "serve",
        help="analysis service: job queue + worker pool + result cache")
    ssub = p.add_subparsers(dest="serve_command", required=True)

    sp = ssub.add_parser("start", help="start serving a repository")
    _add_db_arg(sp, help="PerfDMF sqlite file to serve")
    sp.add_argument("--endpoint",
                    help="unix:PATH or tcp:HOST:PORT "
                         "(default: unix:<db>.sock)")
    sp.add_argument("--workers", type=int, default=4)
    sp.add_argument("--mode", choices=["thread", "process"],
                    default="thread",
                    help="execution vehicles: in-process threads or "
                         "killable child processes (needs a file db)")
    sp.add_argument("--queue-depth", type=int, default=64,
                    help="bounded queue depth (backpressure past this)")
    sp.add_argument("--job-timeout", type=float, default=30.0,
                    help="default per-job wall-clock budget, seconds")
    sp.add_argument("--monitor-interval", type=float, default=0.0,
                    metavar="SECONDS",
                    help="snapshot service.stats() into PerfDMF trials "
                         "every N seconds (0 = off; see serve trends)")
    sp.set_defaults(func=_cmd_serve_start)

    def _client_args(cp: argparse.ArgumentParser) -> None:
        _add_db_arg(cp, help="repository the service was started on "
                             "(to derive the default endpoint)")
        cp.add_argument("--endpoint",
                        help="unix:PATH or tcp:HOST:PORT "
                             "(default: unix:<db>.sock)")
        cp.add_argument("--client-timeout", type=float, default=60.0,
                        help="socket timeout, seconds")
        cp.add_argument("--compact", action="store_true",
                        help="single-line JSON output")

    sp = ssub.add_parser("submit", help="submit one analysis job")
    _client_args(sp)
    sp.add_argument("kind",
                    help="job kind (diagnose, compare, regress-check, "
                         "trace-app, pipeline, sleep, ...)")
    sp.add_argument("--param", action="append", metavar="KEY=VALUE",
                    help="job parameter (repeatable; value JSON-coerced)")
    sp.add_argument("--params", help="job parameters as one JSON object")
    sp.add_argument("--priority", type=int, default=0)
    sp.add_argument("--job-timeout", type=float, default=None,
                    help="per-job wall-clock budget override, seconds")
    sp.add_argument("--block", action="store_true",
                    help="wait for queue space instead of failing when full")
    sp.add_argument("--no-wait", dest="wait", action="store_false",
                    help="print the queued job record and return")
    sp.add_argument("--wait-timeout", type=float, default=300.0)
    sp.set_defaults(func=_cmd_serve_submit)

    sp = ssub.add_parser("status", help="show one job, or all jobs")
    _client_args(sp)
    sp.add_argument("--id", type=int, help="job id (default: all jobs)")
    sp.set_defaults(func=_cmd_serve_status)

    sp = ssub.add_parser("stats",
                         help="queue/cache/worker statistics as JSON")
    _client_args(sp)
    sp.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                    help="re-print every N seconds until interrupted")
    sp.add_argument("--iterations", type=int, default=0,
                    help="with --watch: stop after N frames (0 = forever)")
    sp.set_defaults(func=_cmd_serve_stats)

    sp = ssub.add_parser(
        "top",
        help="live fleet dashboard: queue, latency, cache, workers")
    _client_args(sp)
    sp.add_argument("--interval", type=float, default=2.0,
                    help="refresh interval, seconds")
    sp.add_argument("--once", action="store_true",
                    help="print one frame and exit")
    sp.add_argument("--iterations", type=int, default=0,
                    help="stop after N frames (0 = forever)")
    sp.set_defaults(func=_cmd_serve_top)

    sp = ssub.add_parser(
        "metrics",
        help="Prometheus text exposition of the service's metrics")
    _client_args(sp)
    sp.set_defaults(func=_cmd_serve_metrics)

    sp = ssub.add_parser(
        "health",
        help="one-line health verdict (exit 1 when degraded)")
    _client_args(sp)
    sp.set_defaults(func=_cmd_serve_health)

    sp = ssub.add_parser(
        "explain-job",
        help="attribute one job's wall time to queue/retry/exec/cache "
             "phases from its stitched trace")
    _client_args(sp)
    sp.add_argument("id", type=int, help="job id")
    sp.add_argument("--json", action="store_true",
                    help="full explanation (spans included) as JSON")
    sp.add_argument("--chrome", metavar="OUT.json",
                    help="also export the job's stitched timeline as a "
                         "Chrome trace_event file")
    sp.set_defaults(func=_cmd_serve_explain_job)

    sp = ssub.add_parser(
        "trends",
        help="trend diagnosis over stored self-monitor snapshots "
             "(reads the db file directly)")
    _add_db_arg(sp, required=True)
    sp.add_argument("--window", type=int, default=5,
                    help="most recent snapshots to consider")
    sp.set_defaults(func=_cmd_serve_trends)

    sp = ssub.add_parser(
        "diagnose",
        help="run the service-rules rulebase over the service's own health")
    _client_args(sp)
    sp.set_defaults(func=_cmd_serve_diagnose)

    sp = ssub.add_parser("stop", help="shut the service down")
    _client_args(sp)
    sp.set_defaults(func=_cmd_serve_stop)

    p = sub.add_parser(
        "exp",
        help="declarative experiments: plan/run/status/report a TOML spec")
    esub = p.add_subparsers(dest="exp_command", required=True)

    ep = esub.add_parser("plan",
                         help="expand a spec and show the case plan")
    ep.add_argument("spec", help="experiment spec (TOML)")
    ep.add_argument("--cases", action="store_true",
                    help="list every case with its key and factors")
    ep.set_defaults(func=_cmd_exp_plan)

    ep = esub.add_parser(
        "run",
        help="drive a spec to completion (resumable; exit 1 on failures)")
    ep.add_argument("spec", help="experiment spec (TOML)")
    _add_db_arg(ep, help="PerfDMF sqlite file holding trials + resume "
                         "state (default: in-memory, non-resumable)")
    ep.add_argument("--endpoint",
                    help="drive an already-running service "
                         "(unix:PATH or tcp:HOST:PORT) instead of "
                         "spinning a private one")
    ep.add_argument("--client-timeout", type=float, default=60.0,
                    help="socket timeout when using --endpoint, seconds")
    ep.add_argument("--workers", type=int, default=4,
                    help="worker count for the private service")
    ep.add_argument("--mode", choices=["thread", "process"],
                    default="thread",
                    help="private-service vehicles (process needs a "
                         "file db)")
    ep.add_argument("--max-in-flight", type=int, default=8,
                    help="cases executing concurrently")
    ep.add_argument("--case-retries", type=int, default=1,
                    help="resubmissions per failed trial run")
    ep.add_argument("--no-analyze", action="store_true",
                    help="skip the per-case analyze-case diagnosis job")
    ep.add_argument("--trace-out", metavar="OUT.json",
                    help="thread one distributed trace per case and "
                         "export the whole run as a Chrome trace")
    ep.add_argument("--quiet", action="store_true",
                    help="suppress per-case progress lines")
    ep.set_defaults(func=_cmd_exp_run)

    ep = esub.add_parser("status",
                         help="per-case convergence table for a spec's run")
    ep.add_argument("spec", help="experiment spec (TOML)")
    _add_db_arg(ep, required=True)
    ep.set_defaults(func=_cmd_exp_status)

    ep = esub.add_parser(
        "report",
        help="full report: status + attention list + rule critique")
    ep.add_argument("spec", help="experiment spec (TOML)")
    _add_db_arg(ep, required=True)
    ep.add_argument("--no-diagnose", action="store_true",
                    help="skip the experiment-rules critique")
    ep.set_defaults(func=_cmd_exp_report)

    p = sub.add_parser(
        "lineage",
        help="commit-anchored performance history: record/log/scan/bisect")
    lsub = p.add_subparsers(dest="lineage_command", required=True)

    lp = lsub.add_parser("record",
                         help="record a code version (and attach trials)")
    _add_db_arg(lp, required=True)
    lp.add_argument("version", help="version id (commit sha, tag, ...)")
    lp.add_argument("--parent", action="append", metavar="VERSION",
                    help="parent version (repeat for merges)")
    lp.add_argument("--annotate", action="append", metavar="KEY=VALUE",
                    help="annotation (value parsed as JSON when possible)")
    lp.add_argument("--factor", action="append", metavar="KEY=VALUE",
                    help="experiment factor for later sample synthesis "
                         "(collected under the 'factors' annotation)")
    lp.add_argument("--trial", action="append", metavar="APP/EXP/TRIAL",
                    help="attach a stored trial to this version")
    lp.add_argument("--baseline", action="append", metavar="APP/EXP/TRIAL",
                    help="attach a stored trial as this version's baseline")
    lp.set_defaults(func=_cmd_lineage_record)

    lp = lsub.add_parser("log",
                         help="show version history (newest first)")
    _add_db_arg(lp, required=True)
    lp.add_argument("--tip", help="start from this version (default: "
                                  "newest tip)")
    lp.add_argument("--limit", type=int, help="show at most N versions")
    lp.add_argument("--json", action="store_true")
    lp.set_defaults(func=_cmd_lineage_log)

    def _scan_policy_args(lp: argparse.ArgumentParser) -> None:
        lp.add_argument("--application", help="restrict to one application")
        lp.add_argument("--experiment", help="restrict to one experiment")
        lp.add_argument("--metric", help="restrict detection to one metric")
        lp.add_argument("--threshold", type=float,
                        help="min relative change to flag (default 0.10)")
        lp.add_argument("--alpha", type=float,
                        help="significance level (default 0.05)")

    lp = lsub.add_parser(
        "scan",
        help="sweep regression detectors along history (exit 1 if any "
             "step regressed)")
    _add_db_arg(lp, required=True)
    lp.add_argument("--start", help="oldest version (default: root)")
    lp.add_argument("--end", help="newest version (default: tip)")
    _scan_policy_args(lp)
    lp.add_argument("--json", action="store_true")
    lp.set_defaults(func=_cmd_lineage_scan)

    def _bisect_args(lp: argparse.ArgumentParser) -> None:
        _add_db_arg(lp, required=True)
        lp.add_argument("good", help="known-good version")
        lp.add_argument("bad", nargs="?",
                        help="known-bad version (default: newest tip)")
        _scan_policy_args(lp)
        lp.add_argument("--endpoint",
                        help="serve endpoint (unix:PATH or tcp:HOST:PORT) "
                             "for synthesizing missing samples")
        lp.add_argument("--client-timeout", type=float, default=120.0,
                        help="per-probe job timeout, seconds")
        lp.add_argument("--min-runs", type=int, default=3,
                        help="reruns per synthesized probe before assessing")
        lp.add_argument("--max-runs", type=int, default=8,
                        help="rerun ceiling per synthesized probe")
        lp.add_argument("--rel-halfwidth", type=float, default=0.10,
                        help="CI half-width convergence target")
        lp.add_argument("--json", action="store_true",
                        help="print the full JSON report")
        lp.add_argument("--out", metavar="REPORT.json",
                        help="also write the JSON report to a file")
        lp.set_defaults(func=_cmd_lineage_bisect)

    lp = lsub.add_parser(
        "bisect",
        help="binary-search history for the regression-introducing version")
    _bisect_args(lp)

    p = sub.add_parser(
        "bisect",
        help="binary-search performance history (alias for lineage bisect)")
    _bisect_args(p)

    p = sub.add_parser("tune", help="run a closed tuning loop")
    p.add_argument("app", choices=["msa", "genidlest"])
    p.add_argument("--sequences", type=int, default=200)
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--case", choices=["45rib", "90rib"], default="90rib")
    p.add_argument("--procs", type=int, default=16)
    p.add_argument("--iterations", type=int, default=3)
    p.set_defaults(func=_cmd_tune)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rc = args.func(args)
    # env-var path: REPRO_OBSERVE=1 enables collection at import;
    # REPRO_OBSERVE_OUT=trace.jsonl also exports it on exit.
    import os

    out = os.environ.get("REPRO_OBSERVE_OUT")
    if out:
        from repro import observe

        if observe.enabled() and observe.get_tracer().finished():
            from repro.observe.export import write_jsonl

            write_jsonl(observe.get_tracer(), out)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
