"""The analysis service: a long-lived PerfExplorer between clients and PerfDMF.

:class:`AnalysisService` owns the moving parts::

    submit() ──► ResultCache probe ──hit──► job completes (near-free)
        │ miss
        ▼
    JobQueue (priorities, bounded depth, backpressure)
        │ take()
        ▼
    WorkerPool (N supervisors; thread or process vehicles, per-job timeout)
        │                                     │
        ▼                                     ▼
    read-only PerfDMF snapshot views     rw repository (writing kinds)
        │
        ▼
    result → ResultCache.put + job completes (done_event wakes waiters)

Transient handler failures re-queue with exponential backoff up to the
job's retry budget; timeouts are terminal (the work was killed, not
flaky).  Queue-wait, execution time per kind, and cache traffic feed
both the service's own always-on instruments (``serve stats``) and —
when enabled — :mod:`repro.observe` spans/events, so a traced service
run lands in the same dogfood pipeline as everything else.

The service degrades loudly: :meth:`service_facts` turns queue latency,
failure rate, and backpressure past thresholds into
``ServiceDegradedFact`` rows, and :meth:`diagnose_service` runs the
``service-rules`` rulebase over them — operations advice from the same
inference engine that diagnoses application trials.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any

from .. import observe
from ..core.result import AnalysisError
from ..observe.context import TraceContext, coverage, make_span, new_span_id
from ..observe.exposition import metric_row, registry_rows, render_prometheus
from ..observe.metrics import Histogram
from ..perfdmf import PerfDMF, ProfileError
from ..rules import Fact
from .cache import ResultCache, cache_key, rulebase_fingerprint
from .handlers import JobContext, JobKind, resolve_kind
from .jobs import (
    DONE,
    FAILED,
    Job,
    JobQueue,
    JobSpec,
    QUEUED,
    RUNNING,
    TIMEOUT,
    TransientJobError,
)
from .workers import ExecutionTimeout, WorkerPool

__all__ = [
    "AnalysisService",
    "BACKPRESSURE_THRESHOLD",
    "FAILURE_RATE_THRESHOLD",
    "QUEUE_WAIT_P95_THRESHOLD",
    "ServeConfig",
]

#: p95 queue wait (seconds) above which the service reports degradation.
QUEUE_WAIT_P95_THRESHOLD = 1.0
#: Share of finished jobs that failed/timed out before degradation.
FAILURE_RATE_THRESHOLD = 0.10
#: Share of admissions rejected by backpressure before degradation.
BACKPRESSURE_THRESHOLD = 0.05
#: How few finished jobs make rate-based thresholds meaningless.
_MIN_FINISHED_FOR_RATES = 5


def _failure_record(exc: BaseException, attempts: int, *,
                    transient: bool = False) -> dict[str, Any]:
    """Structured failure payload for ``Job.failure`` — the exception's
    type/message plus any machine-readable ``reason`` the handler
    attached (see :class:`~repro.serve.jobs.TransientJobError`)."""
    record: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "transient": transient or isinstance(exc, TransientJobError),
        "attempts": attempts,
    }
    reason = getattr(exc, "reason", None)
    if reason:
        record["reason"] = reason
    return record


@dataclass(frozen=True)
class ServeConfig:
    """Service construction knobs (what ``serve start`` exposes)."""

    db_path: str = ":memory:"
    workers: int = 4
    mode: str = "thread"  # or "process"
    queue_depth: int = 64
    default_timeout: float | None = 30.0
    max_retries: int = 2
    backoff: float = 0.05
    cache_entries: int = 512
    busy_timeout_ms: int = 5_000
    #: Distributed-trace stitching: every job carries a trace context and
    #: accumulates wall-clock timeline spans (client → queue → worker →
    #: handler → cache).  Off switches the whole subsystem to no-ops.
    tracing: bool = True


class AnalysisService:
    """Concurrent analysis over one PerfDMF repository.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, config: ServeConfig | None = None, **overrides) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServeConfig or keyword overrides")
        self.config = config
        self._db: PerfDMF | None = None
        self._db_ro: PerfDMF | None = None
        self.queue = JobQueue(maxsize=config.queue_depth)
        self.cache = ResultCache(max_entries=config.cache_entries)
        self.pool: WorkerPool | None = None
        self._jobs: dict[int, Job] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started_at: float | None = None
        # Always-on instruments (independent of observe.enabled()).
        self._queue_wait = Histogram("serve.queue_wait")
        self._exec: dict[str, Histogram] = {}
        self._status_counts: dict[str, int] = {}
        self._cache_hits = 0
        self._submitted = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "AnalysisService":
        if self.pool is not None:
            return self
        cfg = self.config
        self._db = PerfDMF(cfg.db_path, busy_timeout_ms=cfg.busy_timeout_ms)
        self._db_ro = self._db.read_view()
        self.cache.attach(self._db)
        self.pool = WorkerPool(
            self.queue,
            self._dispatch,
            workers=cfg.workers,
            mode=cfg.mode,
            local_runner=self._run_local,
            db_path=self._db.path if cfg.mode == "process" else None,
        )
        self.pool.start()
        self._started_at = time.monotonic()
        observe.event("serve.start", db=cfg.db_path, workers=cfg.workers,
                      mode=cfg.mode)
        return self

    def stop(self) -> None:
        if self.pool is not None:
            self.pool.stop()
            self.pool = None
        observe.event("serve.stop")
        for db in (self._db_ro, self._db):
            if db is not None:
                db.close()
        self._db = self._db_ro = None

    def __enter__(self) -> "AnalysisService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def db(self) -> PerfDMF:
        """The service's read-write repository handle."""
        if self._db is None:
            raise AnalysisError("service is not started")
        return self._db

    # -- submission --------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: dict[str, Any] | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        max_retries: int | None = None,
        block: bool = False,
        queue_timeout: float | None = None,
        trace: Any = None,
    ) -> Job:
        """Admit one job; returns immediately with its :class:`Job`.

        A cacheable job whose content address hits completes on the spot
        without ever touching the queue.  A full queue raises
        :class:`~repro.serve.jobs.QueueFull` unless ``block`` is set.

        ``trace`` is the caller's trace context — a
        :class:`~repro.observe.context.TraceContext`, its wire dict, or
        a ``traceparent`` string.  With tracing on (the default) a job
        without one gets a fresh root context, so every job is always
        explainable.
        """
        if self.pool is None:
            raise AnalysisError("service is not started")
        kind_obj = resolve_kind(kind)
        params = dict(params or {})
        cfg = self.config
        spec = JobSpec(
            kind=kind,
            params=params,
            priority=priority,
            timeout=cfg.default_timeout if timeout is None else timeout,
            max_retries=cfg.max_retries if max_retries is None
            else max_retries,
            backoff=cfg.backoff,
        )
        job = Job(id=next(self._job_ids), spec=spec)
        if cfg.tracing:
            ctx = TraceContext.from_wire(trace) if trace \
                else TraceContext.mint()
            job.trace_id = ctx.trace_id
            job.trace_parent = ctx.parent_span_id
            job.root_span_id = new_span_id()
        job.transition(QUEUED, job.root_span_id)
        with self._lock:
            self._jobs[job.id] = job
            self._submitted += 1
        with observe.span("serve.submit", kind=kind, job=job.id):
            key, _ = self._key_and_coords(kind_obj, params)
            if key is not None:
                hit, value = self.cache.get(key)
                if job.trace_id is not None:
                    # Phase spans tile: the probe starts at submission
                    # (absorbing content addressing) so the stitched
                    # timeline has no structural gaps.
                    probe_end = time.time()
                    job.add_spans([make_span(
                        job.trace_id, "serve.cache-probe",
                        job.submitted_wall, probe_end,
                        parent_id=job.root_span_id, process="service",
                        hit=hit, phase="submit",
                    )])
                    job._phase_cursor_wall = probe_end
                if hit:
                    job.queue_wait = 0.0
                    self._queue_wait.observe(0.0)
                    self._finish(job, DONE, result=value, cache_hit=True)
                    return job
            try:
                self.queue.put(job, block=block, timeout=queue_timeout)
            except BaseException:
                with self._lock:
                    del self._jobs[job.id]
                    self._submitted -= 1
                raise
        return job

    def job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise AnalysisError(f"no job with id {job_id}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: int, timeout: float | None = None) -> Job:
        """Block until the job finishes (or ``timeout`` elapses)."""
        job = self.job(job_id)
        job.wait(timeout)
        return job

    # -- execution (worker supervisor threads) -----------------------------
    def _run_local(self, kind: str, params: dict[str, Any], attempt: int,
                   worker: str) -> dict[str, Any]:
        """Thread-mode execution: handlers run in this process against
        the shared repository (read-only view unless the kind writes)."""
        kind_obj = resolve_kind(kind)
        _, writes = kind_obj.effective_flags(params)
        db = self._db if writes else self._db_ro
        return kind_obj.run(
            JobContext(db=db, worker=worker, attempt=attempt), params
        )

    def _dispatch(self, job: Job, run) -> None:
        """One execution attempt; runs on the worker's supervisor thread."""
        now = time.monotonic()
        wall_now = time.time()
        traced = job.trace_id is not None
        if job.queue_wait is None:
            job.queue_wait = now - job.submitted_at
            self._queue_wait.observe(job.queue_wait)
            if observe.enabled():
                observe.histogram("serve.queue_wait").observe(job.queue_wait)
            if traced:
                # Start where the submit-time cache probe (if any) left
                # off so the phases tile without double counting.
                job.add_spans([make_span(
                    job.trace_id, "serve.queue-wait",
                    getattr(job, "_phase_cursor_wall", None)
                    or job.submitted_wall, wall_now,
                    parent_id=job.root_span_id, process="service",
                )])
        elif traced:
            # A retry attempt: the wait since the backoff was scheduled.
            anchor = getattr(job, "_retry_anchor_wall", None)
            if anchor is not None:
                job.add_spans([make_span(
                    job.trace_id, "serve.retry-wait", anchor, wall_now,
                    parent_id=job.root_span_id, process="service",
                    attempt=job.attempts + 1,
                )])
        if traced:
            job._phase_cursor_wall = wall_now
        job.attempts += 1
        job.status = RUNNING
        job.started_at = now
        kind_obj = resolve_kind(job.spec.kind)
        key = coords = None
        cacheable, _ = kind_obj.effective_flags(job.spec.params)
        if cacheable:
            key, coords = self._key_and_coords(kind_obj, job.spec.params)
            if key is not None:
                # Second probe: an identical job may have populated the
                # cache while this one sat in the queue.
                hit, value = self.cache.get(key)
                if traced:
                    probe_end = time.time()
                    job.add_spans([make_span(
                        job.trace_id, "serve.cache-probe",
                        job._phase_cursor_wall, probe_end,
                        parent_id=job.root_span_id, process="service",
                        hit=hit, phase="dispatch",
                    )])
                    job._phase_cursor_wall = probe_end
                if hit:
                    self._finish(job, DONE, result=value, cache_hit=True)
                    return
        exec_span_id = new_span_id() if traced else None
        job.transition(RUNNING, exec_span_id)
        child_trace = {
            "trace_id": job.trace_id, "parent_span_id": exec_span_id,
        } if traced else None
        span_sink: list = []
        exec_start_wall = job._phase_cursor_wall if traced else time.time()

        def record_exec(status: str) -> None:
            if not traced:
                return
            exec_end = time.time()
            job.add_spans([make_span(
                job.trace_id, "serve.exec",
                exec_start_wall, exec_end,
                parent_id=job.root_span_id, span_id=exec_span_id,
                process="service", worker=job.worker,
                attempt=job.attempts, status=status,
            )])
            job.add_spans(span_sink)
            job._phase_cursor_wall = exec_end

        with observe.span("serve.execute", kind=job.spec.kind, job=job.id,
                          attempt=job.attempts, worker=job.worker):
            started = time.monotonic()
            try:
                result = run(job.spec.timeout, trace=child_trace,
                             span_sink=span_sink)
            except ExecutionTimeout as exc:
                job.exec_seconds = time.monotonic() - started
                record_exec("timeout")
                self._finish(job, TIMEOUT, error=str(exc),
                             failure=_failure_record(exc, job.attempts))
                return
            except TransientJobError as exc:
                job.exec_seconds = time.monotonic() - started
                record_exec("transient")
                if job.attempts <= job.spec.max_retries:
                    delay = job.spec.backoff * (2 ** (job.attempts - 1))
                    job.status = QUEUED
                    job.error = f"retrying after transient failure: {exc}"
                    job._retry_anchor_wall = time.time()
                    job.transition(QUEUED, job.root_span_id)
                    observe.event("serve.retry", job=job.id,
                                  kind=job.spec.kind, attempt=job.attempts,
                                  delay=delay, error=str(exc))
                    self.queue.put_retry(job, delay=delay)
                    return
                self._finish(
                    job, FAILED,
                    error=f"transient failure persisted after "
                          f"{job.attempts} attempts: {exc}",
                    failure=_failure_record(exc, job.attempts,
                                            transient=True),
                )
                return
            except BaseException as exc:  # noqa: BLE001 - job boundary
                job.exec_seconds = time.monotonic() - started
                record_exec("error")
                self._finish(job, FAILED,
                             error=f"{type(exc).__name__}: {exc}",
                             failure=_failure_record(exc, job.attempts))
                return
        job.exec_seconds = time.monotonic() - started
        record_exec("ok")
        self._exec_hist(job.spec.kind).observe(job.exec_seconds)
        if observe.enabled():
            observe.histogram(
                f"serve.exec.{job.spec.kind}").observe(job.exec_seconds)
        if key is not None:
            self.cache.put(key, result, coords=coords)
            if traced:
                store_end = time.time()
                job.add_spans([make_span(
                    job.trace_id, "serve.cache-store",
                    job._phase_cursor_wall, store_end,
                    parent_id=job.root_span_id, process="service",
                )])
                job._phase_cursor_wall = store_end
        self._finish(job, DONE, result=result)

    def _exec_hist(self, kind: str) -> Histogram:
        hist = self._exec.get(kind)
        if hist is None:
            with self._lock:
                hist = self._exec.setdefault(
                    kind, Histogram(f"serve.exec.{kind}"))
        return hist

    def _finish(self, job: Job, status: str, *, result=None, error=None,
                failure: dict | None = None,
                cache_hit: bool = False) -> None:
        job.status = status
        job.result = result
        job.error = error
        job.failure = failure
        job.cache_hit = cache_hit
        job.finished_at = time.monotonic()
        job.finished_wall = time.time()
        if job.trace_id is not None:
            # Close the tail of the phase tiling: result recording and
            # span shipping between the last phase and the finish stamp.
            cursor = getattr(job, "_phase_cursor_wall", None)
            if cursor is not None and job.finished_wall > cursor:
                job.add_spans([make_span(
                    job.trace_id, "serve.finalize",
                    cursor, job.finished_wall,
                    parent_id=job.root_span_id, process="service",
                )])
            # The root span closes the stitched timeline: everything the
            # service and its workers recorded hangs under this.
            job.add_spans([make_span(
                job.trace_id, "serve.job",
                job.submitted_wall, job.finished_wall,
                parent_id=job.trace_parent, span_id=job.root_span_id,
                process="service", kind=job.spec.kind, job=job.id,
                status=status, cache_hit=cache_hit, attempts=job.attempts,
            )])
        job.transition(status, job.root_span_id)
        with self._lock:
            self._status_counts[status] = \
                self._status_counts.get(status, 0) + 1
            if cache_hit:
                self._cache_hits += 1
        observe.event("serve.job", job=job.id, kind=job.spec.kind,
                      status=status, cache_hit=cache_hit,
                      attempts=job.attempts)
        job.done_event.set()

    # -- cache addressing --------------------------------------------------
    def _key_and_coords(self, kind_obj: JobKind, params: dict[str, Any]):
        """Content address + trial coordinates, or ``(None, ())`` when the
        submission is uncacheable (by kind, by params, or because a named
        trial does not exist — the handler will report that properly)."""
        cacheable, _ = kind_obj.effective_flags(params)
        if not cacheable or self._db is None:
            return None, ()
        coords: list[tuple[str, str, str]] = []
        hashes: list[str] = []
        for app_key, exp_key, trial_key in kind_obj.trial_refs:
            app = params.get(app_key)
            exp = params.get(exp_key)
            trial = params.get(trial_key)
            if not (app and exp and trial):
                return None, ()
            try:
                hashes.append(self._db.content_hash(app, exp, trial))
            except ProfileError:
                return None, ()
            coords.append((app, exp, trial))
        return (
            cache_key(kind_obj.name, params, hashes),
            tuple(coords),
        )

    # -- statistics and degradation facts ----------------------------------
    def stats(self) -> dict[str, Any]:
        """One JSON-able snapshot (what ``serve stats`` prints)."""
        with self._lock:
            status_counts = dict(self._status_counts)
            submitted = self._submitted
            cache_hits = self._cache_hits
        in_flight = sum(
            1 for j in self.jobs() if j.status in (QUEUED, RUNNING)
        )
        uptime = (time.monotonic() - self._started_at) \
            if self._started_at else 0.0
        return {
            "uptime": uptime,
            # Monotonic uptime under its canonical name; "uptime" stays
            # for older consumers of the stats shape.
            "uptime_s": uptime,
            "db": self.config.db_path,
            "tracing": self.config.tracing,
            "workers": {
                "count": self.config.workers,
                "mode": self.config.mode,
                "alive": self.pool.alive() if self.pool else 0,
                "respawns": self.pool.respawns() if self.pool else 0,
            },
            "versions": {
                "code": __import__("repro").__version__,
                "rulebase": rulebase_fingerprint(),
            },
            "queue": self.queue.stats(),
            "jobs": {
                "submitted": submitted,
                "in_flight": in_flight,
                "by_status": status_counts,
                "cache_hits": cache_hits,
            },
            "cache": self.cache.snapshot(),
            "queue_wait": self._queue_wait.summary(),
            "exec": {
                kind: hist.summary() for kind, hist in sorted(
                    self._exec.items())
            },
        }

    def service_facts(
        self,
        *,
        queue_wait_p95_threshold: float = QUEUE_WAIT_P95_THRESHOLD,
        failure_rate_threshold: float = FAILURE_RATE_THRESHOLD,
        backpressure_threshold: float = BACKPRESSURE_THRESHOLD,
    ) -> list[Fact]:
        """The service's health as rule-engine facts.

        Always includes one ``ServiceStatsFact``; each threshold crossing
        adds a ``ServiceDegradedFact`` with a machine-readable reason
        (``queue-latency`` / ``failure-rate`` / ``backpressure``)."""
        stats = self.stats()
        finished = sum(stats["jobs"]["by_status"].values())
        failures = (stats["jobs"]["by_status"].get(FAILED, 0)
                    + stats["jobs"]["by_status"].get(TIMEOUT, 0))
        failure_rate = failures / finished if finished else 0.0
        admissions = stats["queue"]["enqueued"] + stats["queue"]["rejected"]
        reject_rate = (stats["queue"]["rejected"] / admissions
                       if admissions else 0.0)
        p95 = self._queue_wait.percentile(95)
        facts = [
            Fact(
                "ServiceStatsFact",
                submitted=stats["jobs"]["submitted"],
                finished=finished,
                failureRate=failure_rate,
                queueDepth=stats["queue"]["depth"],
                queueWaitP95=p95,
                cacheHitRate=stats["cache"]["hit_rate"],
                workers=stats["workers"]["count"],
                mode=stats["workers"]["mode"],
            )
        ]
        degraded = []
        if self._queue_wait.count and p95 > queue_wait_p95_threshold:
            degraded.append(("queue-latency", p95, queue_wait_p95_threshold))
        if finished >= _MIN_FINISHED_FOR_RATES and \
                failure_rate > failure_rate_threshold:
            degraded.append(("failure-rate", failure_rate,
                             failure_rate_threshold))
        if admissions >= _MIN_FINISHED_FOR_RATES and \
                reject_rate > backpressure_threshold:
            degraded.append(("backpressure", reject_rate,
                             backpressure_threshold))
        for reason, value, threshold in degraded:
            facts.append(Fact(
                "ServiceDegradedFact",
                reason=reason,
                value=value,
                threshold=threshold,
                workers=stats["workers"]["count"],
                queueDepth=stats["queue"]["depth"],
                queueBound=stats["queue"]["maxsize"],
            ))
            observe.event("serve.degraded", reason=reason, value=value,
                          threshold=threshold)
        return facts

    def diagnose_service(self, **thresholds):
        """Run the ``service-rules`` rulebase over the current health
        facts; returns the fired harness (recommendations & explanations)."""
        from ..core.harness import RuleHarness

        harness = RuleHarness("service-rules")
        harness.assertObjects(self.service_facts(**thresholds))
        harness.processRules()
        return harness

    # -- explanation, health, exposition -----------------------------------
    def explain_job(self, job_id: int) -> dict[str, Any]:
        """Attribute one job's wall time to queue/retry/exec/cache phases
        from its stitched timeline spans.

        ``attribution`` sums the root span's direct children by phase
        (they are sequential by construction, so the sum never double
        counts); ``coverage`` is the fraction of the job's wall the
        phases explain — the ≥95 % stitching gate.
        """
        job = self.job(job_id)
        spans = list(job.spans)
        end_wall = job.finished_wall if job.finished_wall is not None \
            else time.time()
        wall = max(end_wall - job.submitted_wall, 0.0)
        base = {
            "id": job.id,
            "kind": job.spec.kind,
            "status": job.status,
            "attempts": job.attempts,
            "cache_hit": job.cache_hit,
            "worker": job.worker,
            "wall_seconds": wall,
            "transitions": list(job.transitions),
        }
        if job.trace_id is None:
            return {**base, "traced": False, "spans": [],
                    "attribution": {}, "coverage": 0.0}
        phases = {
            "queue": ("serve.queue-wait",),
            "retry": ("serve.retry-wait",),
            "exec": ("serve.exec",),
            "cache": ("serve.cache-probe", "serve.cache-store"),
        }
        root_children = [s for s in spans
                         if s.get("parent_id") == job.root_span_id]
        attribution = {
            phase: sum(s["end"] - s["start"] for s in root_children
                       if s["name"] in names)
            for phase, names in phases.items()
        }
        attribution["other"] = max(
            wall - sum(attribution.values()), 0.0)
        handler_seconds = sum(s["end"] - s["start"] for s in spans
                              if s["name"] == "serve.handler")
        return {
            **base,
            "traced": True,
            "trace_id": job.trace_id,
            "root_span_id": job.root_span_id,
            "handler_seconds": handler_seconds,
            "attribution": attribution,
            "coverage": coverage(root_children, job.submitted_wall,
                                 end_wall) if root_children else 0.0,
            "spans": spans,
            "spans_dropped": job.spans_dropped,
        }

    def health(self) -> dict[str, Any]:
        """Cheap liveness + degradation summary (the ``health`` verb)."""
        reasons = [fact["reason"] for fact in self.service_facts()
                   if fact.fact_type == "ServiceDegradedFact"]
        return {
            "status": "degraded" if reasons else "ok",
            "uptime_s": (time.monotonic() - self._started_at)
            if self._started_at else 0.0,
            "workers": self.config.workers,
            "workers_alive": self.pool.alive() if self.pool else 0,
            "queue_depth": self.queue.depth(),
            "reasons": reasons,
        }

    def metrics_rows(self) -> list[dict[str, Any]]:
        """The service's always-on instruments as exposition rows, plus
        the global :mod:`repro.observe` registry when collection is on."""
        stats = self.stats()
        rows = [
            metric_row("gauge", "repro_serve_uptime_seconds",
                       stats["uptime_s"],
                       help_="Seconds since the service started."),
            metric_row("gauge", "repro_serve_queue_depth",
                       stats["queue"]["depth"],
                       help_="Jobs currently queued (ready + delayed)."),
            metric_row("gauge", "repro_serve_queue_bound",
                       stats["queue"]["maxsize"]),
            metric_row("counter", "repro_serve_queue_enqueued_total",
                       stats["queue"]["enqueued"]),
            metric_row("counter", "repro_serve_queue_rejected_total",
                       stats["queue"]["rejected"],
                       help_="Admissions refused by backpressure."),
            metric_row("counter", "repro_serve_queue_retried_total",
                       stats["queue"]["retried"]),
            metric_row("gauge", "repro_serve_workers_alive",
                       stats["workers"]["alive"]),
            metric_row("gauge", "repro_serve_workers_configured",
                       stats["workers"]["count"]),
            metric_row("counter", "repro_serve_worker_respawns_total",
                       stats["workers"]["respawns"],
                       help_="Killed children and rebuilt executors."),
            metric_row("counter", "repro_serve_jobs_submitted_total",
                       stats["jobs"]["submitted"]),
            metric_row("gauge", "repro_serve_jobs_in_flight",
                       stats["jobs"]["in_flight"]),
            metric_row("counter", "repro_serve_cache_hits_total",
                       stats["cache"]["hits"]),
            metric_row("counter", "repro_serve_cache_misses_total",
                       stats["cache"]["misses"]),
            metric_row("counter", "repro_serve_cache_evictions_total",
                       stats["cache"]["evictions"]),
            metric_row("gauge", "repro_serve_cache_entries",
                       stats["cache"]["entries"]),
            metric_row("gauge", "repro_serve_cache_hit_rate",
                       stats["cache"]["hit_rate"]),
        ]
        for status, n in sorted(stats["jobs"]["by_status"].items()):
            rows.append(metric_row(
                "counter", "repro_serve_jobs_finished_total", n,
                labels={"status": status},
            ))
        rows.append(metric_row(
            "summary", "repro_serve_queue_wait_seconds",
            summary=stats["queue_wait"],
            help_="Seconds jobs wait before their first execution.",
        ))
        for kind, summary in stats["exec"].items():
            rows.append(metric_row(
                "summary", "repro_serve_exec_seconds",
                summary=summary, labels={"kind": kind},
            ))
        if observe.enabled():
            rows.extend(registry_rows(observe.get_tracer().metrics,
                                      prefix="repro_observe_"))
        return rows

    def metrics_text(self) -> str:
        """Prometheus text exposition (the ``metrics`` verb's payload);
        relay with content type :data:`repro.observe.exposition.CONTENT_TYPE`.
        """
        return render_prometheus(self.metrics_rows())
