"""The worker pool: N workers draining the job queue concurrently.

Each worker is a supervisor thread that owns one *execution vehicle* —
the thing that actually runs a handler under a wall-clock budget:

* ``mode="thread"`` — a private single-slot thread executor.  Cheap,
  shares the service's in-process repository (per-thread connections),
  and works for ``:memory:`` databases.  A timed-out handler is
  abandoned (its thread parks until it returns) and the slot is rebuilt,
  so the worker itself never wedges.
* ``mode="process"`` — a dedicated child process driven over a pipe.
  True isolation: a timed-out or crashed handler is killed and the
  child respawned.  Requires a file-backed repository (children open
  their own connections — read-only snapshots unless the kind writes).

The supervisor thread is where the service's dispatch callback runs
(cache probe, retry accounting, telemetry); vehicles only execute
handlers.  That split keeps all queue/cache state in one process no
matter which vehicle is in play.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
from typing import Any, Callable

from .jobs import JobQueue, TransientJobError

__all__ = ["ExecutionTimeout", "WorkerPool"]


class ExecutionTimeout(Exception):
    """A handler exceeded its wall-clock budget."""


class _ThreadVehicle:
    """Runs handlers on a private single-slot executor with a deadline."""

    def __init__(self, local_runner: Callable[..., dict[str, Any]],
                 name: str) -> None:
        self._runner = local_runner
        self._name = name
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"{name}-exec"
        )

    def run(self, kind: str, params: dict[str, Any], attempt: int,
            timeout: float | None) -> dict[str, Any]:
        future = self._pool.submit(self._runner, kind, params, attempt,
                                   self._name)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            # The runaway thread is abandoned (daemonic; parks until its
            # handler returns) and the slot rebuilt so this worker stays
            # responsive.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{self._name}-exec"
            )
            raise ExecutionTimeout(
                f"execution exceeded {timeout:.3f}s (thread mode)"
            ) from None

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


def _process_worker_main(conn, db_path: str, name: str) -> None:
    """Child-process loop: open own connections, run handlers, reply."""
    from ..perfdmf import PerfDMF
    from .handlers import JobContext, resolve_kind

    db_rw = None
    db_ro = None
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            kind_name, params, attempt = msg
            try:
                kind = resolve_kind(kind_name)
                _, writes = kind.effective_flags(params)
                if writes:
                    if db_rw is None:
                        db_rw = PerfDMF(db_path)
                    db = db_rw
                else:
                    if db_ro is None:
                        db_ro = PerfDMF(db_path, read_only=True)
                    db = db_ro
                result = kind.run(
                    JobContext(db=db, worker=name, attempt=attempt), params
                )
                conn.send(("ok", result, None))
            except TransientJobError as exc:
                conn.send(("transient", str(exc),
                           getattr(exc, "reason", None)))
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                conn.send(("error", f"{type(exc).__name__}: {exc}",
                           getattr(exc, "reason", None)))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        for db in (db_rw, db_ro):
            if db is not None:
                db.close()


def _preload_handler_modules() -> None:
    """Import everything handlers lazily need *before* forking children.

    A fork taken while another thread is mid-import leaves the module's
    import lock held by a thread that does not exist in the child — the
    child then deadlocks on its first lazy ``from ..knowledge import``.
    Fully-initialized modules short-circuit in ``sys.modules`` without
    touching the lock, so eager pre-fork imports make child-side lazy
    imports safe.
    """
    import importlib

    for mod in ("repro.knowledge", "repro.workflows", "repro.regress",
                "repro.core.script"):
        importlib.import_module(mod)


class _ProcessVehicle:
    """Drives one dedicated child process over a pipe; kills on timeout."""

    def __init__(self, db_path: str, name: str) -> None:
        if "mode=memory" in db_path:
            raise ValueError(
                "process workers need a file-backed repository "
                "(in-memory databases are per-process)"
            )
        self._db_path = db_path
        self._name = name
        # fork is the fast path on Linux; spawn keeps macOS/Windows working.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._proc = None
        self._conn = None
        self._spawn()

    def _spawn(self) -> None:
        self._conn, child_conn = self._ctx.Pipe()
        self._proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._db_path, self._name),
            daemon=True,
            name=self._name,
        )
        self._proc.start()
        child_conn.close()

    def run(self, kind: str, params: dict[str, Any], attempt: int,
            timeout: float | None) -> dict[str, Any]:
        if self._proc is None or not self._proc.is_alive():
            self._spawn()
        self._conn.send((kind, params, attempt))
        if not self._conn.poll(timeout):
            self._kill()
            self._spawn()
            raise ExecutionTimeout(
                f"execution exceeded {timeout:.3f}s (worker process killed)"
            )
        try:
            msg = self._conn.recv()
        except EOFError:
            self._spawn()
            raise TransientJobError(
                f"worker process {self._name} died mid-job"
            ) from None
        # (status, payload) pre-reason wire shape still accepted.
        status, payload = msg[0], msg[1]
        reason = msg[2] if len(msg) > 2 else None
        if status == "ok":
            return payload
        if status == "transient":
            raise TransientJobError(payload, reason=reason)
        err = RuntimeError(payload)
        err.reason = reason
        raise err

    def _kill(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=1.0)
        if self._conn is not None:
            self._conn.close()

    def close(self) -> None:
        try:
            if self._proc is not None and self._proc.is_alive():
                self._conn.send(None)
                self._proc.join(timeout=1.0)
        except (BrokenPipeError, OSError):  # pragma: no cover - teardown
            pass
        self._kill()


class WorkerPool:
    """N supervisor threads, each draining the queue through a vehicle.

    Parameters
    ----------
    queue:
        The :class:`~repro.serve.jobs.JobQueue` to drain.
    dispatch:
        ``dispatch(job, run)`` — the service callback executed on the
        supervisor thread.  ``run(timeout)`` executes the job's handler
        in the vehicle and returns its payload (raising
        :class:`ExecutionTimeout` / :class:`TransientJobError` / the
        handler's own error).
    local_runner:
        ``(kind, params, attempt, worker) -> payload``; required for
        thread mode, where handlers run in this process.
    db_path:
        Repository file; required for process mode.
    """

    def __init__(
        self,
        queue: JobQueue,
        dispatch: Callable,
        *,
        workers: int = 4,
        mode: str = "thread",
        local_runner: Callable[..., dict[str, Any]] | None = None,
        db_path: str | None = None,
        name_prefix: str = "worker",
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if mode == "thread" and local_runner is None:
            raise ValueError("thread mode needs a local_runner")
        if mode == "process" and not db_path:
            raise ValueError("process mode needs a db_path")
        self.queue = queue
        self.mode = mode
        self.workers = workers
        self._dispatch = dispatch
        self._local_runner = local_runner
        self._db_path = db_path
        self._name_prefix = name_prefix
        self._threads: list[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.mode == "process":
            # Fork the initial children here, sequentially, on the caller's
            # thread — before any supervisor (or service) thread can be
            # mid-import or mid-lock — and preload the analysis modules so
            # later respawns (which do fork from supervisor threads) find
            # every lazy import already satisfied.
            _preload_handler_modules()
        for i in range(self.workers):
            name = f"{self._name_prefix}-{i}"
            vehicle = self._make_vehicle(name)
            t = threading.Thread(
                target=self._worker_loop, args=(name, vehicle),
                name=name, daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _make_vehicle(self, name: str):
        if self.mode == "process":
            return _ProcessVehicle(self._db_path, name)
        return _ThreadVehicle(self._local_runner, name)

    def _worker_loop(self, name: str, vehicle) -> None:
        try:
            while True:
                job = self.queue.take()
                if job is None:
                    return

                def run(timeout, _job=job):
                    return vehicle.run(
                        _job.spec.kind, _job.spec.params,
                        _job.attempts, timeout,
                    )

                job.worker = name
                self._dispatch(job, run)
        finally:
            vehicle.close()

    def stop(self, *, timeout: float = 5.0) -> None:
        """Close the queue and join every worker (drains ready jobs)."""
        self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        self._started = False

    def alive(self) -> int:
        return sum(t.is_alive() for t in self._threads)
