"""The worker pool: N workers draining the job queue concurrently.

Each worker is a supervisor thread that owns one *execution vehicle* —
the thing that actually runs a handler under a wall-clock budget:

* ``mode="thread"`` — a private single-slot thread executor.  Cheap,
  shares the service's in-process repository (per-thread connections),
  and works for ``:memory:`` databases.  A timed-out handler is
  abandoned (its thread parks until it returns) and the slot is rebuilt,
  so the worker itself never wedges.
* ``mode="process"`` — a dedicated child process driven over a pipe.
  True isolation: a timed-out or crashed handler is killed and the
  child respawned.  Requires a file-backed repository (children open
  their own connections — read-only snapshots unless the kind writes).

The supervisor thread is where the service's dispatch callback runs
(cache probe, retry accounting, telemetry); vehicles only execute
handlers.  That split keeps all queue/cache state in one process no
matter which vehicle is in play.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
import time
from typing import Any, Callable

from ..observe.context import make_span, new_span_id
from .jobs import JobQueue, TransientJobError

__all__ = ["ExecutionTimeout", "WorkerPool"]

#: How many handler-side spans one job may ship back over the pipe.
MAX_CHILD_SPANS = 512


class ExecutionTimeout(Exception):
    """A handler exceeded its wall-clock budget."""


class _ThreadVehicle:
    """Runs handlers on a private single-slot executor with a deadline."""

    def __init__(self, local_runner: Callable[..., dict[str, Any]],
                 name: str) -> None:
        self._runner = local_runner
        self._name = name
        #: Executor rebuilds after timeouts (the worker-churn signal).
        self.respawns = 0
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"{name}-exec"
        )

    def run(self, kind: str, params: dict[str, Any], attempt: int,
            timeout: float | None, *, trace: dict | None = None,
            span_sink: list | None = None) -> dict[str, Any]:
        future = self._pool.submit(self._invoke, kind, params, attempt,
                                   trace, span_sink)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            # The runaway thread is abandoned (daemonic; parks until its
            # handler returns) and the slot rebuilt so this worker stays
            # responsive.
            self.respawns += 1
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{self._name}-exec"
            )
            raise ExecutionTimeout(
                f"execution exceeded {timeout:.3f}s (thread mode)"
            ) from None

    def _invoke(self, kind: str, params: dict[str, Any], attempt: int,
                trace: dict | None, sink: list | None) -> dict[str, Any]:
        if trace is None:
            return self._runner(kind, params, attempt, self._name)
        start = time.time()
        status = "ok"
        try:
            return self._runner(kind, params, attempt, self._name)
        except BaseException:
            status = "error"
            raise
        finally:
            if sink is not None:
                sink.append(make_span(
                    trace["trace_id"], "serve.handler",
                    start, time.time(),
                    parent_id=trace.get("parent_span_id"),
                    process=self._name,
                    kind=kind, attempt=attempt, status=status,
                ))

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


def _tracer_timeline(tracer, trace: dict, process: str) -> list[dict]:
    """Convert a child tracer's finished spans to cross-process timeline
    spans: int ids → fresh hex ids, perf-counter offsets → the shared
    wall clock (``tracer.epoch + offset``), roots → the exec span the
    service created for this attempt.  Past :data:`MAX_CHILD_SPANS` the
    longest spans win and dropped parents re-parent to the nearest kept
    ancestor, so the shipped set never contains an orphan."""
    records = tracer.finished()
    dropped = 0
    keep = records
    if len(records) > MAX_CHILD_SPANS:
        keep = sorted(records, key=lambda r: -r.wall)[:MAX_CHILD_SPANS]
        dropped = len(records) - len(keep)
    by_id = {r.span_id: r for r in records}
    kept_ids = {r.span_id for r in keep}
    hex_of = {r.span_id: new_span_id() for r in keep}
    fallback_parent = trace.get("parent_span_id")

    def parent_hex(record):
        parent = record.parent_id
        while parent is not None and parent not in kept_ids:
            parent = by_id[parent].parent_id if parent in by_id else None
        return hex_of[parent] if parent is not None else fallback_parent

    spans: list[dict] = []
    for r in keep:
        start = tracer.epoch + r.start
        span = make_span(
            trace["trace_id"], r.name, start, start + r.wall,
            parent_id=parent_hex(r), process=process,
            span_id=hex_of[r.span_id],
            cpu_ms=round(r.cpu * 1e3, 3), status=r.status,
        )
        if r.error:
            span["attrs"]["error"] = r.error
        for key, value in r.attributes.items():
            if key not in span["attrs"] and (
                    value is None or isinstance(value, (str, int, float,
                                                        bool))):
                span["attrs"][key] = value
        spans.append(span)
    if dropped and spans:
        spans[0]["attrs"]["dropped_spans"] = dropped
    return spans


def _process_worker_main(conn, db_path: str, name: str) -> None:
    """Child-process loop: open own connections, run handlers, reply.

    A message carrying a trace context (4th element) makes the child run
    a real, fresh :class:`~repro.observe.tracer.Tracer` around the
    handler — the resulting spans ship back as the reply's 4th element
    and stitch under the service's exec span.  The pre-trace 3-tuple
    wire shapes stay accepted in both directions.
    """
    from .. import observe
    from ..perfdmf import PerfDMF
    from .handlers import JobContext, resolve_kind

    db_rw = None
    db_ro = None
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            kind_name, params, attempt = msg[0], msg[1], msg[2]
            trace = msg[3] if len(msg) > 3 else None
            tracer = observe.enable(fresh=True) if trace else None
            status, payload, reason = "ok", None, None
            try:
                kind = resolve_kind(kind_name)
                _, writes = kind.effective_flags(params)
                if writes:
                    if db_rw is None:
                        db_rw = PerfDMF(db_path)
                    db = db_rw
                else:
                    if db_ro is None:
                        db_ro = PerfDMF(db_path, read_only=True)
                    db = db_ro
                ctx = JobContext(db=db, worker=name, attempt=attempt)
                if tracer is not None:
                    with tracer.span("serve.handler", kind=kind_name,
                                     attempt=attempt):
                        payload = kind.run(ctx, params)
                else:
                    payload = kind.run(ctx, params)
            except TransientJobError as exc:
                status, payload = "transient", str(exc)
                reason = getattr(exc, "reason", None)
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                status, payload = "error", f"{type(exc).__name__}: {exc}"
                reason = getattr(exc, "reason", None)
            if tracer is not None:
                spans = _tracer_timeline(tracer, trace, name)
                observe.disable()
                conn.send((status, payload, reason, spans))
            else:
                conn.send((status, payload, reason))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        for db in (db_rw, db_ro):
            if db is not None:
                db.close()


def _preload_handler_modules() -> None:
    """Import everything handlers lazily need *before* forking children.

    A fork taken while another thread is mid-import leaves the module's
    import lock held by a thread that does not exist in the child — the
    child then deadlocks on its first lazy ``from ..knowledge import``.
    Fully-initialized modules short-circuit in ``sys.modules`` without
    touching the lock, so eager pre-fork imports make child-side lazy
    imports safe.
    """
    import importlib

    for mod in ("repro.knowledge", "repro.workflows", "repro.regress",
                "repro.core.script"):
        importlib.import_module(mod)


class _ProcessVehicle:
    """Drives one dedicated child process over a pipe; kills on timeout."""

    def __init__(self, db_path: str, name: str) -> None:
        if "mode=memory" in db_path:
            raise ValueError(
                "process workers need a file-backed repository "
                "(in-memory databases are per-process)"
            )
        self._db_path = db_path
        self._name = name
        # fork is the fast path on Linux; spawn keeps macOS/Windows working.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._proc = None
        self._conn = None
        #: Child processes re-forked after a kill or crash.
        self.respawns = 0
        self._spawn()

    def _spawn(self) -> None:
        if self._proc is not None:
            self.respawns += 1
        self._conn, child_conn = self._ctx.Pipe()
        self._proc = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._db_path, self._name),
            daemon=True,
            name=self._name,
        )
        self._proc.start()
        child_conn.close()

    def run(self, kind: str, params: dict[str, Any], attempt: int,
            timeout: float | None, *, trace: dict | None = None,
            span_sink: list | None = None) -> dict[str, Any]:
        if self._proc is None or not self._proc.is_alive():
            self._spawn()
        self._conn.send((kind, params, attempt, trace))
        if not self._conn.poll(timeout):
            self._kill()
            self._spawn()
            raise ExecutionTimeout(
                f"execution exceeded {timeout:.3f}s (worker process killed)"
            )
        try:
            msg = self._conn.recv()
        except EOFError:
            self._spawn()
            raise TransientJobError(
                f"worker process {self._name} died mid-job"
            ) from None
        # (status, payload) pre-reason wire shape still accepted.
        status, payload = msg[0], msg[1]
        reason = msg[2] if len(msg) > 2 else None
        if len(msg) > 3 and msg[3] and span_sink is not None:
            span_sink.extend(msg[3])
        if status == "ok":
            return payload
        if status == "transient":
            raise TransientJobError(payload, reason=reason)
        err = RuntimeError(payload)
        err.reason = reason
        raise err

    def _kill(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=1.0)
        if self._conn is not None:
            self._conn.close()

    def close(self) -> None:
        try:
            if self._proc is not None and self._proc.is_alive():
                self._conn.send(None)
                self._proc.join(timeout=1.0)
        except (BrokenPipeError, OSError):  # pragma: no cover - teardown
            pass
        self._kill()


class WorkerPool:
    """N supervisor threads, each draining the queue through a vehicle.

    Parameters
    ----------
    queue:
        The :class:`~repro.serve.jobs.JobQueue` to drain.
    dispatch:
        ``dispatch(job, run)`` — the service callback executed on the
        supervisor thread.  ``run(timeout)`` executes the job's handler
        in the vehicle and returns its payload (raising
        :class:`ExecutionTimeout` / :class:`TransientJobError` / the
        handler's own error).
    local_runner:
        ``(kind, params, attempt, worker) -> payload``; required for
        thread mode, where handlers run in this process.
    db_path:
        Repository file; required for process mode.
    """

    def __init__(
        self,
        queue: JobQueue,
        dispatch: Callable,
        *,
        workers: int = 4,
        mode: str = "thread",
        local_runner: Callable[..., dict[str, Any]] | None = None,
        db_path: str | None = None,
        name_prefix: str = "worker",
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker mode {mode!r}")
        if mode == "thread" and local_runner is None:
            raise ValueError("thread mode needs a local_runner")
        if mode == "process" and not db_path:
            raise ValueError("process mode needs a db_path")
        self.queue = queue
        self.mode = mode
        self.workers = workers
        self._dispatch = dispatch
        self._local_runner = local_runner
        self._db_path = db_path
        self._name_prefix = name_prefix
        self._threads: list[threading.Thread] = []
        self._vehicles: list = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.mode == "process":
            # Fork the initial children here, sequentially, on the caller's
            # thread — before any supervisor (or service) thread can be
            # mid-import or mid-lock — and preload the analysis modules so
            # later respawns (which do fork from supervisor threads) find
            # every lazy import already satisfied.
            _preload_handler_modules()
        for i in range(self.workers):
            name = f"{self._name_prefix}-{i}"
            vehicle = self._make_vehicle(name)
            self._vehicles.append(vehicle)
            t = threading.Thread(
                target=self._worker_loop, args=(name, vehicle),
                name=name, daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _make_vehicle(self, name: str):
        if self.mode == "process":
            return _ProcessVehicle(self._db_path, name)
        return _ThreadVehicle(self._local_runner, name)

    def _worker_loop(self, name: str, vehicle) -> None:
        try:
            while True:
                job = self.queue.take()
                if job is None:
                    return

                def run(timeout, trace=None, span_sink=None, _job=job):
                    return vehicle.run(
                        _job.spec.kind, _job.spec.params,
                        _job.attempts, timeout,
                        trace=trace, span_sink=span_sink,
                    )

                job.worker = name
                self._dispatch(job, run)
        finally:
            vehicle.close()

    def stop(self, *, timeout: float = 5.0) -> None:
        """Close the queue and join every worker (drains ready jobs)."""
        self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        self._started = False

    def alive(self) -> int:
        return sum(t.is_alive() for t in self._threads)

    def respawns(self) -> int:
        """Vehicle respawns across the pool (killed children, rebuilt
        executors) — the worker-churn trend input."""
        return sum(getattr(v, "respawns", 0) for v in self._vehicles)
