"""Jobs and the priority queue between clients and the worker pool.

A :class:`Job` is one named analysis request (``diagnose``, ``compare``,
``regress-check``, ...) travelling through the service: submitted,
queued by priority, executed by a worker (possibly several times, for
transient failures), and finished with a JSON-able result or an error.

:class:`JobQueue` is deliberately small but production-shaped:

* **priorities** — higher ``priority`` dequeues first; equal priorities
  are FIFO, so a stream of same-priority jobs cannot starve each other;
* **bounded depth with backpressure** — ``put`` on a full queue raises
  :class:`QueueFull` (or blocks up to a deadline), pushing load shedding
  to the edge instead of growing an unbounded backlog;
* **delayed entries** — retry-with-backoff re-queues a job that becomes
  eligible only at ``now + delay``; ready jobs never wait behind them;
* **clean shutdown** — ``close()`` wakes every blocked consumer.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "JobSpec",
    "QUEUED",
    "QueueClosed",
    "QueueFull",
    "RUNNING",
    "TIMEOUT",
    "TERMINAL_STATES",
    "TransientJobError",
]

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})


class QueueFull(Exception):
    """Backpressure signal: the queue is at its bounded depth."""


class QueueClosed(Exception):
    """The queue is shut down; no further submissions are accepted."""


class TransientJobError(Exception):
    """A handler failure worth retrying (lock contention, flaky I/O...).

    Any other exception from a handler fails the job immediately.
    ``reason`` optionally carries a structured (JSON-able) account of the
    failure, surfaced as ``Job.failure["reason"]``."""

    def __init__(self, message: str = "", *, reason: dict | None = None):
        super().__init__(message)
        self.reason = dict(reason) if reason else None


@dataclass(frozen=True)
class JobSpec:
    """The immutable description of one analysis request."""

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    #: Per-job execution wall-clock budget, seconds (None = pool default).
    timeout: float | None = None
    #: How many times a transient failure is re-queued.
    max_retries: int = 2
    #: First retry delay, seconds; doubles per attempt.
    backoff: float = 0.05


@dataclass
class Job:
    """One request's mutable runtime state (owned by the service)."""

    id: int
    spec: JobSpec
    status: str = QUEUED
    attempts: int = 0
    result: Any = None
    error: str | None = None
    #: Structured failure record for FAILED/TIMEOUT jobs:
    #: ``{"type", "message", "transient", "attempts"[, "reason"]}``.
    failure: dict[str, Any] | None = None
    cache_hit: bool = False
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Seconds spent queued before the first execution began.
    queue_wait: float | None = None
    #: Seconds of the (final) execution attempt.
    exec_seconds: float | None = None
    worker: str | None = None
    #: Distributed-trace identity (None when the service runs untraced).
    trace_id: str | None = None
    #: The submitting client's span this job's root hangs under.
    trace_parent: str | None = None
    #: Span id of this job's root ``serve.job`` span.
    root_span_id: str | None = None
    #: Wall-clock (``time.time``) submission instant — the shared-clock
    #: anchor that lets spans from other processes align with ours.
    submitted_wall: float = field(default_factory=time.time)
    finished_wall: float | None = None
    #: Stitched timeline spans (``observe.context.make_span`` dicts)
    #: accumulated across client, service, and worker processes.
    spans: list[dict[str, Any]] = field(default_factory=list, repr=False)
    spans_dropped: int = 0
    #: ``{"status", "ts", "span_id"}`` per state transition — explicit
    #: stitch points, no timestamp-matching heuristics needed.
    transitions: list[dict[str, Any]] = field(default_factory=list)
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    #: Per-job ceiling on stitched spans (a chatty handler cannot blow
    #: up the service's memory; the drop count is reported instead).
    MAX_SPANS = 1000

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self.done_event.wait(timeout)

    def transition(self, status: str, span_id: str | None = None) -> None:
        """Record a state transition with the span active at that point."""
        self.transitions.append({
            "status": status,
            "ts": time.time(),
            "span_id": span_id,
        })

    def add_spans(self, spans) -> None:
        """Append timeline spans, honouring :data:`MAX_SPANS`."""
        for span in spans:
            if len(self.spans) >= self.MAX_SPANS:
                self.spans_dropped += 1
            else:
                self.spans.append(span)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot (what ``serve status`` prints)."""
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "params": self.spec.params,
            "priority": self.spec.priority,
            "status": self.status,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "queue_wait": self.queue_wait,
            "exec_seconds": self.exec_seconds,
            "worker": self.worker,
            "trace_id": self.trace_id,
            "root_span_id": self.root_span_id,
            "transitions": list(self.transitions),
            "error": self.error,
            "failure": self.failure,
            "result": self.result,
        }


class JobQueue:
    """Bounded priority queue with delayed (retry) entries.

    ``maxsize <= 0`` means unbounded.  Retries re-entering through
    :meth:`put_retry` are exempt from the depth bound: the job already
    got past admission once, and refusing the retry would wedge it.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self.maxsize = maxsize
        self._cond = threading.Condition()
        #: Ready min-heap: (-priority, seq, job).
        self._ready: list[tuple[int, int, Job]] = []
        #: Delayed min-heap: (not_before, seq, job).
        self._delayed: list[tuple[float, int, Job]] = []
        self._seq = itertools.count()
        self._closed = False
        # Cumulative telemetry (the service folds this into `serve stats`).
        self.enqueued = 0
        self.rejected = 0
        self.retried = 0
        self.high_water = 0

    # -- producer side ----------------------------------------------------
    def put(self, job: Job, *, block: bool = False,
            timeout: float | None = None) -> None:
        """Admit a new job; full queue ⇒ :class:`QueueFull` (backpressure).

        With ``block=True`` the caller waits up to ``timeout`` seconds for
        a slot before the backpressure signal fires.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise QueueClosed("queue is closed")
                if self.maxsize <= 0 or self.depth() < self.maxsize:
                    break
                if not block:
                    self.rejected += 1
                    raise QueueFull(
                        f"queue depth {self.depth()} at bound {self.maxsize}"
                    )
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self.rejected += 1
                    raise QueueFull(
                        f"queue depth {self.depth()} at bound {self.maxsize} "
                        f"(waited {timeout:.3f}s)"
                    )
                self._cond.wait(remaining)
            self._push(job)

    def put_retry(self, job: Job, *, delay: float = 0.0) -> None:
        """Re-queue a job after a transient failure, eligible at
        ``now + delay``.  Exempt from the depth bound (see class doc)."""
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            self.retried += 1
            if delay > 0:
                heapq.heappush(
                    self._delayed,
                    (time.monotonic() + delay, next(self._seq), job),
                )
                self.high_water = max(self.high_water, self.depth())
                self._cond.notify()
            else:
                self._push(job)

    def _push(self, job: Job) -> None:
        heapq.heappush(self._ready, (-job.spec.priority, next(self._seq), job))
        self.enqueued += 1
        self.high_water = max(self.high_water, self.depth())
        self._cond.notify()

    # -- consumer side ----------------------------------------------------
    def take(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority ready job, blocking up to ``timeout``.

        Returns ``None`` on timeout or once the queue is closed and
        drained — the worker-loop exit signal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                self._promote_due()
                if self._ready:
                    _, _, job = heapq.heappop(self._ready)
                    self._cond.notify()  # a slot freed for blocked putters
                    return job
                if self._closed and not self._delayed:
                    return None
                wait = None if deadline is None \
                    else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return None
                if self._delayed:
                    until_due = self._delayed[0][0] - time.monotonic()
                    wait = until_due if wait is None else min(wait, until_due)
                    wait = max(wait, 0.0)
                self._cond.wait(wait)

    def _promote_due(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, job = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (-job.spec.priority, seq, job))

    # -- introspection / shutdown ----------------------------------------
    def depth(self) -> int:
        """Jobs currently queued (ready + delayed)."""
        return len(self._ready) + len(self._delayed)

    def close(self) -> None:
        """Refuse new work and wake every blocked producer/consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "depth": self.depth(),
                "maxsize": self.maxsize,
                "enqueued": self.enqueued,
                "rejected": self.rejected,
                "retried": self.retried,
                "high_water": self.high_water,
                "closed": self._closed,
            }
