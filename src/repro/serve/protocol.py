"""JSON-lines socket protocol: the service behind a local endpoint.

One request per line, one response per line — trivially scriptable
(``nc``/``socat`` work) and language-neutral.  Requests are objects with
an ``op`` and op-specific fields; responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.  The connection is sequential
(request/response in order); concurrency comes from opening more
connections — each gets its own handler thread — and from the service's
own queue and pool behind them.

Ops::

    {"op": "ping"}
    {"op": "submit", "kind": "diagnose", "params": {...},
     "priority": 0, "timeout": 30.0, "block": false}      → {"job": {...}}
    {"op": "submit_many", "jobs": [{"kind": ..., "params": ...}, ...],
     "options": {...}}                                    → {"jobs": [...]}
    {"op": "status", "id": 7}                             → {"job": {...}}
    {"op": "status"}                                      → {"jobs": [...]}
    {"op": "wait", "id": 7, "timeout": 60.0}              → {"job": {...}}
    {"op": "stats"}                                       → {"stats": {...}}
    {"op": "metrics"}              → {"text": "...", "content_type": ...}
    {"op": "health"}                                    → {"health": {...}}
    {"op": "explain_job", "id": 7}                     → {"explain": {...}}
    {"op": "diagnose"}                  → {"recommendations": [...], ...}
    {"op": "shutdown"}

``submit`` / ``submit_many`` accept an optional ``trace`` field — a
``{"trace_id", "parent_span_id"}`` object or a W3C ``traceparent``
string — propagating the caller's distributed-trace context onto the
job (see :mod:`repro.observe.context`).

Endpoints are strings: ``unix:/path/to.sock`` (AF_UNIX) or
``tcp:HOST:PORT`` (loopback TCP, for platforms without unix sockets).
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Any

from .. import observe
from ..core.result import AnalysisError
from ..observe.exposition import CONTENT_TYPE
from .jobs import QueueClosed, QueueFull, TERMINAL_STATES
from .service import AnalysisService

__all__ = ["ServeServer", "connect_endpoint", "parse_endpoint"]

#: Protocol hard limit: one request line (submit params included).
MAX_LINE = 4 * 1024 * 1024


def parse_endpoint(endpoint: str) -> tuple[str, Any]:
    """``unix:/path`` / ``tcp:host:port`` → (family-tag, address)."""
    if endpoint.startswith("unix:"):
        path = endpoint[len("unix:"):]
        if not path:
            raise AnalysisError(f"empty unix endpoint in {endpoint!r}")
        return "unix", path
    if endpoint.startswith("tcp:"):
        host, _, port = endpoint[len("tcp:"):].rpartition(":")
        if not host or not port.isdigit():
            raise AnalysisError(
                f"tcp endpoint must be tcp:HOST:PORT, got {endpoint!r}"
            )
        return "tcp", (host, int(port))
    raise AnalysisError(
        f"endpoint must start with unix: or tcp:, got {endpoint!r}"
    )


def connect_endpoint(endpoint: str, timeout: float | None = 10.0):
    """Open a client socket to a served endpoint."""
    family, addr = parse_endpoint(endpoint)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(addr)
    return sock


class ServeServer:
    """Accept loop + per-connection handler threads over one service."""

    def __init__(self, service: AnalysisService, endpoint: str) -> None:
        self.service = service
        self.endpoint = endpoint
        self._family, self._addr = parse_endpoint(endpoint)
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._shutdown = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServeServer":
        if self._sock is not None:
            return self
        if self._family == "unix":
            if os.path.exists(self._addr):
                os.unlink(self._addr)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(self._addr)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(self._addr)
            # Port 0 means "pick one"; expose what the OS chose.
            host, port = sock.getsockname()[:2]
            self._addr = (host, port)
            self.endpoint = f"tcp:{host}:{port}"
        sock.listen(16)
        sock.settimeout(0.2)  # so the accept loop notices shutdown
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        observe.event("serve.listen", endpoint=self.endpoint)
        return self

    def stop(self) -> None:
        self._shutdown.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._family == "unix" and os.path.exists(self._addr):
            os.unlink(self._addr)

    def serve_forever(self) -> None:
        """Block until a client sends ``shutdown`` (or interrupt)."""
        if self._sock is None:
            self.start()
        try:
            self._shutdown.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.stop()

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._shutdown.is_set()

    # -- connection handling ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:  # socket closed under us during stop()
                return
            threading.Thread(
                target=self._client_loop, args=(conn,),
                name="serve-conn", daemon=True,
            ).start()

    def _client_loop(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        buf = b""
        with conn:
            while not self._shutdown.is_set():
                try:
                    chunk = conn.recv(65536)
                except OSError:
                    return
                if not chunk:
                    return
                buf += chunk
                if len(buf) > MAX_LINE:
                    self._send(conn, {
                        "ok": False,
                        "error": f"request exceeds {MAX_LINE} bytes",
                    })
                    return
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line.strip():
                        continue
                    response = self._handle_line(line)
                    if not self._send(conn, response):
                        return

    @staticmethod
    def _send(conn: socket.socket, payload: dict) -> bool:
        try:
            conn.sendall(json.dumps(payload, default=str).encode() + b"\n")
            return True
        except OSError:
            return False

    # -- request dispatch --------------------------------------------------
    def _handle_line(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return {"ok": False, "error": f"bad request: {exc}"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return {"ok": True, **handler(request)}
        except (AnalysisError, QueueFull, QueueClosed, ValueError) as exc:
            return {"ok": False, "error": str(exc),
                    "kind": type(exc).__name__}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}",
                    "kind": "internal"}

    def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "endpoint": self.endpoint}

    def _op_submit(self, request: dict) -> dict:
        job = self.service.submit(
            request["kind"],
            request.get("params") or {},
            priority=int(request.get("priority", 0)),
            timeout=request.get("timeout"),
            max_retries=request.get("max_retries"),
            block=bool(request.get("block", False)),
            queue_timeout=request.get("queue_timeout"),
            trace=request.get("trace"),
        )
        return {"job": job.to_dict()}

    def _op_submit_many(self, request: dict) -> dict:
        """Batched admission: N submissions, one round trip.  Per-entry
        failures come back as ``{"error": ...}`` rows; the batch itself
        only fails on a malformed request."""
        jobs = request.get("jobs")
        if not isinstance(jobs, list):
            raise ValueError("submit_many needs a 'jobs' list")
        common = request.get("options") or {}
        out = []
        for entry in jobs:
            if not isinstance(entry, dict) or "kind" not in entry:
                out.append({"error": "entry must be an object with 'kind'"})
                continue
            opts = {**common, **{k: v for k, v in entry.items()
                                 if k not in ("kind", "params")}}
            try:
                job = self.service.submit(
                    entry["kind"],
                    entry.get("params") or {},
                    priority=int(opts.get("priority", 0)),
                    timeout=opts.get("timeout"),
                    max_retries=opts.get("max_retries"),
                    block=bool(opts.get("block", False)),
                    queue_timeout=opts.get("queue_timeout"),
                    trace=opts.get("trace"),
                )
                out.append(job.to_dict())
            except Exception as exc:  # noqa: BLE001 - per-entry boundary
                out.append({"error": f"{type(exc).__name__}: {exc}"})
        return {"jobs": out}

    def _op_status(self, request: dict) -> dict:
        if "id" in request and request["id"] is not None:
            return {"job": self.service.job(int(request["id"])).to_dict()}
        jobs = self.service.jobs()
        return {
            "jobs": [j.to_dict() for j in jobs],
            "pending": sum(j.status not in TERMINAL_STATES for j in jobs),
        }

    def _op_wait(self, request: dict) -> dict:
        job = self.service.wait(int(request["id"]),
                                timeout=request.get("timeout"))
        return {"job": job.to_dict(), "done": job.done}

    def _op_stats(self, request: dict) -> dict:
        return {"stats": self.service.stats()}

    def _op_metrics(self, request: dict) -> dict:
        return {"text": self.service.metrics_text(),
                "content_type": CONTENT_TYPE}

    def _op_health(self, request: dict) -> dict:
        return {"health": self.service.health()}

    def _op_explain_job(self, request: dict) -> dict:
        return {"explain": self.service.explain_job(int(request["id"]))}

    def _op_diagnose(self, request: dict) -> dict:
        from ..knowledge import recommendations_of, render_report

        harness = self.service.diagnose_service()
        return {
            "recommendations": [
                {
                    "category": rec.category,
                    "event": rec.event,
                    "severity": rec.severity,
                    "message": rec.message,
                }
                for rec in recommendations_of(harness)
            ],
            "report": render_report(harness, title="Service diagnosis"),
        }

    def _op_shutdown(self, request: dict) -> dict:
        # Flip the flag; serve_forever's finally does the teardown.
        self._shutdown.set()
        return {"stopping": True}
