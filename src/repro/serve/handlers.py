"""Named analysis jobs the worker pool can execute.

Each job kind is a function ``handler(ctx, **params) -> dict`` registered
with :func:`job_kind`.  Handlers receive a :class:`JobContext` whose
``db`` is a read-only snapshot view of the repository unless the kind
declares ``writes=True`` — so the common analysis path physically cannot
corrupt the store — and must return a JSON-able payload (it travels over
the local-socket protocol and into the result cache).

Cache metadata lives on the registration: ``cacheable`` kinds declare
``trial_refs`` — which parameters name the stored trials the job reads —
and the service folds those trials' content hashes into the cache key.

Raise :class:`~repro.serve.jobs.TransientJobError` for failures worth a
retry-with-backoff (lock contention, flaky I/O); anything else fails the
job immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.result import AnalysisError
from ..perfdmf import PerfDMF
from .jobs import TransientJobError

__all__ = [
    "HANDLERS",
    "JobContext",
    "JobKind",
    "job_kind",
    "resolve_kind",
]


@dataclass
class JobContext:
    """What a handler gets to work with."""

    #: Repository view: read-only snapshot unless the kind writes.
    db: PerfDMF
    #: The worker executing this job ("worker-2", "proc-1", ...).
    worker: str = "worker"
    #: Which execution attempt this is (1-based; >1 means a retry).
    attempt: int = 1


@dataclass(frozen=True)
class JobKind:
    """Registration record for one named analysis job."""

    name: str
    fn: Callable[..., dict[str, Any]]
    #: Whether results may be served from the content-addressed cache.
    cacheable: bool = False
    #: Whether the handler mutates the repository (gets the rw handle).
    writes: bool = False
    #: Parameter-name triples (app_key, exp_key, trial_key) identifying
    #: the stored trials the job reads — their content hashes join the
    #: cache key.
    trial_refs: tuple[tuple[str, str, str], ...] = ()
    #: Optional ``params -> (cacheable, writes)`` override for kinds whose
    #: footprint depends on their parameters (e.g. a storing trace run).
    flags: Callable[[dict[str, Any]], tuple[bool, bool]] | None = None

    def effective_flags(self, params: dict[str, Any]) -> tuple[bool, bool]:
        """(cacheable, writes) for this submission."""
        if self.flags is not None:
            return self.flags(params)
        return self.cacheable, self.writes

    def run(self, ctx: JobContext, params: dict[str, Any]) -> dict[str, Any]:
        return self.fn(ctx, **params)


HANDLERS: dict[str, JobKind] = {}


def job_kind(
    name: str,
    *,
    cacheable: bool = False,
    writes: bool = False,
    trial_refs: tuple[tuple[str, str, str], ...] = (),
    flags: Callable[[dict[str, Any]], tuple[bool, bool]] | None = None,
):
    """Decorator registering a handler under ``name``."""

    def register(fn):
        HANDLERS[name] = JobKind(
            name=name, fn=fn, cacheable=cacheable, writes=writes,
            trial_refs=trial_refs, flags=flags,
        )
        return fn

    return register


def resolve_kind(name: str) -> JobKind:
    try:
        return HANDLERS[name]
    except KeyError:
        raise AnalysisError(
            f"unknown job kind {name!r}; available: {sorted(HANDLERS)}"
        ) from None


def _recommendations_payload(harness) -> list[dict[str, Any]]:
    from ..knowledge import recommendations_of

    return [
        {
            "category": rec.category,
            "event": rec.event,
            "severity": rec.severity,
            "message": rec.message,
        }
        for rec in recommendations_of(harness)
    ]


@job_kind("diagnose", cacheable=True,
          trial_refs=(("app", "exp", "trial"),))
def diagnose_job(
    ctx: JobContext,
    *,
    app: str,
    exp: str,
    trial: str,
    script: str = "genidlest",
    indexing: bool = True,
) -> dict[str, Any]:
    """Knowledge-based diagnosis of one stored trial (the CLI's
    ``diagnose`` verb as a service job).

    ``indexing=False`` runs the naive (unindexed) rule matcher — same
    diagnoses, useful for differential debugging of the engine itself.
    """
    from ..knowledge import render_report
    from ..knowledge.rulebase import diagnose_genidlest, diagnose_load_balance

    loaded = ctx.db.load_trial(app, exp, trial)
    diagnose = (
        diagnose_load_balance if script == "load-balance"
        else diagnose_genidlest
    )
    harness = diagnose(loaded, indexing=indexing)
    return {
        "trial": trial,
        "script": script,
        "recommendations": _recommendations_payload(harness),
        "firings": len(harness.engine.trace),
        "report": render_report(
            harness, title=f"Diagnosis of {app}/{trial}"
        ),
    }


@job_kind("compare", cacheable=True,
          trial_refs=(("app", "exp", "trial_a"), ("app", "exp", "trial_b")))
def compare_job(
    ctx: JobContext,
    *,
    app: str,
    exp: str,
    trial_a: str,
    trial_b: str,
    metric: str = "TIME",
) -> dict[str, Any]:
    """§III.B comparison: per-event inclusive ratio of two stored trials."""
    from ..core.script import (
        BasicStatisticsOperation,
        TrialRatioOperation,
        TrialResult,
    )

    a = ctx.db.load_trial(app, exp, trial_a)
    b = ctx.db.load_trial(app, exp, trial_b)
    mean_a = BasicStatisticsOperation(TrialResult(a)).mean()
    mean_b = BasicStatisticsOperation(TrialResult(b)).mean()
    ratio = TrialRatioOperation(mean_a, mean_b).process_data()[0]
    if not ratio.has_metric(metric):
        raise AnalysisError(
            f"no shared metric {metric!r}; have {ratio.metrics}"
        )
    rows = sorted(
        (
            (float(ratio.event_row(e, metric, inclusive=True)[0]), e)
            for e in ratio.events
        ),
        reverse=True,
    )
    return {
        "trial_a": trial_a,
        "trial_b": trial_b,
        "metric": metric,
        "ratios": [{"event": event, "ratio": value} for value, event in rows],
    }


@job_kind("regress-check", writes=True,
          trial_refs=(("app", "exp", "trial"),))
def regress_check_job(
    ctx: JobContext,
    *,
    app: str,
    exp: str,
    trial: str | None = None,
    metric: str | None = None,
    threshold: float | None = None,
    alpha: float | None = None,
    promote: bool = False,
    diagnose: bool = True,
) -> dict[str, Any]:
    """Gate a stored trial against its baseline (the regression sentinel).

    Not cacheable: the sentinel reads — and with ``promote`` moves — the
    baseline registry, which is state outside the trial content hashes.
    """
    from ..regress import ThresholdPolicy, check

    kw: dict[str, Any] = {}
    if metric:
        kw["metrics"] = (metric,)
    if threshold is not None:
        kw["min_relative_change"] = threshold
    if alpha is not None:
        kw["alpha"] = alpha
    outcome = check(
        ctx.db, app, exp, trial,
        policy=ThresholdPolicy(**kw),
        diagnose=diagnose,
        auto_promote=promote,
    )
    return outcome.to_dict()


def _trace_app_flags(params: dict[str, Any]) -> tuple[bool, bool]:
    storing = bool(params.get("store"))
    return (not storing, storing)


@job_kind("trace-app", cacheable=True, flags=_trace_app_flags)
def trace_app_job(
    ctx: JobContext,
    *,
    app: str = "msa",
    store: bool = False,
    experiment: str = "traced",
    **run_kwargs,
) -> dict[str, Any]:
    """Traced application simulation + timeline diagnosis.

    Reads no stored trials (the simulation is deterministic in its
    parameters), so the cache key is parameters + versions alone.  With
    ``store=True`` the trial and its interval sub-trials are persisted —
    which flips the kind's effective footprint, so storing runs are
    executed uncached against the rw repository.
    """
    from ..workflows import trace_application

    if store:
        result = trace_application(
            app, repository=ctx.db, experiment=experiment, **run_kwargs
        )
    else:
        result = trace_application(app, **run_kwargs)
    return {
        "app": app,
        "trial": result.trial.name,
        "events": len(result.trace),
        "cpus": len(result.trace.cpu_ids()),
        "snapshots": len(result.snapshots),
        "wait_states": len(result.wait_states),
        "stored_trial_id": result.trial_id,
        "interval_trials": len(result.interval_ids),
        "recommendations": _recommendations_payload(result.harness),
    }


def _pipeline_flags(params: dict[str, Any]) -> tuple[bool, bool]:
    # Only the pure-analysis stage is cacheable; anything else (e.g. the
    # regression gate, which stores trials and moves baselines) writes.
    analysis_only = params.get("stage") == "automated_analysis"
    return (analysis_only, not analysis_only)


@job_kind("pipeline", cacheable=True, flags=_pipeline_flags,
          trial_refs=(("app", "exp", "trial"),))
def pipeline_job(
    ctx: JobContext,
    *,
    stage: str,
    app: str,
    exp: str,
    trial: str,
    **stage_kwargs,
) -> dict[str, Any]:
    """Run a named :mod:`repro.workflows` pipeline stage over a stored
    trial (``automated_analysis``, ``regression_gate``, or anything
    registered via ``register_pipeline_stage``)."""
    from ..workflows import pipeline_stage

    fn = pipeline_stage(stage)
    loaded = ctx.db.load_trial(app, exp, trial)
    # Stages re-store the trial when handed a repository; the service
    # already has it, so the pure-analysis stage runs detached.
    repo = None if stage == "automated_analysis" else ctx.db
    result = fn(loaded, repository=repo, application=app, experiment=exp,
                **stage_kwargs)
    payload: dict[str, Any] = {"stage": stage, "trial": trial}
    harness = getattr(result, "harness", None)
    if harness is not None:
        payload["recommendations"] = _recommendations_payload(harness)
    report = getattr(result, "report", None)
    if isinstance(report, str):
        payload["report"] = report
    verdict = getattr(result, "verdict", None)
    if verdict is not None:
        payload["verdict"] = verdict
        payload["exit_code"] = result.exit_code
    return payload


# -- experiment kinds (the repro.experiments orchestrator's jobs) ----------

@job_kind("run-trial", writes=True)
def run_trial_job(
    ctx: JobContext,
    *,
    app: str,
    application: str,
    experiment: str,
    case_key: str,
    rerun: int = 0,
    factors: dict[str, Any] | None = None,
    metric: str = "TIME",
    key_event: str = "main",
    noise: float = 0.0,
    spec: str | None = None,
    code_version: str | None = None,
    rulebase_version: str | None = None,
) -> dict[str, Any]:
    """Execute one case rerun and store its trial.

    The random stream is derived from the case's content address (and
    the rerun index), so the same ``case_key`` always produces the same
    trial bit for bit — the determinism contract the resume model and
    the determinism tests rely on.  Storage uses ``replace=True``: a
    retried rerun that half-completed before a crash is simply
    overwritten with identical content.
    """
    from ..experiments.spec import case_rng, case_seed
    from ..regress.detect import perturb_trial

    factors = dict(factors or {})
    rerun = int(rerun)
    noise = float(noise)
    rng = case_rng(case_key, rerun)
    name = f"{case_key[:12]}_r{rerun}"
    if app == "synthetic":
        from ..experiments.synthetic import run_synthetic_trial

        trial = run_synthetic_trial(
            scale=float(factors.get("scale", 1.0)),
            threads=int(factors.get("threads", 4)),
            imbalance=float(factors.get("imbalance", 0.0)),
            noise=noise,
            rng=rng if noise > 0.0 else None,
            name=name,
        )
    elif app == "msa":
        from ..apps.msa import run_msa_trial

        base = run_msa_trial(
            n_sequences=int(factors.get("sequences", 100)),
            n_threads=int(factors.get("threads", 4)),
            schedule=str(factors.get("schedule", "static")),
            seed=int(factors.get("seed", 0)),
        ).trial
        trial = (
            perturb_trial(base, noise=noise, rng=rng, name=name)
            if noise > 0.0 else base.copy(name)
        )
    elif app == "genidlest":
        from ..apps.genidlest import RIB45, RIB90, RunConfig, run_genidlest

        config = RunConfig(
            case=RIB45 if str(factors.get("case", "90rib")) == "45rib"
            else RIB90,
            version=str(factors.get("version", "openmp")),
            optimized=bool(factors.get("optimized", False)),
            n_procs=int(factors.get("procs", 4)),
            iterations=int(factors.get("iterations", 2)),
        )
        base = run_genidlest(config).trial
        trial = (
            perturb_trial(base, noise=noise, rng=rng, name=name)
            if noise > 0.0 else base.copy(name)
        )
    else:
        raise AnalysisError(f"run-trial: unknown app {app!r}")
    trial.metadata.update({
        "case_key": case_key,
        "rerun": rerun,
        "spec": spec or "",
        "factors": dict(factors),
    })
    from ..version import version_key

    version_key(code_version, rulebase_version).stamp(trial.metadata)
    import sqlite3

    try:
        ctx.db.save_trial(application, experiment, trial, replace=True)
    except sqlite3.OperationalError as exc:
        if "locked" in str(exc) or "busy" in str(exc):
            # Write contention with the orchestrator's bookkeeping (or a
            # sibling worker) — transient by definition, retry-worthy.
            raise TransientJobError(
                f"repository busy storing {name!r}: {exc}",
                reason={"kind": "run-trial", "case_key": case_key,
                        "rerun": rerun, "trial": name},
            ) from None
        raise
    if not trial.has_metric(metric):
        raise AnalysisError(
            f"run-trial: trial has no metric {metric!r} "
            f"(have {trial.metrics})"
        )
    value = float(
        trial.inclusive_array(metric)[trial.event_index(key_event)].mean()
    )
    return {
        "trial": name,
        "case_key": case_key,
        "rerun": rerun,
        "value": value,
        "seed": case_seed(case_key, rerun),
        "content_hash": ctx.db.content_hash(application, experiment, name),
        "worker": ctx.worker,
    }


@job_kind("analyze-case")
def analyze_case_job(
    ctx: JobContext,
    *,
    application: str,
    experiment: str,
    trials: list[str],
    metric: str = "TIME",
    key_event: str = "main",
) -> dict[str, Any]:
    """Collect one converged case: per-run key-metric values plus a
    knowledge-based diagnosis of the first run (against the snapshot
    view — this kind never writes)."""
    from ..knowledge.rulebase import diagnose_load_balance

    if not trials:
        raise AnalysisError("analyze-case: no trials to analyze")
    values = []
    first = None
    for tname in trials:
        trial = ctx.db.load_trial(application, experiment, tname)
        if first is None:
            first = trial
        values.append(float(
            trial.inclusive_array(metric)[trial.event_index(key_event)]
            .mean()
        ))
    harness = diagnose_load_balance(first)
    return {
        "trials": list(trials),
        "metric": metric,
        "key_event": key_event,
        "values": values,
        "recommendations": _recommendations_payload(harness),
        "worker": ctx.worker,
    }


# -- lineage kinds (performance history over the same repository) ----------

@job_kind("lineage-scan", writes=True)
def lineage_scan_job(
    ctx: JobContext,
    *,
    start: str | None = None,
    end: str | None = None,
    application: str | None = None,
    experiment: str | None = None,
    diagnose: bool = True,
) -> dict[str, Any]:
    """Sweep the regression detectors along stored version history.

    Conceptually read-only, but declared ``writes=True``: the lineage
    side tables are ensured on open (a no-op write once they exist) and
    live outside the trial content hashes the cache keys on, so results
    must not be cached either.
    """
    from ..lineage import LineageStore, scan_range
    from ..lineage.facts import diagnose_lineage

    store = LineageStore(ctx.db)
    scan = scan_range(store, start, end,
                      application=application, experiment=experiment)
    payload: dict[str, Any] = {"scan": scan.to_dict(), "worker": ctx.worker}
    if diagnose:
        harness = diagnose_lineage(scan)
        payload["recommendations"] = _recommendations_payload(harness)
    return payload


# -- synthetic kinds (load generation, fault injection, tests) -------------

@job_kind("sleep")
def sleep_job(ctx: JobContext, *, seconds: float = 0.01,
              tag: str | None = None) -> dict[str, Any]:
    """Busy the pool for a bit — load generation for queue/benchmark
    scenarios without touching the repository."""
    seconds = float(seconds)
    if seconds < 0:
        raise AnalysisError(
            f"sleep: seconds must be non-negative, got {seconds}",
            reason={"kind": "sleep", "param": "seconds", "value": seconds},
        )
    time.sleep(seconds)
    return {"slept": seconds, "tag": tag, "worker": ctx.worker}


@job_kind("flaky")
def flaky_job(ctx: JobContext, *, token: str, fail_times: int = 1,
              fail_rate: float | None = None,
              seconds: float = 0.0) -> dict[str, Any]:
    """Fault injection, reproducible from the job's own parameters.

    Two modes, both deterministic functions of ``(token, attempt)`` —
    no process-global state, so thread and process vehicles behave
    identically and a replayed job fails exactly the same way:

    * ``fail_times`` (default) — attempts 1..N raise transiently, then
      the job succeeds; exercises retry-with-backoff end to end.
    * ``fail_rate`` — the attempt fails iff a uniform draw derived from
      ``sha256(token:attempt)`` lands under the rate; a seeded Bernoulli
      fault process for soak scenarios.
    """
    import hashlib

    if seconds:
        time.sleep(float(seconds))
    attempt = ctx.attempt
    if fail_rate is not None:
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        if draw < float(fail_rate):
            raise TransientJobError(
                f"injected fault (draw {draw:.3f} < rate {fail_rate}) "
                f"for {token!r} attempt {attempt}",
                reason={"kind": "flaky", "token": token, "attempt": attempt,
                        "draw": draw, "fail_rate": float(fail_rate)},
            )
    elif attempt <= int(fail_times):
        raise TransientJobError(
            f"injected fault {attempt}/{fail_times} for {token!r}",
            reason={"kind": "flaky", "token": token, "attempt": attempt,
                    "fail_times": int(fail_times)},
        )
    return {"token": token, "attempts": attempt, "worker": ctx.worker}
