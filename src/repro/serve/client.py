"""Thin clients for the analysis service.

Two transports, one surface:

* :class:`Client` — in-process, wrapping an :class:`AnalysisService`
  directly.  For embedding the service in a test harness, a notebook, or
  a long-lived tool.
* :class:`SocketClient` — the same methods over the JSON-lines protocol
  of :mod:`repro.serve.protocol`, for talking to ``repro-perf serve
  start`` in another process.

Both return plain JSON-able dicts (the wire shapes), so code written
against one works against the other; ``submit`` returns the job record
(including its ``id``), and ``run`` is submit-and-wait.

Unless the caller supplies its own ``trace`` option, every submission
mints a fresh :class:`~repro.observe.context.TraceContext`, so each job
carries a distributed trace id end to end by default.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.result import AnalysisError
from ..observe.context import TraceContext
from .protocol import connect_endpoint
from .service import AnalysisService

__all__ = ["Client", "SocketClient"]


def _with_trace(options: dict[str, Any]) -> dict[str, Any]:
    """Mint a trace context unless the caller brought one.  (Tracing is
    disabled service-side via ``ServeConfig(tracing=False)``, not here.)"""
    if "trace" not in options:
        options = {**options, "trace": TraceContext.mint().to_wire()}
    return options


class Client:
    """In-process client over a started :class:`AnalysisService`."""

    def __init__(self, service: AnalysisService) -> None:
        self.service = service

    def ping(self) -> dict[str, Any]:
        return {"pong": True, "endpoint": "in-process"}

    def submit(self, kind: str, params: dict[str, Any] | None = None,
               **options) -> dict[str, Any]:
        return self.service.submit(kind, params,
                                   **_with_trace(options)).to_dict()

    def submit_many(self, jobs: list[dict[str, Any]],
                    **common_options) -> list[dict[str, Any]]:
        """Admit a batch; one entry per request, in order.

        Each entry is ``{"kind": ..., "params": ..., **options}``
        (entry options override ``common_options``).  A rejected entry
        becomes ``{"error": "..."}`` instead of a job record — one bad
        request does not void the rest of the batch.
        """
        out: list[dict[str, Any]] = []
        for req in jobs:
            req = dict(req)
            kind = req.pop("kind")
            params = req.pop("params", None)
            try:
                out.append(self.service.submit(
                    kind, params,
                    **_with_trace({**common_options, **req})).to_dict())
            except Exception as exc:  # noqa: BLE001 - per-entry boundary
                out.append({"error": f"{type(exc).__name__}: {exc}"})
        return out

    def status(self, job_id: int | None = None) -> dict[str, Any]:
        if job_id is not None:
            return self.service.job(job_id).to_dict()
        return {"jobs": [j.to_dict() for j in self.service.jobs()]}

    def wait(self, job_id: int,
             timeout: float | None = None) -> dict[str, Any]:
        return self.service.wait(job_id, timeout=timeout).to_dict()

    def run(self, kind: str, params: dict[str, Any] | None = None,
            *, wait_timeout: float | None = 60.0,
            **options) -> dict[str, Any]:
        """Submit and block for the result record."""
        job = self.service.submit(kind, params, **_with_trace(options))
        job.wait(wait_timeout)
        return job.to_dict()

    def stats(self) -> dict[str, Any]:
        return self.service.stats()

    def metrics(self) -> str:
        """Prometheus text exposition of the service's metrics."""
        return self.service.metrics_text()

    def health(self) -> dict[str, Any]:
        return self.service.health()

    def explain_job(self, job_id: int) -> dict[str, Any]:
        """Where did the job's wall time go?  (See
        :meth:`AnalysisService.explain_job`.)"""
        return self.service.explain_job(job_id)

    def lineage_scan(self, start: str | None = None,
                     end: str | None = None, *,
                     application: str | None = None,
                     experiment: str | None = None,
                     diagnose: bool = True,
                     wait_timeout: float | None = 60.0) -> dict[str, Any]:
        """Run a ``lineage-scan`` job and return its payload."""
        record = self.run("lineage-scan", {
            "start": start, "end": end, "application": application,
            "experiment": experiment, "diagnose": diagnose,
        }, wait_timeout=wait_timeout)
        if record["status"] != "done":
            raise AnalysisError(
                f"lineage-scan {record['status']}: {record.get('error')}"
            )
        return record["result"]

    def close(self) -> None:
        """The service is not ours to stop; nothing to release."""


class SocketClient:
    """JSON-lines client for a served endpoint (``unix:...``/``tcp:...``).

    One socket, sequential request/response; open more clients for
    concurrent submission streams.
    """

    def __init__(self, endpoint: str, *,
                 timeout: float | None = 30.0) -> None:
        self.endpoint = endpoint
        self._sock = connect_endpoint(endpoint, timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    # -- wire --------------------------------------------------------------
    def request(self, op: str, **fields) -> dict[str, Any]:
        """Send one op; raise :class:`AnalysisError` on a protocol error."""
        payload = {"op": op, **fields}
        self._sock.sendall(json.dumps(payload).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise AnalysisError(
                f"connection to {self.endpoint} closed mid-request"
            )
        response = json.loads(line)
        if not response.get("ok"):
            raise AnalysisError(
                response.get("error", "unknown service error")
            )
        response.pop("ok", None)
        return response

    # -- surface (mirrors Client) ------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def submit(self, kind: str, params: dict[str, Any] | None = None,
               **options) -> dict[str, Any]:
        return self.request("submit", kind=kind, params=params or {},
                            **_with_trace(options))["job"]

    def submit_many(self, jobs: list[dict[str, Any]],
                    **common_options) -> list[dict[str, Any]]:
        """Admit a batch in **one round trip** — N individual ``submit``
        calls pay N socket round trips; the orchestrator's fan-out (and
        any script submitting a sweep) pays one.  Entry shape and
        per-entry error semantics match :meth:`Client.submit_many`.

        Each entry gets its **own** minted trace context (one trace per
        job, not one per batch) unless the entry or ``common_options``
        carries a ``trace`` already."""
        if "trace" not in common_options:
            jobs = [entry if "trace" in entry
                    else {**entry, "trace": TraceContext.mint().to_wire()}
                    for entry in jobs]
        return self.request("submit_many", jobs=jobs,
                            options=common_options)["jobs"]

    def status(self, job_id: int | None = None) -> dict[str, Any]:
        if job_id is not None:
            return self.request("status", id=job_id)["job"]
        return self.request("status")

    def wait(self, job_id: int,
             timeout: float | None = None) -> dict[str, Any]:
        return self.request("wait", id=job_id, timeout=timeout)["job"]

    def run(self, kind: str, params: dict[str, Any] | None = None,
            *, wait_timeout: float | None = 60.0,
            **options) -> dict[str, Any]:
        job = self.submit(kind, params, **options)
        if job["status"] in ("done", "failed", "timeout", "cancelled"):
            return job  # cache hit or immediate failure
        return self.wait(job["id"], timeout=wait_timeout)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        return self.request("metrics")["text"]

    def health(self) -> dict[str, Any]:
        return self.request("health")["health"]

    def explain_job(self, job_id: int) -> dict[str, Any]:
        return self.request("explain_job", id=job_id)["explain"]

    def lineage_scan(self, start: str | None = None,
                     end: str | None = None, *,
                     application: str | None = None,
                     experiment: str | None = None,
                     diagnose: bool = True,
                     wait_timeout: float | None = 60.0) -> dict[str, Any]:
        """Run a ``lineage-scan`` job and return its payload."""
        record = self.run("lineage-scan", {
            "start": start, "end": end, "application": application,
            "experiment": experiment, "diagnose": diagnose,
        }, wait_timeout=wait_timeout)
        if record["status"] != "done":
            raise AnalysisError(
                f"lineage-scan {record['status']}: {record.get('error')}"
            )
        return record["result"]

    def diagnose(self) -> dict[str, Any]:
        return self.request("diagnose")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
