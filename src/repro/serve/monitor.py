"""Continuous self-monitoring: the service watches its own vitals.

A one-off ``serve diagnose`` sees a *snapshot* — a saturated queue, a
cold cache — but cannot tell whether things are getting worse.  This
module closes that gap the paper's way: **performance knowledge lives as
data in the repository**.  A :class:`SelfMonitor` thread samples
``AnalysisService.stats()`` on an interval and stores each snapshot as
an ordinary PerfDMF trial under the :data:`SELF_APP` application, so the
service's own history sits next to the application profiles it analyzes.
:func:`service_trend_facts` then reads a window of snapshots back and
asserts *trend* facts — queue latency growing, cache hit rate decaying,
workers respawn-churning — which the ``service-rules`` rulebase turns
into recommendations just like any other degradation.

The module also hosts :func:`render_top`, the text dashboard behind
``repro-perf serve top``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Mapping

from ..perfdmf import PerfDMF, Trial
from ..rules import Fact

__all__ = [
    "SELF_APP",
    "SelfMonitor",
    "diagnose_trends",
    "load_snapshots",
    "render_top",
    "service_trend_facts",
    "stats_to_trial",
]

#: Application name service self-monitoring snapshots are stored under
#: (the observe dogfood bridge uses ``repro.observe``; this is the
#: service's own lane).
SELF_APP = "repro.serve"

#: Default experiment name for monitor snapshots.
DEFAULT_EXPERIMENT = "self-monitor"

#: The metric snapshot values are stored under (they are point-in-time
#: readings, not durations, so TAU's TIME would be a lie).
VALUE_METRIC = "VALUE"

#: Event group for snapshot readings.
STATS_GROUP = "SERVE_STATS"


def _numeric_leaves(obj: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested stats to dotted numeric leaves.

    ``{"queue": {"depth": 3}}`` → ``{"queue.depth": 3.0}``; booleans
    become 0/1, non-numeric leaves are skipped.
    """
    out: dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, dotted))
    elif isinstance(obj, bool):
        out[prefix] = 1.0 if obj else 0.0
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def stats_to_trial(stats: Mapping[str, Any], *, name: str,
                   metadata: Mapping | None = None) -> Trial:
    """One ``service.stats()`` snapshot as a PerfDMF trial.

    Every numeric leaf becomes an event (``queue.depth``,
    ``cache.hit_rate``, ``latency.queue_wait.p95``...) with the reading
    stored as both exclusive and inclusive :data:`VALUE_METRIC` on
    thread 0.  The full stats dict rides in ``metadata["stats"]`` so
    :func:`load_snapshots` recovers it losslessly.
    """
    leaves = _numeric_leaves(stats)
    if not leaves:
        raise ValueError("stats snapshot has no numeric leaves")
    meta = {
        "source": "repro.serve.monitor",
        "sampled_at": time.time(),
        "stats": dict(stats),
        **dict(metadata or {}),
    }
    trial = Trial(name, meta)
    trial.add_metric(VALUE_METRIC, units="reading")
    trial.add_thread(0)
    for event, value in sorted(leaves.items()):
        trial.add_event(event, STATS_GROUP)
        trial.set_value(event, VALUE_METRIC, 0,
                        exclusive=value, inclusive=value)
        trial.set_calls(event, 0, calls=1.0, subroutines=0.0)
    return trial


def next_snapshot_name(db: PerfDMF, experiment: str,
                       *, application: str = SELF_APP) -> str:
    """Sequential snapshot names (``snap_0001``...), ordered by trial id
    so :func:`load_snapshots` replays them in sampling order."""
    try:
        existing = db.trials(application, experiment)
    except Exception:
        existing = []
    return f"snap_{len(existing) + 1:04d}"


def load_snapshots(db: PerfDMF, *, experiment: str = DEFAULT_EXPERIMENT,
                   application: str = SELF_APP,
                   last: int | None = None) -> list[dict[str, Any]]:
    """The stored stats dicts, oldest first (``last`` trims to the most
    recent N)."""
    names = db.trials(application, experiment)
    if last is not None:
        names = names[-last:]
    out = []
    for name in names:
        meta = db.trial_metadata(application, experiment, name)
        stats = meta.get("stats")
        if isinstance(stats, dict):
            out.append(stats)
    return out


class SelfMonitor:
    """Background sampler: ``service.stats()`` → PerfDMF trial, repeat.

    The PerfDMF handle may be the service's own database (in-memory
    handles use shared-cache URIs, so cross-thread writes land in the
    same store) or a dedicated one.  ``sample_once()`` works without
    ``start()`` for tests and synchronous use.
    """

    def __init__(self, service, db: PerfDMF, *,
                 interval: float = 5.0,
                 experiment: str = DEFAULT_EXPERIMENT) -> None:
        self.service = service
        self.db = db
        self.interval = interval
        self.experiment = experiment
        self.samples = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self) -> str:
        """Take one snapshot now; returns the stored trial name."""
        stats = self.service.stats()
        name = next_snapshot_name(self.db, self.experiment)
        trial = stats_to_trial(stats, name=name,
                               metadata={"interval_s": self.interval})
        self.db.save_trial(SELF_APP, self.experiment, trial, replace=True)
        self.samples += 1
        return name

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - monitoring must not kill serve
                self.errors += 1

    def start(self) -> "SelfMonitor":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="serve-monitor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()


# -- trend analysis ---------------------------------------------------------

def _series(snapshots: list[dict], *path: str) -> list[float]:
    out = []
    for snap in snapshots:
        node: Any = snap
        for key in path:
            if not isinstance(node, Mapping) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            out.append(float(node))
    return out


def _monotone(values: Iterable[float], cmp) -> bool:
    values = list(values)
    return all(cmp(a, b) for a, b in zip(values, values[1:]))


def service_trend_facts(
    snapshots: list[dict[str, Any]],
    *,
    window: int = 5,
    min_snapshots: int = 3,
    latency_growth: float = 0.5,
    hit_rate_drop: float = 0.10,
    respawn_churn: int = 2,
) -> list[Fact]:
    """Trend facts over a window of stats snapshots (oldest first).

    A trend must be *consistent* (monotone across the window) **and**
    *material* (past the threshold) to fire — a single noisy reading
    does not:

    * ``queue-wait-p95`` growing ≥ ``latency_growth`` relative (0.5 =
      +50 %) and never shrinking → latency trend;
    * ``cache.hit_rate`` dropping ≥ ``hit_rate_drop`` absolute and never
      rising → cache decay;
    * ``workers.respawns`` climbing by ≥ ``respawn_churn`` → churn
      (respawn counts are cumulative, so any rise is monotone already).
    """
    snapshots = snapshots[-window:]
    if len(snapshots) < min_snapshots:
        return []
    facts: list[Fact] = []

    def trend(metric: str, direction: str, series: list[float]) -> None:
        facts.append(Fact(
            "ServiceTrendFact",
            metric=metric,
            direction=direction,
            first=series[0],
            last=series[-1],
            change=series[-1] - series[0],
            snapshots=len(series),
        ))

    p95 = _series(snapshots, "queue_wait", "p95")
    if (len(p95) >= min_snapshots and p95[0] > 0
            and _monotone(p95, lambda a, b: a <= b)
            and p95[-1] >= p95[0] * (1.0 + latency_growth)):
        trend("queue-wait-p95", "growing", p95)

    hit_rate = _series(snapshots, "cache", "hit_rate")
    if (len(hit_rate) >= min_snapshots
            and _monotone(hit_rate, lambda a, b: a >= b)
            and hit_rate[0] - hit_rate[-1] >= hit_rate_drop):
        trend("cache-hit-rate", "decaying", hit_rate)

    respawns = _series(snapshots, "workers", "respawns")
    if (len(respawns) >= min_snapshots
            and respawns[-1] - respawns[0] >= respawn_churn):
        trend("worker-respawns", "growing", respawns)

    return facts


def diagnose_trends(db: PerfDMF, *,
                    experiment: str = DEFAULT_EXPERIMENT,
                    window: int = 5, **thresholds):
    """Replay stored snapshots through ``service-rules``; returns the
    fired harness (same shape as ``AnalysisService.diagnose_service``)."""
    from ..core.harness import RuleHarness

    snapshots = load_snapshots(db, experiment=experiment, last=window)
    harness = RuleHarness("service-rules")
    harness.assertObjects(
        service_trend_facts(snapshots, window=window, **thresholds)
    )
    harness.processRules()
    return harness


# -- the dashboard ----------------------------------------------------------

def render_top(stats: Mapping[str, Any]) -> str:
    """One ``serve top`` frame: fleet vitals as aligned text."""
    jobs = stats.get("jobs", {})
    queue = stats.get("queue", {})
    cache = stats.get("cache", {})
    workers = stats.get("workers", {})
    by_status = jobs.get("by_status", {})
    qw = stats.get("queue_wait") or {}
    lines = [
        f"repro-perf serve — up {stats.get('uptime_s', 0.0):.1f}s, "
        f"{workers.get('count', 0)} {workers.get('mode', '?')} workers "
        f"({workers.get('alive', 0)} alive, "
        f"{workers.get('respawns', 0)} respawns)",
        "",
        f"  jobs      submitted {jobs.get('submitted', 0):<6} "
        f"in-flight {jobs.get('in_flight', 0):<4} "
        + " ".join(f"{status} {count}"
                   for status, count in sorted(by_status.items())),
        f"  queue     depth {queue.get('depth', 0)}/"
        f"{queue.get('maxsize', 0) or '∞'}   "
        f"high-water {queue.get('high_water', 0)}   "
        f"rejected {queue.get('rejected', 0)}   "
        f"retried {queue.get('retried', 0)}",
        f"  wait      p50 {qw.get('p50', 0.0):.4f}s  "
        f"p95 {qw.get('p95', 0.0):.4f}s  "
        f"p99 {qw.get('p99', 0.0):.4f}s",
        f"  cache     hit rate {cache.get('hit_rate', 0.0):.1%}  "
        f"({cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses, "
        f"{cache.get('entries', 0)} entries)",
    ]
    exec_kinds = stats.get("exec") or {}
    if exec_kinds:
        lines.append("  exec p95  " + "  ".join(
            f"{kind} {pct.get('p95', 0.0):.4f}s"
            for kind, pct in sorted(exec_kinds.items())
        ))
    return "\n".join(lines)
