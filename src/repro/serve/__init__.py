"""``repro.serve`` — the analyzer as a concurrent service.

The paper's PerfExplorer runs one analysis at a time in one process;
this package makes the same knowledge pipeline *servable*: a bounded
priority :class:`~repro.serve.jobs.JobQueue`, a
:class:`~repro.serve.workers.WorkerPool` (thread or process execution
vehicles with per-job timeouts and retry-with-backoff), a
content-addressed :class:`~repro.serve.cache.ResultCache` keyed by
(job kind, trial content, code/rulebase versions), and a thin client
API in-process (:class:`Client`) or over a local socket
(:class:`SocketClient` ↔ ``repro-perf serve start``).

The fleet is observable end to end: every submission carries a
distributed :class:`~repro.observe.context.TraceContext`, the service
stitches client → queue → worker → handler spans into one per-job
timeline (``explain_job`` / ``serve explain-job``), metrics are exposed
in Prometheus text format (``metrics_text`` / ``serve metrics``), and a
:class:`~repro.serve.monitor.SelfMonitor` snapshots the vitals into
PerfDMF trials so trend rules can watch them degrade.

Embedding is three lines::

    from repro.serve import AnalysisService

    with AnalysisService(db_path="perf.db", workers=4) as svc:
        job = svc.submit("diagnose", {"app": a, "exp": e, "trial": t})
        job.wait()
"""

from .cache import CODE_VERSION, ResultCache, cache_key, rulebase_fingerprint
from .client import Client, SocketClient
from .handlers import HANDLERS, JobContext, JobKind, job_kind, resolve_kind
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobQueue,
    JobSpec,
    QUEUED,
    QueueClosed,
    QueueFull,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    TransientJobError,
)
from .monitor import (
    SELF_APP,
    SelfMonitor,
    diagnose_trends,
    load_snapshots,
    render_top,
    service_trend_facts,
    stats_to_trial,
)
from .protocol import ServeServer, connect_endpoint, parse_endpoint
from .service import (
    AnalysisService,
    BACKPRESSURE_THRESHOLD,
    FAILURE_RATE_THRESHOLD,
    QUEUE_WAIT_P95_THRESHOLD,
    ServeConfig,
)
from .workers import ExecutionTimeout, WorkerPool

__all__ = [
    "AnalysisService",
    "BACKPRESSURE_THRESHOLD",
    "CANCELLED",
    "CODE_VERSION",
    "Client",
    "DONE",
    "ExecutionTimeout",
    "FAILED",
    "FAILURE_RATE_THRESHOLD",
    "HANDLERS",
    "Job",
    "JobContext",
    "JobKind",
    "JobQueue",
    "JobSpec",
    "QUEUED",
    "QUEUE_WAIT_P95_THRESHOLD",
    "QueueClosed",
    "QueueFull",
    "RUNNING",
    "ResultCache",
    "SELF_APP",
    "SelfMonitor",
    "ServeConfig",
    "ServeServer",
    "SocketClient",
    "TERMINAL_STATES",
    "TIMEOUT",
    "TransientJobError",
    "WorkerPool",
    "cache_key",
    "connect_endpoint",
    "diagnose_trends",
    "job_kind",
    "load_snapshots",
    "parse_endpoint",
    "render_top",
    "resolve_kind",
    "rulebase_fingerprint",
    "service_trend_facts",
    "stats_to_trial",
]
