"""Content-addressed result cache for analysis jobs.

Cache keys are a digest of **everything a job's answer depends on**:

* the job kind and its canonicalized parameters,
* the :meth:`~repro.perfdmf.PerfDMF.content_hash` of every trial the job
  reads (independent of row ids, so a byte-identical re-upload still
  hits while changed data misses by construction),
* the code version (:data:`repro.__version__`) and a fingerprint of the
  shipped rulebase sources — bump either and every cached diagnosis is
  a miss, because the *answer* could legitimately differ.

Because staleness is encoded in the key, correctness never depends on
invalidation; the eviction hooks (:meth:`ResultCache.attach`) exist to
drop entries that can no longer hit — a deleted or re-uploaded trial's
old results — so memory is not wasted on dead keys.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..version import CODE_VERSION, rulebase_fingerprint, version_key

__all__ = ["CacheStats", "ResultCache", "cache_key", "rulebase_fingerprint"]


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def cache_key(
    kind: str,
    params: dict[str, Any],
    trial_hashes: Iterable[str] = (),
    *,
    code_version: str | None = None,
    rulebase_version: str | None = None,
) -> str:
    """The content address of one job's result."""
    versions = version_key(code_version, rulebase_version)
    h = hashlib.sha256()
    h.update(kind.encode())
    h.update(b"\x1f")
    h.update(_canonical(params).encode())
    for trial_hash in trial_hashes:
        h.update(b"\x1f")
        h.update(trial_hash.encode())
    h.update(b"\x1f")
    h.update(versions.code.encode())
    h.update(b"\x1f")
    h.update(versions.rulebase.encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    #: (application, experiment, trial) coordinates this result read.
    coords: tuple[tuple[str, str, str], ...] = ()
    hits: int = 0


class ResultCache:
    """Bounded LRU map from content address → job result.

    Thread-safe; values are treated as immutable JSON-able payloads (the
    service stores what handlers return and hands the same object to
    every hit).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: coord → set of keys whose results read that trial.
        self._by_coord: dict[tuple[str, str, str], set[str]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` — and LRU-touch on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            return True, entry.value

    def put(
        self,
        key: str,
        value: Any,
        *,
        coords: Iterable[tuple[str, str, str]] = (),
    ) -> None:
        with self._lock:
            if key not in self._entries and self.max_entries > 0:
                while len(self._entries) >= self.max_entries:
                    old_key, old = self._entries.popitem(last=False)
                    self._unindex(old_key, old)
                    self.stats.evictions += 1
            entry = _Entry(value, tuple(coords))
            self._entries[key] = entry
            self._entries.move_to_end(key)
            for coord in entry.coords:
                self._by_coord.setdefault(coord, set()).add(key)
            self.stats.puts += 1

    def _unindex(self, key: str, entry: _Entry) -> None:
        for coord in entry.coords:
            keys = self._by_coord.get(coord)
            if keys:
                keys.discard(key)
                if not keys:
                    del self._by_coord[coord]

    def invalidate_trial(
        self, application: str, experiment: str, trial: str
    ) -> int:
        """Drop every entry whose result read this trial; returns count.

        Correctness does not require this (the content hash in the key
        already changed), but the old entries can never hit again —
        reclaim them eagerly."""
        coord = (application, experiment, trial)
        with self._lock:
            keys = self._by_coord.pop(coord, set())
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._unindex(key, entry)
            self.stats.invalidations += len(keys)
            return len(keys)

    def attach(self, db) -> None:
        """Wire this cache to a repository's change notifications: any
        trial save (re-upload) or delete invalidates dependent entries."""

        def _on_change(action: str, application: str, experiment: str,
                       trial: str) -> None:
            self.invalidate_trial(application, experiment, trial)

        db.add_change_listener(_on_change)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_coord.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                **self.stats.to_dict(),
            }
