"""Performance assertions (Vetter & Worley, discussed in §IV).

"Performance Assertions have been developed to confirm that the empirical
performance data of an application or code region meets or exceeds that of
the expected performance.  By using the assertions, the programmer can
relate expected performance results to variables in the application, the
execution configuration (i.e. number of processors), and pre-evaluated
variables (i.e. peak FLOPS for this machine)."

This module implements that contract over PerfDMF trials: an assertion
names a region and a metric, and its expectation is an expression over an
:class:`AssertionContext` exposing exactly those three variable classes.
Violations can be rendered as a report or asserted into a rule harness as
``AssertionViolation`` facts, so knowledge rules can react to broken
expectations (the paper's "runtime decisions about component selection").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..machine import counters as C
from ..perfdmf import Trial
from ..rules import Fact
from .result import AnalysisError, PerformanceResult

#: Itanium 2 Madison: 4 FP ops/cycle × 1.5 GHz.
DEFAULT_PEAK_FLOPS = 6.0e9

_RELATIONS: dict[str, Callable[[float, float], bool]] = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1.0),
}


class AssertionContext:
    """The variables an expectation expression may reference."""

    def __init__(
        self,
        result: PerformanceResult,
        *,
        peak_flops: float = DEFAULT_PEAK_FLOPS,
        variables: Mapping[str, float] | None = None,
    ) -> None:
        self._result = result
        #: Execution configuration.
        self.processors = result.thread_count
        self.metadata = dict(result.metadata)
        #: Pre-evaluated machine variables.
        self.peak_flops = peak_flops
        #: Application variables supplied by the developer.
        self.variables = dict(variables or {})

    def total(self, metric: str = C.TIME) -> float:
        """Main event's mean inclusive value of ``metric``."""
        main = self._result.main_event()
        return float(
            self._result.event_row(main, metric, inclusive=True).mean()
        )

    def event_mean(self, event: str, metric: str = C.TIME, *,
                   inclusive: bool = False) -> float:
        if not self._result.has_event(event):
            raise AnalysisError(f"assertion context: unknown event {event!r}")
        return float(
            self._result.event_row(event, metric, inclusive=inclusive).mean()
        )

    def var(self, name: str) -> float:
        if name in self.variables:
            return float(self.variables[name])
        if name in self.metadata and isinstance(
            self.metadata[name], (int, float)
        ):
            return float(self.metadata[name])
        raise AnalysisError(
            f"assertion references unknown variable {name!r}; "
            f"available: {sorted(self.variables) + sorted(self.metadata)}"
        )


@dataclass(frozen=True)
class PerformanceAssertion:
    """One expectation about a region's measured performance.

    ``expect`` computes the bound from the context; ``relation`` compares
    the measured value against it (``measured <relation> bound``).
    """

    name: str
    event: str
    metric: str = C.TIME
    relation: str = "<="
    expect: Callable[[AssertionContext], float] = lambda ctx: 0.0
    inclusive: bool = False

    def __post_init__(self) -> None:
        if self.relation not in _RELATIONS:
            raise AnalysisError(
                f"assertion {self.name!r}: unknown relation {self.relation!r}"
            )

    def evaluate(self, ctx: AssertionContext) -> "AssertionOutcome":
        measured = ctx.event_mean(self.event, self.metric,
                                  inclusive=self.inclusive)
        bound = float(self.expect(ctx))
        holds = _RELATIONS[self.relation](measured, bound)
        return AssertionOutcome(self, measured, bound, holds)


@dataclass(frozen=True)
class AssertionOutcome:
    assertion: PerformanceAssertion
    measured: float
    bound: float
    holds: bool

    @property
    def violation_ratio(self) -> float:
        """How far past the bound the measurement landed (0 when holding)."""
        if self.holds or self.bound == 0:
            return 0.0 if self.holds else float("inf")
        return abs(self.measured - self.bound) / abs(self.bound)

    def describe(self) -> str:
        state = "OK  " if self.holds else "FAIL"
        a = self.assertion
        return (
            f"[{state}] {a.name}: {a.event}.{a.metric} = {self.measured:.6g} "
            f"{a.relation} {self.bound:.6g}"
        )


def check_assertions(
    trial: Trial | PerformanceResult,
    assertions: list[PerformanceAssertion],
    *,
    peak_flops: float = DEFAULT_PEAK_FLOPS,
    variables: Mapping[str, float] | None = None,
) -> list[AssertionOutcome]:
    """Evaluate every assertion; returns outcomes in input order."""
    if not assertions:
        raise AnalysisError("no assertions to check")
    result = (
        trial if isinstance(trial, PerformanceResult)
        else PerformanceResult(trial)
    )
    ctx = AssertionContext(result, peak_flops=peak_flops, variables=variables)
    return [a.evaluate(ctx) for a in assertions]


def assertion_facts(outcomes: list[AssertionOutcome]) -> list[Fact]:
    """``AssertionViolation`` facts for the outcomes that failed."""
    facts = []
    for o in outcomes:
        if o.holds:
            continue
        facts.append(
            Fact(
                "AssertionViolation",
                name=o.assertion.name,
                event=o.assertion.event,
                metric=o.assertion.metric,
                measured=o.measured,
                bound=o.bound,
                relation=o.assertion.relation,
                violation_ratio=o.violation_ratio,
            )
        )
    return facts


def render_assertion_report(outcomes: list[AssertionOutcome]) -> str:
    failed = sum(1 for o in outcomes if not o.holds)
    lines = [f"Performance assertions: {len(outcomes) - failed}/{len(outcomes)} hold"]
    for o in outcomes:
        lines.append("  " + o.describe())
    return "\n".join(lines)
