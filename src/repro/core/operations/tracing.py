"""Trace analysis operations: reduction, wait states, critical path.

These operate on the event timelines recorded by
:class:`repro.runtime.trace.EventTrace` (and the interval trials cut by
:class:`repro.runtime.snapshot.SnapshotProfiler`) rather than on stored
profiles, mirroring the trace-analysis half of the TAU toolchain:

* :func:`replay_trace` / :class:`TraceToProfileOperation` — trace→profile
  reduction.  A trace is a complete replay log, so feeding it through a
  fresh profiler reproduces the original accounting exactly (the
  consistency property ``tests/runtime/test_trace_consistency.py`` checks).
* :func:`detect_wait_states` / :class:`WaitStateOperation` — the classic
  SPMD wait-state patterns: **late sender** (a receiver blocks in
  ``MPI_Waitall`` until the message lands), **late receiver** (the message
  sat fully transferred before the receiver entered its wait — the eager-
  protocol symmetric case), and **barrier stragglers** (MPI collectives and
  OpenMP barriers where one participant's late arrival makes everyone
  wait).
* :func:`critical_path` / :class:`CriticalPathOperation` — backward walk
  from the last CPU to finish, hopping across ranks through the wait
  dependencies, yielding the chain of compute segments that bounds the
  makespan.
* :func:`interval_imbalance` / :class:`PhaseImbalanceOperation` — per-event
  imbalance ratio (stddev/mean across threads) per interval snapshot, the
  timeline evidence behind ``PhaseImbalanceFact``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ... import observe
from ...machine import Machine
from ...machine import counters as C
from ...perfdmf import Trial
from ...runtime import trace as T
from ...runtime.tau import Profiler
from ..result import AnalysisError, PerformanceResult, trial_result
from .base import _ResultList

__all__ = [
    "WaitState",
    "PathSegment",
    "CriticalPathResult",
    "ImbalanceTimeline",
    "replay_trace",
    "detect_wait_states",
    "critical_path",
    "interval_imbalance",
    "TraceToProfileOperation",
    "WaitStateOperation",
    "CriticalPathOperation",
    "PhaseImbalanceOperation",
]


# -- trace → profile reduction ---------------------------------------------

def replay_trace(
    trace: T.EventTrace, machine: Machine, *, callpaths: bool = False
) -> Profiler:
    """Reduce an event trace back to a profile by replaying it.

    Only region events (enter/exit/charge/calls) drive the replay; MPI and
    OpenMP events are derived views of the same activity and are skipped.
    Requires the trace to have been recorded with ``record_charges=True``.
    """
    prof = Profiler(machine, callpaths=callpaths)
    for ev in trace.events:
        if ev.kind == T.ENTER:
            prof.enter(ev.cpu, ev.name, group=ev.get("group", "TAU_DEFAULT"))
        elif ev.kind == T.EXIT:
            prof.exit(ev.cpu, ev.name)
        elif ev.kind == T.CHARGE:
            vec = ev.get("vector")
            if vec is None:
                raise AnalysisError(
                    "replay_trace: trace was recorded without charge vectors "
                    "(EventTrace(record_charges=False)); cannot reduce to a "
                    "profile"
                )
            prof.charge(ev.cpu, vec, _idle=ev.get("idle", False))
        elif ev.kind == T.CALLS:
            prof.add_calls(ev.cpu, ev.name, ev.get("count", 0.0))
    return prof


# -- wait-state detection --------------------------------------------------

@dataclass(frozen=True)
class WaitState:
    """One diagnosed wait-state instance.

    ``rank`` is the *offending* participant (the late sender, the late
    receiver, the barrier straggler); ``victim`` is the participant that
    paid the most wait time.  For OpenMP constructs, ranks are thread
    indices and ``construct`` is ``"openmp"``.
    """

    kind: str  # "late-sender" | "late-receiver" | "barrier-straggler"
    rank: int
    victim: int
    wait_seconds: float
    event: str
    t_start: float
    t_end: float
    construct: str = "mpi"


def _barrier_states(
    groups: dict, *, construct: str, min_wait: float
) -> list[WaitState]:
    out: list[WaitState] = []
    for (name, _seq), members in sorted(groups.items(), key=lambda kv: kv[0][1]):
        if len(members) < 2:
            continue
        straggler = max(members, key=lambda m: m["arrive"])
        worst = min(members, key=lambda m: m["arrive"])
        wait = straggler["arrive"] - worst["arrive"]
        if wait > min_wait:
            out.append(WaitState(
                kind="barrier-straggler",
                rank=straggler["rank"],
                victim=worst["rank"],
                wait_seconds=wait,
                event=name,
                t_start=worst["arrive"],
                t_end=straggler["arrive"],
                construct=construct,
            ))
    return out


def detect_wait_states(
    trace: T.EventTrace, *, min_wait_seconds: float = 1e-9
) -> list[WaitState]:
    """Scan a trace for late-sender / late-receiver / straggler patterns."""
    states: list[WaitState] = []
    mpi_groups: dict = {}
    omp_groups: dict = {}
    for ev in trace.events:
        if ev.kind == T.WAIT:
            rank = ev.get("rank")
            start = ev.get("start", ev.ts)
            end = ev.get("end", ev.ts)
            for req in ev.get("requests", ()):
                if req.get("kind") != "recv":
                    continue
                ready = req.get("ready_at")
                partner = req.get("partner")
                if ready is None or partner is None:
                    continue
                if ready - start > min_wait_seconds:
                    # Receiver blocked until the partner's message landed.
                    states.append(WaitState(
                        kind="late-sender",
                        rank=partner,
                        victim=rank,
                        wait_seconds=ready - start,
                        event=ev.name,
                        t_start=start,
                        t_end=min(ready, end),
                    ))
                elif start - ready > min_wait_seconds:
                    # Message sat fully transferred before the receiver
                    # entered its wait (the eager-protocol late-receiver
                    # symptom: the receiver itself is late).
                    states.append(WaitState(
                        kind="late-receiver",
                        rank=rank,
                        victim=partner,
                        wait_seconds=start - ready,
                        event=ev.name,
                        t_start=ready,
                        t_end=start,
                    ))
        elif ev.kind == T.COLLECTIVE:
            key = (ev.name, ev.get("seq"))
            mpi_groups.setdefault(key, []).append(
                {"rank": ev.get("rank"), "arrive": ev.get("arrive", ev.ts),
                 "release": ev.get("release", ev.ts), "cpu": ev.cpu}
            )
        elif ev.kind == T.BARRIER:
            key = (ev.name, ev.get("seq"))
            omp_groups.setdefault(key, []).append(
                {"rank": ev.get("thread"), "arrive": ev.get("arrive", ev.ts),
                 "release": ev.get("release", ev.ts), "cpu": ev.cpu}
            )
    states.extend(_barrier_states(
        mpi_groups, construct="mpi", min_wait=min_wait_seconds))
    states.extend(_barrier_states(
        omp_groups, construct="openmp", min_wait=min_wait_seconds))
    states.sort(key=lambda s: s.t_start)
    return states


def total_wait_by_rank(states: Sequence[WaitState]) -> dict[int, float]:
    """Total wait seconds *caused* per offending rank."""
    totals: dict[int, float] = {}
    for s in states:
        totals[s.rank] = totals.get(s.rank, 0.0) + s.wait_seconds
    return totals


# -- critical path ---------------------------------------------------------

@dataclass(frozen=True)
class PathSegment:
    cpu: int
    event: str
    t_start: float
    t_end: float
    idle: bool

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start


@dataclass
class CriticalPathResult:
    """The rank-crossing chain of segments bounding the makespan."""

    segments: list[PathSegment]  # forward time order
    makespan: float

    @property
    def per_event_seconds(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.segments:
            if not seg.idle:
                out[seg.event] = out.get(seg.event, 0.0) + seg.seconds
        return out

    @property
    def compute_seconds(self) -> float:
        return sum(s.seconds for s in self.segments if not s.idle)

    @property
    def wait_seconds(self) -> float:
        return sum(s.seconds for s in self.segments if s.idle)

    @property
    def cpus_visited(self) -> list[int]:
        return sorted({s.cpu for s in self.segments})


@dataclass(frozen=True)
class _Blocking:
    """An interval during which a CPU was provably waiting on another."""

    start: float
    end: float
    origin_cpu: int
    origin_time: float


def _blocking_intervals(trace: T.EventTrace) -> dict[int, list[_Blocking]]:
    rank_cpu = {r: c for c, r in trace.rank_of_cpu().items()}
    out: dict[int, list[_Blocking]] = {}

    def add(cpu: int, b: _Blocking) -> None:
        out.setdefault(cpu, []).append(b)

    groups: dict = {}
    for ev in trace.events:
        if ev.kind == T.WAIT:
            start = ev.get("start", ev.ts)
            end = ev.get("end", ev.ts)
            if end - start <= 0:
                continue
            # The message that completed last is the one the wait was for.
            recvs = [r for r in ev.get("requests", ())
                     if r.get("kind") == "recv" and r.get("ready_at") is not None]
            if not recvs:
                continue
            last = max(recvs, key=lambda r: r["ready_at"])
            origin_cpu = rank_cpu.get(last.get("partner"))
            if origin_cpu is None:
                continue
            add(ev.cpu, _Blocking(start, end, origin_cpu,
                                  last.get("posted_at") or 0.0))
        elif ev.kind in (T.COLLECTIVE, T.BARRIER):
            groups.setdefault((ev.kind, ev.name, ev.get("seq")), []).append(ev)
    for members in groups.values():
        if len(members) < 2:
            continue
        straggler = max(members, key=lambda e: e.get("arrive", e.ts))
        s_arrive = straggler.get("arrive", straggler.ts)
        for ev in members:
            if ev is straggler:
                continue
            arrive = ev.get("arrive", ev.ts)
            release = ev.get("release", ev.ts)
            if release - arrive > 0:
                add(ev.cpu, _Blocking(arrive, release, straggler.cpu, s_arrive))
    for lst in out.values():
        lst.sort(key=lambda b: b.end)
    return out


def critical_path(trace: T.EventTrace) -> CriticalPathResult:
    """Extract the critical path by walking backward from the last CPU to
    finish, hopping to the blocking CPU whenever the walk lands in an idle
    interval caused by a message or barrier dependency."""
    eps = 1e-12
    charges: dict[int, list[tuple[float, float, str, bool]]] = {}
    for ev in trace.events:
        if ev.kind == T.CHARGE:
            sec = ev.get("seconds", 0.0)
            charges.setdefault(ev.cpu, []).append(
                (ev.ts, ev.ts + sec, ev.name, bool(ev.get("idle")))
            )
    if not charges:
        return CriticalPathResult([], 0.0)
    blocking = _blocking_intervals(trace)
    clocks = trace.final_clocks()
    cpu = max(clocks, key=lambda c: clocks[c])
    t = clocks[cpu]
    makespan = t
    raw: list[PathSegment] = []
    budget = 4 * sum(len(v) for v in charges.values()) + 16
    while t > eps and budget > 0:
        budget -= 1
        lane = charges.get(cpu, [])
        # Last charge starting strictly before t: charges tile each CPU's
        # clock, so t falls inside (start, end] of exactly one of them.
        lo, hi = 0, len(lane)
        while lo < hi:
            mid = (lo + hi) // 2
            if lane[mid][0] < t - eps:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            break
        start, end, name, idle = lane[lo - 1]
        if idle:
            jump = None
            for b in blocking.get(cpu, ()):
                if b.start - eps <= t <= b.end + eps and b.origin_time < t - eps:
                    jump = b
                    break
            if jump is not None:
                hop = max(start, jump.origin_time)
                raw.append(PathSegment(cpu, name, hop, t, True))
                cpu, t = jump.origin_cpu, jump.origin_time
                continue
            raw.append(PathSegment(cpu, name, start, t, True))
        else:
            raw.append(PathSegment(cpu, name, start, t, False))
        t = start
    # merge adjacent same-(cpu, event, idle) segments, forward order
    raw.reverse()
    merged: list[PathSegment] = []
    for seg in raw:
        if seg.seconds <= eps:
            continue
        if (merged
                and merged[-1].cpu == seg.cpu
                and merged[-1].event == seg.event
                and merged[-1].idle == seg.idle
                and abs(merged[-1].t_end - seg.t_start) <= eps):
            merged[-1] = PathSegment(
                seg.cpu, seg.event, merged[-1].t_start, seg.t_end, seg.idle
            )
        else:
            merged.append(seg)
    return CriticalPathResult(merged, makespan)


# -- interval imbalance ----------------------------------------------------

@dataclass(frozen=True)
class ImbalanceTimeline:
    """Per-interval imbalance ratios for one event across snapshots."""

    event: str
    ratios: tuple[float, ...]
    labels: tuple  # interval labels (may contain None)
    #: The event's mean share of total exclusive time across intervals —
    #: a severity proxy, like the profile rules' severity.
    mean_share: float

    @property
    def first_ratio(self) -> float:
        return self.ratios[0]

    @property
    def last_ratio(self) -> float:
        return self.ratios[-1]

    @property
    def max_ratio(self) -> float:
        return max(self.ratios)

    @property
    def worst_interval(self) -> int:
        return int(np.argmax(self.ratios))

    @property
    def growth(self) -> float:
        """last/first ratio; inf when imbalance appears from nothing."""
        if self.first_ratio > 0:
            return self.last_ratio / self.first_ratio
        return float("inf") if self.last_ratio > 0 else 1.0

    @property
    def slope(self) -> float:
        """Least-squares slope of ratio over interval index."""
        if len(self.ratios) < 2:
            return 0.0
        x = np.arange(len(self.ratios), dtype=float)
        return float(np.polyfit(x, np.asarray(self.ratios), 1)[0])

    @property
    def trend(self) -> str:
        if len(self.ratios) >= 2 and self.slope > 0 and \
                self.last_ratio >= 1.2 * self.first_ratio:
            return "growing"
        if len(self.ratios) >= 2 and self.slope < 0 and \
                self.last_ratio <= 0.8 * self.first_ratio:
            return "shrinking"
        return "steady"


def interval_imbalance(
    snapshots: Sequence[Trial],
    *,
    metric: str = C.TIME,
    min_share: float = 0.0,
) -> list[ImbalanceTimeline]:
    """Compute per-event imbalance ratios over a snapshot sequence.

    For each flat event, each interval contributes stddev/mean of the
    event's exclusive ``metric`` across threads — the paper's imbalance
    statistic, now resolved in time.  Events whose share of total time is
    at most ``min_share`` are dropped.
    """
    if not snapshots:
        raise AnalysisError("interval_imbalance: no snapshots")
    n = len(snapshots)
    # pre-sized rows keep interval alignment for events that only appear
    # partway through the run (absent intervals contribute ratio/share 0)
    ratio_rows: dict[str, list[float]] = {}
    share_rows: dict[str, list[float]] = {}
    labels = []
    for i, trial in enumerate(snapshots):
        labels.append((trial.metadata.get("interval") or {}).get("label"))
        excl = trial.exclusive_array(metric)
        total = float(excl.sum())
        for e, event in enumerate(trial.events):
            if event.is_callpath:
                continue
            row = excl[e]
            mean = float(row.mean())
            ratio = float(row.std() / mean) if mean > 0 else 0.0
            share = float(row.sum() / total) if total > 0 else 0.0
            ratio_rows.setdefault(event.name, [0.0] * n)[i] = ratio
            share_rows.setdefault(event.name, [0.0] * n)[i] = share
    out = []
    for name, ratios in ratio_rows.items():
        shares = share_rows[name]
        mean_share = float(np.mean(shares)) if shares else 0.0
        if mean_share <= min_share:
            continue
        out.append(ImbalanceTimeline(
            event=name,
            ratios=tuple(ratios),
            labels=tuple(labels),
            mean_share=mean_share,
        ))
    out.sort(key=lambda tl: tl.mean_share, reverse=True)
    return out


# -- operation wrappers ----------------------------------------------------

class _TraceOperation:
    """Minimal operation shim for trace inputs (not PerformanceResults):
    same ``process_data``/``processData`` contract as
    :class:`PerformanceAnalysisOperation`, wrapped in a telemetry span."""

    def __init__(self) -> None:
        self.outputs: list = []

    def _run(self) -> list:
        raise NotImplementedError

    def process_data(self) -> list:
        if observe.enabled():
            with observe.span(f"operation.{type(self).__name__}") as sp:
                self.outputs = self._run()
                sp.set(outputs=len(self.outputs))
        else:
            self.outputs = self._run()
        return self.outputs

    def processData(self) -> _ResultList:
        return _ResultList(self.process_data())


class TraceToProfileOperation(_TraceOperation):
    """Reduce an event trace to a profile result (TAU's trace2profile)."""

    def __init__(
        self,
        trace: T.EventTrace,
        machine: Machine,
        *,
        name: str = "replayed",
        callpaths: bool = False,
    ) -> None:
        super().__init__()
        self.trace = trace
        self.machine = machine
        self.name = name
        self.callpaths = callpaths

    def _run(self) -> list[PerformanceResult]:
        prof = replay_trace(self.trace, self.machine, callpaths=self.callpaths)
        return [trial_result(prof.to_trial(self.name))]


class WaitStateOperation(_TraceOperation):
    """Detect late-sender / late-receiver / straggler wait states."""

    def __init__(
        self, trace: T.EventTrace, *, min_wait_seconds: float = 1e-9
    ) -> None:
        super().__init__()
        self.trace = trace
        self.min_wait_seconds = min_wait_seconds

    def _run(self) -> list[WaitState]:
        return detect_wait_states(
            self.trace, min_wait_seconds=self.min_wait_seconds
        )


class CriticalPathOperation(_TraceOperation):
    """Extract the cross-rank critical path from a trace."""

    def __init__(self, trace: T.EventTrace) -> None:
        super().__init__()
        self.trace = trace

    def _run(self) -> list[CriticalPathResult]:
        return [critical_path(self.trace)]


class PhaseImbalanceOperation(_TraceOperation):
    """Per-interval imbalance timelines over snapshot sub-trials."""

    def __init__(
        self,
        snapshots: Sequence[Trial],
        *,
        metric: str = C.TIME,
        min_share: float = 0.0,
    ) -> None:
        super().__init__()
        self.snapshots = list(snapshots)
        self.metric = metric
        self.min_share = min_share

    def _run(self) -> list[ImbalanceTimeline]:
        return interval_imbalance(
            self.snapshots, metric=self.metric, min_share=self.min_share
        )
