"""Trace analysis operations: reduction, wait states, critical path.

These operate on the event timelines recorded by
:class:`repro.runtime.trace.EventTrace` (and the interval trials cut by
:class:`repro.runtime.snapshot.SnapshotProfiler`) rather than on stored
profiles, mirroring the trace-analysis half of the TAU toolchain:

* :func:`replay_trace` / :class:`TraceToProfileOperation` — trace→profile
  reduction.  A trace is a complete replay log, so feeding it through a
  fresh profiler reproduces the original accounting exactly (the
  consistency property ``tests/runtime/test_trace_consistency.py`` checks).
* :func:`detect_wait_states` / :class:`WaitStateOperation` — the classic
  SPMD wait-state patterns: **late sender** (a receiver blocks in
  ``MPI_Waitall`` until the message lands), **late receiver** (the message
  sat fully transferred before the receiver entered its wait — the eager-
  protocol symmetric case), and **barrier stragglers** (MPI collectives and
  OpenMP barriers where one participant's late arrival makes everyone
  wait).
* :func:`critical_path` / :class:`CriticalPathOperation` — backward walk
  from the last CPU to finish, hopping across ranks through the wait
  dependencies, yielding the chain of compute segments that bounds the
  makespan.
* :func:`interval_imbalance` / :class:`PhaseImbalanceOperation` — per-event
  imbalance ratio (stddev/mean across threads) per interval snapshot, the
  timeline evidence behind ``PhaseImbalanceFact``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ... import observe
from ...machine import CounterVector, Machine
from ...machine import counters as C
from ...perfdmf import Trial
from ...runtime import trace as T
from ...runtime.tau import Profiler, _CPUState
from ..result import AnalysisError, PerformanceResult, trial_result
from .base import _ResultList

__all__ = [
    "WaitState",
    "PathSegment",
    "CriticalPathResult",
    "ImbalanceTimeline",
    "replay_trace",
    "detect_wait_states",
    "critical_path",
    "interval_imbalance",
    "TraceToProfileOperation",
    "WaitStateOperation",
    "CriticalPathOperation",
    "PhaseImbalanceOperation",
]


# -- trace → profile reduction ---------------------------------------------

def replay_trace(
    trace: T.EventTrace, machine: Machine, *, callpaths: bool = False
) -> Profiler:
    """Reduce an event trace back to a profile by replaying it.

    Only region events (enter/exit/charge/calls) drive the replay; MPI and
    OpenMP events are derived views of the same activity and are skipped.
    Requires the trace to have been recorded with ``record_charges=True``.

    Flat (non-callpath) replay of a well-formed trace runs through a
    columnar kernel that pairs region instances and folds charge vectors
    straight out of the trace's struct-of-arrays storage; per-counter
    summation order matches the event-by-event profiler exactly, so the
    bitwise-reproduction guarantee is preserved (asserted by
    ``tests/runtime/test_trace_consistency.py``).  Callpath mode and traces
    the kernel cannot prove well-formed fall back to the event-by-event
    replay, which also produces the exact diagnostic errors for malformed
    input.
    """
    if not callpaths and isinstance(trace, T.EventTrace):
        prof = _replay_columnar(trace, machine)
        if prof is not None:
            return prof
    return _replay_eventwise(trace, machine, callpaths=callpaths)


def _replay_eventwise(
    trace: T.EventTrace, machine: Machine, *, callpaths: bool = False
) -> Profiler:
    """Reference replay: drive a fresh profiler one event at a time."""
    prof = Profiler(machine, callpaths=callpaths)
    for ev in trace.events:
        if ev.kind == T.ENTER:
            prof.enter(ev.cpu, ev.name, group=ev.get("group", "TAU_DEFAULT"))
        elif ev.kind == T.EXIT:
            prof.exit(ev.cpu, ev.name)
        elif ev.kind == T.CHARGE:
            vec = ev.get("vector")
            if vec is None:
                raise AnalysisError(
                    "replay_trace: trace was recorded without charge vectors "
                    "(EventTrace(record_charges=False)); cannot reduce to a "
                    "profile"
                )
            prof.charge(ev.cpu, vec, _idle=ev.get("idle", False))
        elif ev.kind == T.CALLS:
            prof.add_calls(ev.cpu, ev.name, ev.get("count", 0.0))
    return prof


def _vec(values: dict[str, float]) -> CounterVector:
    """CounterVector from an already-filtered {counter: nonzero} dict."""
    v = CounterVector()
    v._values = values
    return v


def _replay_columnar(trace: T.EventTrace, machine: Machine) -> Profiler | None:
    """Vectorized flat replay over the trace's columnar storage.

    Returns None whenever the trace is not provably well-formed (unbalanced
    or misnamed regions, charges outside a region, missing charge vectors,
    out-of-range CPUs, calls to unregistered events) — the caller then
    re-runs the event-by-event replay, which either handles the case or
    raises the canonical error.

    Bitwise equivalence with the reference replay rests on two facts about
    the profiler's accounting: (1) every accumulator is a left-fold of
    Python-float additions in a fixed order (chronological per CPU for
    exclusive/clock, per region instance then exit order for inclusive),
    which CPython's ``sum`` over a list slice reproduces exactly (``0.0 +
    x == x`` bit-for-bit because :class:`CounterVector` never stores
    ``-0.0``); and (2) numpy is used only for *structure* — pairing,
    depths, grouping — never for float accumulation, whose pairwise
    reductions would reorder the fold.
    """
    cols = trace.columns()
    kind_col = cols["kind"]
    cpu_col = cols["cpu"]
    nid_col = cols["name_id"]
    attrs_col = trace.attrs_column()
    names = trace.name_table()

    K_ENTER = T.KIND_CODES[T.ENTER]
    K_EXIT = T.KIND_CODES[T.EXIT]
    K_CHARGE = T.KIND_CODES[T.CHARGE]
    K_CALLS = T.KIND_CODES[T.CALLS]

    region_mask = (
        (kind_col == K_ENTER) | (kind_col == K_EXIT)
        | (kind_col == K_CHARGE) | (kind_col == K_CALLS)
    )
    prof = Profiler(machine)
    rows = np.nonzero(region_mask)[0]
    if not len(rows):
        return prof
    rcpu = cpu_col[rows]
    if int(rcpu.min()) < 0 or int(rcpu.max()) >= machine.n_cpus:
        return None
    if not trace.charges_fully_recorded:
        return None  # record_charges=False → canonical AnalysisError
    # Group rows by cpu once (stable sort keeps emit order within a cpu)
    # so the per-cpu passes slice instead of re-masking the whole trace.
    order_r = np.argsort(rcpu, kind="stable")
    rows_sorted = rows[order_r]
    rcpu_sorted = rcpu[order_r]
    charge_by_cpu = {}
    for m, (crows, cvarr) in trace.charge_columns().items():
        corder = np.argsort(cpu_col[crows], kind="stable")
        charge_by_cpu[m] = (
            cpu_col[crows][corder], crows[corder], cvarr[corder]
        )

    # Global event registration order: first ENTER of each name, in trace
    # order (what _register_event would have produced).
    enter_rows = rows[kind_col[rows] == K_ENTER]
    enter_nids = nid_col[enter_rows]
    first_enter_row: dict[int, int] = {}
    order_nids, first_pos = np.unique(enter_nids, return_index=True)
    for nid, pos in zip(order_nids.tolist(), first_pos.tolist()):
        first_enter_row[nid] = int(enter_rows[pos])
    for nid, row in sorted(first_enter_row.items(), key=lambda kv: kv[1]):
        a = attrs_col[row]
        group = a.get("group", "TAU_DEFAULT") if a else "TAU_DEFAULT"
        prof._register_event(names[nid], group)

    # CALLS validation: the event must have been registered (first ENTER
    # anywhere) before the CALLS event, and counts must be non-negative.
    calls_rows = rows[kind_col[rows] == K_CALLS]
    for row in calls_rows.tolist():
        first = first_enter_row.get(int(nid_col[row]))
        if first is None or first > row:
            return None
        a = attrs_col[row]
        if a is not None and a.get("count", 0.0) < 0:
            return None

    exclusive: dict[tuple[str, int], CounterVector] = {}
    inclusive: dict[tuple[str, int], CounterVector] = {}
    calls: dict[tuple[str, int], float] = {}
    subrs: dict[tuple[str, int], float] = {}
    edges: set[tuple[str, str]] = set()
    n_names = len(names)

    for cpu in np.unique(rcpu_sorted).tolist():
        r_lo = int(np.searchsorted(rcpu_sorted, cpu, side="left"))
        r_hi = int(np.searchsorted(rcpu_sorted, cpu, side="right"))
        gsel = rows_sorted[r_lo:r_hi]  # this CPU's region rows, trace order
        k = kind_col[gsel]
        n = nid_col[gsel]
        delta = (k == K_ENTER).astype(np.int64) - (k == K_EXIT)
        depth_after = np.cumsum(delta)
        if int(depth_after.min()) < 0:
            return None  # exit with empty stack somewhere
        depth_before = depth_after - delta
        enters = np.nonzero(k == K_ENTER)[0]
        exits = np.nonzero(k == K_EXIT)[0]
        charges = np.nonzero(k == K_CHARGE)[0]
        if len(charges) and int(depth_before[charges].min()) == 0:
            return None  # charge outside any region
        if len(enters) != len(exits):
            return None  # regions left open: to_trial must see the stacks

        # Pair region instances per nesting level.  At one level, enters
        # and exits strictly alternate (e1 x1 e2 x2 ...) in a well-formed
        # trace, so pairing by order is exactly stack pairing.
        enter_depth = depth_before[enters]
        exit_depth = depth_before[exits]
        e_parts: list[np.ndarray] = []
        x_parts: list[np.ndarray] = []
        enters_at: dict[int, np.ndarray] = {}
        # nesting depths are contiguous: an enter at depth d needs an open
        # region at depth d-1
        depths = list(range(int(enter_depth.max()) + 1)) if len(enters) else []
        for d in depths:
            e_idx = enters[enter_depth == d]
            x_idx = exits[exit_depth == d + 1]
            enters_at[d] = e_idx
            if len(e_idx) != len(x_idx):
                return None
            if not (e_idx < x_idx).all():
                return None
            if len(e_idx) > 1 and not (x_idx[:-1] < e_idx[1:]).all():
                return None
            if not (n[e_idx] == n[x_idx]).all():
                return None  # exit name mismatch → unbalanced-regions error
            e_parts.append(e_idx)
            x_parts.append(x_idx)
        if e_parts:
            inst_e = np.concatenate(e_parts)
            inst_x = np.concatenate(x_parts)
            order = np.argsort(inst_x)  # process instances in exit order
            inst_e = inst_e[order]
            inst_x = inst_x[order]
            inst_nid = n[inst_e]
        else:
            inst_e = inst_x = inst_nid = np.empty(0, dtype=np.int64)

        # Parents: an enter at depth d>0 belongs to the latest enter at
        # depth d-1 before it (callgraph edges + subroutine counts).
        for d in depths[1:]:
            child_idx = enters[enter_depth == d]
            parent_pool = enters_at.get(d - 1)
            if parent_pool is None or not len(parent_pool):
                return None
            ppos = np.searchsorted(parent_pool, child_idx, side="left") - 1
            if int(ppos.min()) < 0:
                return None
            parents = n[parent_pool[ppos]]
            for code in np.unique(parents * n_names + n[child_idx]).tolist():
                edges.add((names[code // n_names], names[code % n_names]))
            pcounts = np.bincount(parents, minlength=n_names)
            for pnid in np.nonzero(pcounts)[0].tolist():
                key = (names[pnid], cpu)
                subrs[key] = subrs.get(key, 0.0) + float(pcounts[pnid])

        # Flat call counts: +1.0 per enter, merged chronologically with
        # CALLS bumps.  A pure int count of 1.0-adds folds exactly to
        # float(count); only events that also have CALLS rows need the
        # order-preserving fold.
        local_calls = np.nonzero(k == K_CALLS)[0]
        calls_nids = set(n[local_calls].tolist())
        enter_counts = np.bincount(n[enters], minlength=n_names)
        for nid in np.nonzero(enter_counts)[0].tolist():
            if nid not in calls_nids:
                calls[(names[nid], cpu)] = float(enter_counts[nid])
        if len(local_calls):
            merge_rows = np.sort(np.concatenate([
                enters[np.isin(n[enters], list(calls_nids))], local_calls
            ]))
            folds: dict[int, float] = {}
            for li in merge_rows.tolist():
                nid = int(n[li])
                if k[li] == K_ENTER:
                    folds[nid] = folds.get(nid, 0.0) + 1.0
                else:
                    a = attrs_col[int(gsel[li])]
                    count = a.get("count", 0.0) if a else 0.0
                    folds[nid] = folds.get(nid, 0.0) + count
            for nid, total in folds.items():
                calls[(names[nid], cpu)] = total

        # Charge payloads per counter, straight from the trace's columnar
        # mirror: local charge-sequence positions + float64 values (exact
        # IEEE doubles of the recorded Python floats).
        gcharges = gsel[charges]  # global row ids of this cpu's charges
        per_counter: dict[str, tuple] = {}
        for m, (scpu, srows, svals) in charge_by_cpu.items():
            c_lo = int(np.searchsorted(scpu, cpu, side="left"))
            c_hi = int(np.searchsorted(scpu, cpu, side="right"))
            if c_hi > c_lo:
                if c_hi - c_lo == len(charges):
                    loc = None  # counter on every charge: identity mapping
                else:
                    loc = np.searchsorted(
                        gcharges, srows[c_lo:c_hi], side="left"
                    )
                per_counter[m] = (loc, svals[c_lo:c_hi])

        # Innermost region per charge: the latest enter one level up.
        if len(charges):
            innermost = np.empty(len(charges), dtype=np.int64)
            cdepth = depth_before[charges]
            for d in np.unique(cdepth).tolist():
                msk = cdepth == d
                pool = enters_at.get(d - 1)
                if pool is None or not len(pool):
                    return None
                pos = np.searchsorted(pool, charges[msk], side="left") - 1
                if int(pos.min()) < 0:
                    return None
                innermost[msk] = pool[pos]
            inner_nid = n[innermost]
        else:
            inner_nid = np.empty(0, dtype=np.int64)

        # Exclusive: chronological per-counter fold over each innermost
        # region's charges (sum over a list of Python floats is the same
        # sequential left-fold the profiler's += chain performs).
        for m, (loc, varr) in per_counter.items():
            nids = inner_nid if loc is None else inner_nid[loc]
            for nid in np.nonzero(np.bincount(nids, minlength=n_names))[0].tolist():
                total = sum(varr[nids == nid].tolist())
                if total:
                    key = (names[nid], cpu)
                    store = exclusive.get(key)
                    if store is None:
                        store = exclusive[key] = _vec({})
                    store._values[m] = total

        # Inclusive: each instance sums every charge inside its interval
        # (any depth); per (event, counter) the instance subtotals fold in
        # exit order, exactly like Profiler.exit's copy-then-+= sequence.
        # Both folds stay sequential left-folds: same-length instance
        # segments fold via elementwise numpy adds (each lane is its own
        # left fold, bitwise-identical to the scalar chain), odd-size
        # segments via CPython's sequential ``sum``.
        inc_folds: dict[tuple[int, str], float] = {}
        if len(inst_e) and per_counter:
            ch_lo = np.searchsorted(charges, inst_e, side="left")
            ch_hi = np.searchsorted(charges, inst_x, side="left")
            for m, (loc, varr) in per_counter.items():
                if loc is None:
                    i0s, i1s = ch_lo, ch_hi
                else:
                    i0s = np.searchsorted(loc, ch_lo, side="left")
                    i1s = np.searchsorted(loc, ch_hi, side="left")
                counts = i1s - i0s
                sub = np.zeros(len(counts), dtype=np.float64)
                vlist = None
                cnt_hist = np.bincount(counts)
                for kcnt in np.nonzero(cnt_hist)[0].tolist():
                    if kcnt == 0:
                        continue
                    sel2 = np.nonzero(counts == kcnt)[0]
                    if kcnt <= 64:
                        base = i0s[sel2]
                        acc = varr[base]
                        for j in range(1, kcnt):
                            acc = acc + varr[base + j]
                        sub[sel2] = acc
                    else:
                        if vlist is None:
                            vlist = varr.tolist()
                        for ii in sel2.tolist():
                            sub[ii] = sum(vlist[i0s[ii]:i1s[ii]])
                have = np.nonzero(counts > 0)[0]
                nids_i = inst_nid[have]
                subs_i = sub[have]
                for nid in np.nonzero(
                    np.bincount(nids_i, minlength=n_names)
                )[0].tolist():
                    inc_folds[(nid, m)] = sum(subs_i[nids_i == nid].tolist())
        ev_metrics: dict[int, list[str]] = {}
        for nid, m in inc_folds:
            ev_metrics.setdefault(nid, []).append(m)
        for nid, ms in ev_metrics.items():
            inclusive[(names[nid], cpu)] = _vec(
                {m: inc_folds[(nid, m)] for m in ms if inc_folds[(nid, m)]}
            )

        # Virtual clock: the sequential fold of TIME/1e6 over the charges.
        # Only CPUs that opened/charged regions get a _CPUState — a CPU
        # seen solely through CALLS events never touches _cpu() in the
        # reference replay and must not become a thread in to_trial.
        if len(enters) or len(exits) or len(charges):
            state = _CPUState()
            tpos = per_counter.get(C.TIME)
            if tpos is not None:
                # elementwise /1e6 matches the scalar divisions; the fold
                # over the quotients stays CPython-sequential
                state.clock_seconds = sum((tpos[1] / 1e6).tolist())
            prof._cpus[cpu] = state

    prof._exclusive = exclusive
    prof._inclusive = inclusive
    prof._calls = calls
    prof._subrs = subrs
    prof._edges = edges
    return prof


# -- wait-state detection --------------------------------------------------

def _rows_of_kind(trace: T.EventTrace, *kinds: str) -> "np.ndarray":
    """Row indices of the given event kinds, straight off the kind column —
    scanning a million-event trace for its few hundred wait/collective rows
    never materializes the enter/exit/charge records."""
    want = np.asarray([T.KIND_CODES[k] for k in kinds], dtype=np.int16)
    return np.nonzero(np.isin(trace.columns()["kind"], want))[0]


@dataclass(frozen=True)
class WaitState:
    """One diagnosed wait-state instance.

    ``rank`` is the *offending* participant (the late sender, the late
    receiver, the barrier straggler); ``victim`` is the participant that
    paid the most wait time.  For OpenMP constructs, ranks are thread
    indices and ``construct`` is ``"openmp"``.
    """

    kind: str  # "late-sender" | "late-receiver" | "barrier-straggler"
    rank: int
    victim: int
    wait_seconds: float
    event: str
    t_start: float
    t_end: float
    construct: str = "mpi"


def _barrier_states(
    groups: dict, *, construct: str, min_wait: float
) -> list[WaitState]:
    out: list[WaitState] = []
    for (name, _seq), members in sorted(groups.items(), key=lambda kv: kv[0][1]):
        if len(members) < 2:
            continue
        straggler = max(members, key=lambda m: m["arrive"])
        worst = min(members, key=lambda m: m["arrive"])
        wait = straggler["arrive"] - worst["arrive"]
        if wait > min_wait:
            out.append(WaitState(
                kind="barrier-straggler",
                rank=straggler["rank"],
                victim=worst["rank"],
                wait_seconds=wait,
                event=name,
                t_start=worst["arrive"],
                t_end=straggler["arrive"],
                construct=construct,
            ))
    return out


def detect_wait_states(
    trace: T.EventTrace, *, min_wait_seconds: float = 1e-9
) -> list[WaitState]:
    """Scan a trace for late-sender / late-receiver / straggler patterns."""
    states: list[WaitState] = []
    mpi_groups: dict = {}
    omp_groups: dict = {}
    for i in _rows_of_kind(trace, T.WAIT, T.COLLECTIVE, T.BARRIER).tolist():
        ev = trace.event_at(i)
        if ev.kind == T.WAIT:
            rank = ev.get("rank")
            start = ev.get("start", ev.ts)
            end = ev.get("end", ev.ts)
            for req in ev.get("requests", ()):
                if req.get("kind") != "recv":
                    continue
                ready = req.get("ready_at")
                partner = req.get("partner")
                if ready is None or partner is None:
                    continue
                if ready - start > min_wait_seconds:
                    # Receiver blocked until the partner's message landed.
                    states.append(WaitState(
                        kind="late-sender",
                        rank=partner,
                        victim=rank,
                        wait_seconds=ready - start,
                        event=ev.name,
                        t_start=start,
                        t_end=min(ready, end),
                    ))
                elif start - ready > min_wait_seconds:
                    # Message sat fully transferred before the receiver
                    # entered its wait (the eager-protocol late-receiver
                    # symptom: the receiver itself is late).
                    states.append(WaitState(
                        kind="late-receiver",
                        rank=rank,
                        victim=partner,
                        wait_seconds=start - ready,
                        event=ev.name,
                        t_start=ready,
                        t_end=start,
                    ))
        elif ev.kind == T.COLLECTIVE:
            key = (ev.name, ev.get("seq"))
            mpi_groups.setdefault(key, []).append(
                {"rank": ev.get("rank"), "arrive": ev.get("arrive", ev.ts),
                 "release": ev.get("release", ev.ts), "cpu": ev.cpu}
            )
        elif ev.kind == T.BARRIER:
            key = (ev.name, ev.get("seq"))
            omp_groups.setdefault(key, []).append(
                {"rank": ev.get("thread"), "arrive": ev.get("arrive", ev.ts),
                 "release": ev.get("release", ev.ts), "cpu": ev.cpu}
            )
    states.extend(_barrier_states(
        mpi_groups, construct="mpi", min_wait=min_wait_seconds))
    states.extend(_barrier_states(
        omp_groups, construct="openmp", min_wait=min_wait_seconds))
    states.sort(key=lambda s: s.t_start)
    return states


def total_wait_by_rank(states: Sequence[WaitState]) -> dict[int, float]:
    """Total wait seconds *caused* per offending rank."""
    totals: dict[int, float] = {}
    for s in states:
        totals[s.rank] = totals.get(s.rank, 0.0) + s.wait_seconds
    return totals


# -- critical path ---------------------------------------------------------

@dataclass(frozen=True)
class PathSegment:
    cpu: int
    event: str
    t_start: float
    t_end: float
    idle: bool

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start


@dataclass
class CriticalPathResult:
    """The rank-crossing chain of segments bounding the makespan."""

    segments: list[PathSegment]  # forward time order
    makespan: float

    @property
    def per_event_seconds(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.segments:
            if not seg.idle:
                out[seg.event] = out.get(seg.event, 0.0) + seg.seconds
        return out

    @property
    def compute_seconds(self) -> float:
        return sum(s.seconds for s in self.segments if not s.idle)

    @property
    def wait_seconds(self) -> float:
        return sum(s.seconds for s in self.segments if s.idle)

    @property
    def cpus_visited(self) -> list[int]:
        return sorted({s.cpu for s in self.segments})


@dataclass(frozen=True)
class _Blocking:
    """An interval during which a CPU was provably waiting on another."""

    start: float
    end: float
    origin_cpu: int
    origin_time: float


def _blocking_intervals(trace: T.EventTrace) -> dict[int, list[_Blocking]]:
    rank_cpu = {r: c for c, r in trace.rank_of_cpu().items()}
    out: dict[int, list[_Blocking]] = {}

    def add(cpu: int, b: _Blocking) -> None:
        out.setdefault(cpu, []).append(b)

    groups: dict = {}
    for i in _rows_of_kind(trace, T.WAIT, T.COLLECTIVE, T.BARRIER).tolist():
        ev = trace.event_at(i)
        if ev.kind == T.WAIT:
            start = ev.get("start", ev.ts)
            end = ev.get("end", ev.ts)
            if end - start <= 0:
                continue
            # The message that completed last is the one the wait was for.
            recvs = [r for r in ev.get("requests", ())
                     if r.get("kind") == "recv" and r.get("ready_at") is not None]
            if not recvs:
                continue
            last = max(recvs, key=lambda r: r["ready_at"])
            origin_cpu = rank_cpu.get(last.get("partner"))
            if origin_cpu is None:
                continue
            add(ev.cpu, _Blocking(start, end, origin_cpu,
                                  last.get("posted_at") or 0.0))
        elif ev.kind in (T.COLLECTIVE, T.BARRIER):
            groups.setdefault((ev.kind, ev.name, ev.get("seq")), []).append(ev)
    for members in groups.values():
        if len(members) < 2:
            continue
        straggler = max(members, key=lambda e: e.get("arrive", e.ts))
        s_arrive = straggler.get("arrive", straggler.ts)
        for ev in members:
            if ev is straggler:
                continue
            arrive = ev.get("arrive", ev.ts)
            release = ev.get("release", ev.ts)
            if release - arrive > 0:
                add(ev.cpu, _Blocking(arrive, release, straggler.cpu, s_arrive))
    for lst in out.values():
        lst.sort(key=lambda b: b.end)
    return out


def critical_path(trace: T.EventTrace) -> CriticalPathResult:
    """Extract the critical path by walking backward from the last CPU to
    finish, hopping to the blocking CPU whenever the walk lands in an idle
    interval caused by a message or barrier dependency."""
    eps = 1e-12
    charges: dict[int, list[tuple[float, float, str, bool]]] = {}
    cols = trace.columns()
    ts_col, cpu_col, nid_col = cols["ts"], cols["cpu"], cols["name_id"]
    names = trace.name_table()
    attrs_col = trace.attrs_column()
    for i in _rows_of_kind(trace, T.CHARGE).tolist():
        a = attrs_col[i]
        sec = a.get("seconds", 0.0) if a else 0.0
        ts = float(ts_col[i])
        charges.setdefault(int(cpu_col[i]), []).append(
            (ts, ts + sec, names[nid_col[i]], bool(a.get("idle")) if a else False)
        )
    if not charges:
        return CriticalPathResult([], 0.0)
    blocking = _blocking_intervals(trace)
    clocks = trace.final_clocks()
    cpu = max(clocks, key=lambda c: clocks[c])
    t = clocks[cpu]
    makespan = t
    raw: list[PathSegment] = []
    budget = 4 * sum(len(v) for v in charges.values()) + 16
    while t > eps and budget > 0:
        budget -= 1
        lane = charges.get(cpu, [])
        # Last charge starting strictly before t: charges tile each CPU's
        # clock, so t falls inside (start, end] of exactly one of them.
        lo, hi = 0, len(lane)
        while lo < hi:
            mid = (lo + hi) // 2
            if lane[mid][0] < t - eps:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            break
        start, end, name, idle = lane[lo - 1]
        if idle:
            jump = None
            for b in blocking.get(cpu, ()):
                if b.start - eps <= t <= b.end + eps and b.origin_time < t - eps:
                    jump = b
                    break
            if jump is not None:
                hop = max(start, jump.origin_time)
                raw.append(PathSegment(cpu, name, hop, t, True))
                cpu, t = jump.origin_cpu, jump.origin_time
                continue
            raw.append(PathSegment(cpu, name, start, t, True))
        else:
            raw.append(PathSegment(cpu, name, start, t, False))
        t = start
    # merge adjacent same-(cpu, event, idle) segments, forward order
    raw.reverse()
    merged: list[PathSegment] = []
    for seg in raw:
        if seg.seconds <= eps:
            continue
        if (merged
                and merged[-1].cpu == seg.cpu
                and merged[-1].event == seg.event
                and merged[-1].idle == seg.idle
                and abs(merged[-1].t_end - seg.t_start) <= eps):
            merged[-1] = PathSegment(
                seg.cpu, seg.event, merged[-1].t_start, seg.t_end, seg.idle
            )
        else:
            merged.append(seg)
    return CriticalPathResult(merged, makespan)


# -- interval imbalance ----------------------------------------------------

@dataclass(frozen=True)
class ImbalanceTimeline:
    """Per-interval imbalance ratios for one event across snapshots."""

    event: str
    ratios: tuple[float, ...]
    labels: tuple  # interval labels (may contain None)
    #: The event's mean share of total exclusive time across intervals —
    #: a severity proxy, like the profile rules' severity.
    mean_share: float

    @property
    def first_ratio(self) -> float:
        return self.ratios[0]

    @property
    def last_ratio(self) -> float:
        return self.ratios[-1]

    @property
    def max_ratio(self) -> float:
        return max(self.ratios)

    @property
    def worst_interval(self) -> int:
        return int(np.argmax(self.ratios))

    @property
    def growth(self) -> float:
        """last/first ratio; inf when imbalance appears from nothing."""
        if self.first_ratio > 0:
            return self.last_ratio / self.first_ratio
        return float("inf") if self.last_ratio > 0 else 1.0

    @property
    def slope(self) -> float:
        """Least-squares slope of ratio over interval index."""
        if len(self.ratios) < 2:
            return 0.0
        x = np.arange(len(self.ratios), dtype=float)
        return float(np.polyfit(x, np.asarray(self.ratios), 1)[0])

    @property
    def trend(self) -> str:
        if len(self.ratios) >= 2 and self.slope > 0 and \
                self.last_ratio >= 1.2 * self.first_ratio:
            return "growing"
        if len(self.ratios) >= 2 and self.slope < 0 and \
                self.last_ratio <= 0.8 * self.first_ratio:
            return "shrinking"
        return "steady"


def interval_imbalance(
    snapshots: Sequence[Trial],
    *,
    metric: str = C.TIME,
    min_share: float = 0.0,
) -> list[ImbalanceTimeline]:
    """Compute per-event imbalance ratios over a snapshot sequence.

    For each flat event, each interval contributes stddev/mean of the
    event's exclusive ``metric`` across threads — the paper's imbalance
    statistic, now resolved in time.  Events whose share of total time is
    at most ``min_share`` are dropped.
    """
    if not snapshots:
        raise AnalysisError("interval_imbalance: no snapshots")
    n = len(snapshots)
    # pre-sized rows keep interval alignment for events that only appear
    # partway through the run (absent intervals contribute ratio/share 0)
    ratio_rows: dict[str, list[float]] = {}
    share_rows: dict[str, list[float]] = {}
    labels = []
    for i, trial in enumerate(snapshots):
        labels.append((trial.metadata.get("interval") or {}).get("label"))
        excl = trial.exclusive_array(metric)
        total = float(excl.sum())
        # one vectorized pass per snapshot instead of three reductions per
        # event row
        means = excl.mean(axis=1)
        stds = excl.std(axis=1)
        sums = excl.sum(axis=1)
        for e, event in enumerate(trial.events):
            if event.is_callpath:
                continue
            mean = float(means[e])
            ratio = float(stds[e]) / mean if mean > 0 else 0.0
            share = float(sums[e]) / total if total > 0 else 0.0
            ratio_rows.setdefault(event.name, [0.0] * n)[i] = ratio
            share_rows.setdefault(event.name, [0.0] * n)[i] = share
    out = []
    for name, ratios in ratio_rows.items():
        shares = share_rows[name]
        mean_share = float(np.mean(shares)) if shares else 0.0
        if mean_share <= min_share:
            continue
        out.append(ImbalanceTimeline(
            event=name,
            ratios=tuple(ratios),
            labels=tuple(labels),
            mean_share=mean_share,
        ))
    out.sort(key=lambda tl: tl.mean_share, reverse=True)
    return out


# -- operation wrappers ----------------------------------------------------

class _TraceOperation:
    """Minimal operation shim for trace inputs (not PerformanceResults):
    same ``process_data``/``processData`` contract as
    :class:`PerformanceAnalysisOperation`, wrapped in a telemetry span."""

    def __init__(self) -> None:
        self.outputs: list = []

    def _run(self) -> list:
        raise NotImplementedError

    def process_data(self) -> list:
        if observe.enabled():
            with observe.span(f"operation.{type(self).__name__}") as sp:
                self.outputs = self._run()
                sp.set(outputs=len(self.outputs))
        else:
            self.outputs = self._run()
        return self.outputs

    def processData(self) -> _ResultList:
        return _ResultList(self.process_data())


class TraceToProfileOperation(_TraceOperation):
    """Reduce an event trace to a profile result (TAU's trace2profile)."""

    def __init__(
        self,
        trace: T.EventTrace,
        machine: Machine,
        *,
        name: str = "replayed",
        callpaths: bool = False,
    ) -> None:
        super().__init__()
        self.trace = trace
        self.machine = machine
        self.name = name
        self.callpaths = callpaths

    def _run(self) -> list[PerformanceResult]:
        prof = replay_trace(self.trace, self.machine, callpaths=self.callpaths)
        return [trial_result(prof.to_trial(self.name))]


class WaitStateOperation(_TraceOperation):
    """Detect late-sender / late-receiver / straggler wait states."""

    def __init__(
        self, trace: T.EventTrace, *, min_wait_seconds: float = 1e-9
    ) -> None:
        super().__init__()
        self.trace = trace
        self.min_wait_seconds = min_wait_seconds

    def _run(self) -> list[WaitState]:
        return detect_wait_states(
            self.trace, min_wait_seconds=self.min_wait_seconds
        )


class CriticalPathOperation(_TraceOperation):
    """Extract the cross-rank critical path from a trace."""

    def __init__(self, trace: T.EventTrace) -> None:
        super().__init__()
        self.trace = trace

    def _run(self) -> list[CriticalPathResult]:
        return [critical_path(self.trace)]


class PhaseImbalanceOperation(_TraceOperation):
    """Per-interval imbalance timelines over snapshot sub-trials."""

    def __init__(
        self,
        snapshots: Sequence[Trial],
        *,
        metric: str = C.TIME,
        min_share: float = 0.0,
    ) -> None:
        super().__init__()
        self.snapshots = list(snapshots)
        self.metric = metric
        self.min_share = min_share

    def _run(self) -> list[ImbalanceTimeline]:
        return interval_imbalance(
            self.snapshots, metric=self.metric, min_share=self.min_share
        )
