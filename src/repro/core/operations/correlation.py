"""Across-thread correlation between events (``CorrelationOperation``).

The MSA load-imbalance diagnosis needs the per-thread correlation between
the time spent in an inner loop and the time spent in its enclosing region:
a strong *negative* correlation means threads that finish the inner loop
early sit in the outer region's barrier — the signature of imbalance rather
than uniformly-slow code.

``process_data`` produces an events × events Pearson correlation matrix for
one metric (stored as a result whose "threads" axis is the second event
axis); :func:`event_correlation` answers the single-pair question directly.
"""

from __future__ import annotations

import numpy as np

from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson r with the degenerate-variance case defined as 0."""
    if x.shape != y.shape:
        raise AnalysisError("correlation inputs must have equal length")
    if x.size < 2:
        return 0.0
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def event_correlation(
    result: PerformanceResult,
    event_a: str,
    event_b: str,
    metric: str,
    *,
    inclusive: bool = False,
) -> float:
    """Pearson correlation of two events' per-thread values."""
    if not result.has_event(event_a) or not result.has_event(event_b):
        raise AnalysisError(
            f"correlation: unknown event ({event_a!r} or {event_b!r})"
        )
    if not result.has_metric(metric):
        raise AnalysisError(f"correlation: no metric {metric!r}")
    a = result.event_row(event_a, metric, inclusive=inclusive)
    b = result.event_row(event_b, metric, inclusive=inclusive)
    return _pearson(a, b)


class CorrelationOperation(PerformanceAnalysisOperation):
    """Full events × events correlation matrix over threads, one metric."""

    def __init__(
        self,
        input_result: PerformanceResult,
        metric: str,
        *,
        inclusive: bool = False,
    ) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        if input_result.thread_count < 2:
            raise AnalysisError(
                "correlation needs at least 2 threads of data "
                f"(got {input_result.thread_count})"
            )
        self.metric = metric
        self.inclusive = inclusive

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        arr = (
            src.inclusive(self.metric) if self.inclusive else src.exclusive(self.metric)
        )
        n = len(src.events)
        matrix = np.zeros((n, n))
        stds = arr.std(axis=1)
        for i in range(n):
            matrix[i, i] = 1.0 if stds[i] > 0 else 0.0
            for j in range(i + 1, n):
                r = _pearson(arr[i], arr[j])
                matrix[i, j] = matrix[j, i] = r
        out = (
            PerformanceResult.like(
                src, name=f"{src.name}:corr({self.metric})", n_threads=n
            )
            .set_metric(f"correlation:{self.metric}", matrix, derived=True)
            .build()
        )
        self.outputs = [out]
        return self.outputs

    def matrix(self) -> np.ndarray:
        if not self.outputs:
            self.process_data()
        return self.outputs[0].exclusive(f"correlation:{self.metric}")

    def correlation(self, event_a: str, event_b: str) -> float:
        m = self.matrix()
        src = self.inputs[0]
        return float(
            m[src.trial.event_index(event_a), src.trial.event_index(event_b)]
        )
