"""Scaling analysis across a family of trials (``ScalabilityOperation``).

Given trials of the same application at increasing parallelism, computes
per-event and whole-program speedup and parallel efficiency relative to the
smallest configuration — the analysis behind Figs. 4(b), 5(a), and 5(b).

Speedup convention (the paper plots "relative speedup/efficiency"):

* whole-program: ``S(p) = T_base_total / T_p_total`` where T is the main
  event's mean inclusive time, scaled by the baseline thread count so a
  1-thread baseline gives classic speedup.
* per-event: same formula on each event's *mean exclusive* time — an event
  that does not get faster with threads (like the sequential
  ``exchange_var``) shows a flat per-event speedup curve.
* efficiency: ``E(p) = S(p) * base_threads / p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...machine import counters as C
from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation
from .statistics import BasicStatisticsOperation


@dataclass
class ScalingSeries:
    """Speedup/efficiency series for one event (or the whole program)."""

    name: str
    threads: list[int]
    times: list[float]
    speedup: list[float]
    efficiency: list[float]

    def as_rows(self) -> list[tuple[int, float, float, float]]:
        return list(zip(self.threads, self.times, self.speedup, self.efficiency))


class ScalabilityOperation(PerformanceAnalysisOperation):
    """Compute scaling series from trials ordered by parallelism.

    Parameters
    ----------
    inputs:
        PerformanceResults at increasing thread counts (thread counts are
        read from the results themselves).
    metric:
        Time-like metric to scale (defaults to TIME).
    """

    def __init__(self, inputs, metric: str = C.TIME) -> None:
        super().__init__(inputs)
        if len(self.inputs) < 2:
            raise AnalysisError("scalability needs at least two trials")
        for r in self.inputs:
            self._require_metric(r, metric)
        counts = [r.thread_count for r in self.inputs]
        if sorted(counts) != counts or len(set(counts)) != len(counts):
            raise AnalysisError(
                f"trials must be ordered by strictly increasing thread count, got {counts}"
            )
        self.metric = metric

    # -- helpers ----------------------------------------------------------
    def _mean_results(self) -> list[PerformanceResult]:
        return [BasicStatisticsOperation(r).mean() for r in self.inputs]

    def program_series(self) -> ScalingSeries:
        """Whole-program speedup/efficiency from the main event."""
        means = self._mean_results()
        threads = [r.thread_count for r in self.inputs]
        times = []
        for m, src in zip(means, self.inputs):
            main = src.main_event()
            times.append(float(m.event_row(main, self.metric, inclusive=True)[0]))
        return self._series("program", threads, times)

    def event_series(self, event: str, *, inclusive: bool = False) -> ScalingSeries:
        """Per-event speedup/efficiency (mean exclusive time by default)."""
        means = self._mean_results()
        threads = [r.thread_count for r in self.inputs]
        times = []
        for m in means:
            if not m.has_event(event):
                raise AnalysisError(f"event {event!r} missing from {m.name!r}")
            times.append(float(m.event_row(event, self.metric, inclusive=inclusive)[0]))
        return self._series(event, threads, times)

    def _series(self, name: str, threads: list[int], times: list[float]) -> ScalingSeries:
        base_t, base_time = threads[0], times[0]
        if base_time <= 0:
            raise AnalysisError(f"non-positive baseline time for {name!r}")
        speedup = [base_time / t if t > 0 else float("inf") for t in times]
        efficiency = [s * base_t / p for s, p in zip(speedup, threads)]
        return ScalingSeries(name, threads, times, speedup, efficiency)

    def weak_efficiency_series(self) -> ScalingSeries:
        """Weak-scaling view: per-processor work is constant across the
        trials (the caller grew the problem with the machine), so ideal
        time is flat and efficiency is ``T_base / T_p``.

        The returned series reports that efficiency in both the
        ``speedup`` slot (scaled ideal: ``p × T_base / T_p``) and the
        ``efficiency`` slot (``T_base / T_p``).
        """
        means = self._mean_results()
        threads = [r.thread_count for r in self.inputs]
        times = []
        for m, src in zip(means, self.inputs):
            main = src.main_event()
            times.append(float(m.event_row(main, self.metric, inclusive=True)[0]))
        base_time = times[0]
        if base_time <= 0:
            raise AnalysisError("non-positive baseline time")
        efficiency = [base_time / t if t > 0 else float("inf") for t in times]
        speedup = [e * p / threads[0] for e, p in zip(efficiency, threads)]
        return ScalingSeries("program (weak)", threads, times, speedup, efficiency)

    def all_event_series(self, *, min_fraction: float = 0.0) -> dict[str, ScalingSeries]:
        """Series for every event holding at least ``min_fraction`` of the
        largest trial's total time."""
        means = self._mean_results()
        last_mean = means[-1]
        main = self.inputs[-1].main_event()
        total = float(last_mean.event_row(main, self.metric, inclusive=True)[0])
        out: dict[str, ScalingSeries] = {}
        shared = set(self.inputs[0].events)
        for r in self.inputs[1:]:
            shared &= set(r.events)
        for event in self.inputs[-1].events:
            if event not in shared:
                continue
            frac = (
                float(last_mean.event_row(event, self.metric)[0]) / total
                if total > 0
                else 0.0
            )
            if frac >= min_fraction:
                out[event] = self.event_series(event)
        return out

    def process_data(self) -> list[PerformanceResult]:
        """Emit one single-thread result per input trial holding the
        program speedup/efficiency as derived metrics (shape-compatible
        with downstream fact generation)."""
        series = self.program_series()
        outputs = []
        for i, src in enumerate(self.inputs):
            builder = PerformanceResult.like(
                src,
                name=f"{src.name}:scaling",
                events=[src.main_event()],
                n_threads=1,
            )
            builder.set_metric(
                "speedup", np.array([[series.speedup[i]]]), derived=True
            )
            builder.set_metric(
                "efficiency", np.array([[series.efficiency[i]]]), derived=True
            )
            outputs.append(builder.build())
        self.outputs = outputs
        return outputs
