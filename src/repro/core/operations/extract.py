"""Subsetting operations: events, metrics, thread ranges, top-X.

PerfExplorer's drill-down workflow repeatedly narrows results — to the
significant events, to one metric, to one rank's threads — before running
heavier analyses.  These operations implement that narrowing.
"""

from __future__ import annotations

import numpy as np

from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation


class ExtractEventOperation(PerformanceAnalysisOperation):
    """Keep only the named events (order preserved as given)."""

    def __init__(self, input_result: PerformanceResult, events: list[str]) -> None:
        super().__init__(input_result)
        if not events:
            raise AnalysisError("ExtractEventOperation: empty event list")
        missing = [e for e in events if not input_result.has_event(e)]
        if missing:
            raise AnalysisError(f"ExtractEventOperation: unknown events {missing}")
        self.events = list(events)

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        idx = [src.trial.event_index(e) for e in self.events]
        builder = PerformanceResult.like(
            src, name=f"{src.name}:events", events=self.events
        )
        for metric in src.metrics:
            builder.set_metric(
                metric, src.exclusive(metric)[idx], src.inclusive(metric)[idx]
            )
        builder.set_calls(src.calls()[idx])
        self.outputs = [builder.build()]
        return self.outputs


class ExtractMetricOperation(PerformanceAnalysisOperation):
    """Keep only the named metrics."""

    def __init__(self, input_result: PerformanceResult, metrics: list[str]) -> None:
        super().__init__(input_result)
        if not metrics:
            raise AnalysisError("ExtractMetricOperation: empty metric list")
        for m in metrics:
            self._require_metric(input_result, m)
        self.metrics = list(metrics)

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        builder = PerformanceResult.like(
            src, name=f"{src.name}:metrics", metrics=self.metrics
        )
        for metric in self.metrics:
            builder.set_metric(metric, src.exclusive(metric), src.inclusive(metric))
        builder.set_calls(src.calls())
        self.outputs = [builder.build()]
        return self.outputs


class ExtractRankOperation(PerformanceAnalysisOperation):
    """Keep a contiguous range of threads [first, last]."""

    def __init__(self, input_result: PerformanceResult, first: int, last: int) -> None:
        super().__init__(input_result)
        n = input_result.thread_count
        if not (0 <= first <= last < n):
            raise AnalysisError(
                f"ExtractRankOperation: bad range [{first},{last}] for {n} threads"
            )
        self.first, self.last = first, last

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        sl = slice(self.first, self.last + 1)
        builder = PerformanceResult.like(
            src,
            name=f"{src.name}:ranks[{self.first}:{self.last}]",
            n_threads=self.last - self.first + 1,
        )
        for metric in src.metrics:
            builder.set_metric(
                metric, src.exclusive(metric)[:, sl], src.inclusive(metric)[:, sl]
            )
        builder.set_calls(src.calls()[:, sl])
        self.outputs = [builder.build()]
        return self.outputs


class TopXEvents(PerformanceAnalysisOperation):
    """The X events with the largest mean value of one metric.

    Sorting uses mean exclusive values across threads, descending — the
    "where does the time go" question every drill-down starts with.
    """

    def __init__(self, input_result: PerformanceResult, metric: str, x: int) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        if x < 1:
            raise AnalysisError("TopXEvents: x must be >= 1")
        self.metric = metric
        self.x = x

    def ranked_events(self) -> list[str]:
        src = self.inputs[0]
        means = src.exclusive(self.metric).mean(axis=1)
        order = np.argsort(-means, kind="stable")
        return [src.events[i] for i in order[: self.x]]

    def process_data(self) -> list[PerformanceResult]:
        keep = self.ranked_events()
        self.outputs = ExtractEventOperation(self.inputs[0], keep).process_data()
        return self.outputs


class TopXPercentEvents(PerformanceAnalysisOperation):
    """Smallest set of events covering ``percent`` of a metric's total."""

    def __init__(
        self, input_result: PerformanceResult, metric: str, percent: float
    ) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        if not 0 < percent <= 100:
            raise AnalysisError("TopXPercentEvents: percent must be in (0, 100]")
        self.metric = metric
        self.percent = percent

    def ranked_events(self) -> list[str]:
        src = self.inputs[0]
        means = src.exclusive(self.metric).mean(axis=1)
        total = means.sum()
        if total <= 0:
            return [src.events[0]]
        order = np.argsort(-means, kind="stable")
        keep = []
        covered = 0.0
        for i in order:
            keep.append(src.events[i])
            covered += means[i]
            if covered / total * 100.0 >= self.percent:
                break
        return keep

    def process_data(self) -> list[PerformanceResult]:
        keep = self.ranked_events()
        self.outputs = ExtractEventOperation(self.inputs[0], keep).process_data()
        return self.outputs
