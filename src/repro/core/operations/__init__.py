"""PerfExplorer analysis operations.

Each module provides one family of transformations over
:class:`~repro.core.result.PerformanceResult` objects; see
:mod:`repro.core.script` for the flat scripting facade.
"""

from .base import PerformanceAnalysisOperation
from .clustering import KMeansOperation, PCAOperation, kmeans
from .comparison import DifferenceOperation, MergeTrialsOperation, TrialRatioOperation
from .correlation import CorrelationOperation, event_correlation
from .derive import DeriveMetricOperation, ScaleMetricOperation, derive_chain
from .extract import (
    ExtractEventOperation,
    ExtractMetricOperation,
    ExtractRankOperation,
    TopXEvents,
    TopXPercentEvents,
)
from .scalability import ScalabilityOperation, ScalingSeries
from .statistics import (
    BasicStatisticsOperation,
    RatioOperation,
    trial_mean_result,
    trial_total_result,
)
from .tracing import (
    CriticalPathOperation,
    CriticalPathResult,
    ImbalanceTimeline,
    PhaseImbalanceOperation,
    TraceToProfileOperation,
    WaitState,
    WaitStateOperation,
    critical_path,
    detect_wait_states,
    interval_imbalance,
    replay_trace,
    total_wait_by_rank,
)

__all__ = [
    "BasicStatisticsOperation",
    "CorrelationOperation",
    "CriticalPathOperation",
    "CriticalPathResult",
    "ImbalanceTimeline",
    "PhaseImbalanceOperation",
    "TraceToProfileOperation",
    "WaitState",
    "WaitStateOperation",
    "DeriveMetricOperation",
    "DifferenceOperation",
    "ExtractEventOperation",
    "ExtractMetricOperation",
    "ExtractRankOperation",
    "KMeansOperation",
    "MergeTrialsOperation",
    "PCAOperation",
    "PerformanceAnalysisOperation",
    "RatioOperation",
    "ScalabilityOperation",
    "ScaleMetricOperation",
    "ScalingSeries",
    "TopXEvents",
    "TopXPercentEvents",
    "TrialRatioOperation",
    "critical_path",
    "derive_chain",
    "detect_wait_states",
    "event_correlation",
    "interval_imbalance",
    "kmeans",
    "replay_trace",
    "total_wait_by_rank",
    "trial_mean_result",
    "trial_total_result",
]
