"""PerfExplorer analysis operations.

Each module provides one family of transformations over
:class:`~repro.core.result.PerformanceResult` objects; see
:mod:`repro.core.script` for the flat scripting facade.
"""

from .base import PerformanceAnalysisOperation
from .clustering import KMeansOperation, PCAOperation, kmeans
from .comparison import DifferenceOperation, MergeTrialsOperation, TrialRatioOperation
from .correlation import CorrelationOperation, event_correlation
from .derive import DeriveMetricOperation, ScaleMetricOperation, derive_chain
from .extract import (
    ExtractEventOperation,
    ExtractMetricOperation,
    ExtractRankOperation,
    TopXEvents,
    TopXPercentEvents,
)
from .scalability import ScalabilityOperation, ScalingSeries
from .statistics import (
    BasicStatisticsOperation,
    RatioOperation,
    trial_mean_result,
    trial_total_result,
)

__all__ = [
    "BasicStatisticsOperation",
    "CorrelationOperation",
    "DeriveMetricOperation",
    "DifferenceOperation",
    "ExtractEventOperation",
    "ExtractMetricOperation",
    "ExtractRankOperation",
    "KMeansOperation",
    "MergeTrialsOperation",
    "PCAOperation",
    "PerformanceAnalysisOperation",
    "RatioOperation",
    "ScalabilityOperation",
    "ScaleMetricOperation",
    "ScalingSeries",
    "TopXEvents",
    "TopXPercentEvents",
    "TrialRatioOperation",
    "derive_chain",
    "event_correlation",
    "kmeans",
    "trial_mean_result",
    "trial_total_result",
]
