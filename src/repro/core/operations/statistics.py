"""Across-thread statistics (PerfExplorer's ``BasicStatisticsOperation``).

Collapses the thread axis to a single synthetic thread per statistic —
mean, standard deviation, min, max, total — returning one result per
statistic in that order.  The mean result is what the paper's
``TrialMeanResult`` loads directly.

Also provides :class:`RatioOperation` (stddev/mean per event — the
imbalance statistic of §III.A) and the :func:`trial_mean_result` /
:func:`trial_total_result` conveniences used by the script API.
"""

from __future__ import annotations

import numpy as np

from ...perfdmf import Trial
from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation

STAT_MEAN = "mean"
STAT_STDDEV = "stddev"
STAT_MIN = "min"
STAT_MAX = "max"
STAT_TOTAL = "total"
STAT_ORDER = (STAT_MEAN, STAT_STDDEV, STAT_MIN, STAT_MAX, STAT_TOTAL)

_REDUCERS = {
    STAT_MEAN: lambda a: a.mean(axis=1, keepdims=True),
    STAT_STDDEV: lambda a: a.std(axis=1, keepdims=True),
    STAT_MIN: lambda a: a.min(axis=1, keepdims=True),
    STAT_MAX: lambda a: a.max(axis=1, keepdims=True),
    STAT_TOTAL: lambda a: a.sum(axis=1, keepdims=True),
}


class BasicStatisticsOperation(PerformanceAnalysisOperation):
    """Reduce across threads; returns [mean, stddev, min, max, total]."""

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        outputs = []
        for stat in STAT_ORDER:
            reduce = _REDUCERS[stat]
            builder = PerformanceResult.like(
                src, name=f"{src.name}:{stat}", n_threads=1
            )
            for metric in src.metrics:
                builder.set_metric(
                    metric,
                    reduce(src.exclusive(metric)),
                    reduce(src.inclusive(metric)),
                )
            builder.set_calls(reduce(src.calls()))
            outputs.append(builder.build())
        self.outputs = outputs
        return outputs

    def mean(self) -> PerformanceResult:
        if not self.outputs:
            self.process_data()
        return self.outputs[STAT_ORDER.index(STAT_MEAN)]

    def stddev(self) -> PerformanceResult:
        if not self.outputs:
            self.process_data()
        return self.outputs[STAT_ORDER.index(STAT_STDDEV)]

    def total(self) -> PerformanceResult:
        if not self.outputs:
            self.process_data()
        return self.outputs[STAT_ORDER.index(STAT_TOTAL)]


class RatioOperation(PerformanceAnalysisOperation):
    """Per-event stddev/mean across threads, per metric.

    The output has one synthetic thread and the same metric names; a value
    of 0 means perfectly balanced, values above ~0.25 indicate the load
    imbalance the paper's rule fires on.  Events whose mean is zero get
    ratio 0 (no work, no imbalance).
    """

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        builder = PerformanceResult.like(
            src, name=f"{src.name}:stddev/mean", n_threads=1
        )
        for metric in src.metrics:
            ratios = []
            for arr in (src.exclusive(metric), src.inclusive(metric)):
                mean = arr.mean(axis=1, keepdims=True)
                std = arr.std(axis=1, keepdims=True)
                ratios.append(
                    np.divide(std, mean, out=np.zeros_like(std), where=mean != 0)
                )
            builder.set_metric(metric, ratios[0], ratios[1], derived=True)
        self.outputs = [builder.build()]
        return self.outputs


def trial_mean_result(trial: Trial) -> PerformanceResult:
    """Load a trial and reduce to the across-thread mean (the paper's
    ``TrialMeanResult(Utilities.getTrial(...))``)."""
    return BasicStatisticsOperation(PerformanceResult(trial)).mean()


def trial_total_result(trial: Trial) -> PerformanceResult:
    """Across-thread totals of a trial."""
    return BasicStatisticsOperation(PerformanceResult(trial)).total()
