"""Across-thread statistics (PerfExplorer's ``BasicStatisticsOperation``).

Collapses the thread axis to a single synthetic thread per statistic —
mean, standard deviation, min, max, total — returning one result per
statistic in that order.  The mean result is what the paper's
``TrialMeanResult`` loads directly.

Also provides :class:`RatioOperation` (stddev/mean per event — the
imbalance statistic of §III.A), the :func:`trial_mean_result` /
:func:`trial_total_result` conveniences used by the script API, and
:func:`welch_t` — the unequal-variance two-sample t-test the regression
sentinel (:mod:`repro.regress`) uses to separate real slowdowns from
run-to-run noise.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np

from ...perfdmf import Trial
from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation

STAT_MEAN = "mean"
STAT_STDDEV = "stddev"
STAT_MIN = "min"
STAT_MAX = "max"
STAT_TOTAL = "total"
STAT_ORDER = (STAT_MEAN, STAT_STDDEV, STAT_MIN, STAT_MAX, STAT_TOTAL)

_REDUCERS = {
    STAT_MEAN: lambda a: a.mean(axis=1, keepdims=True),
    STAT_STDDEV: lambda a: a.std(axis=1, keepdims=True),
    STAT_MIN: lambda a: a.min(axis=1, keepdims=True),
    STAT_MAX: lambda a: a.max(axis=1, keepdims=True),
    STAT_TOTAL: lambda a: a.sum(axis=1, keepdims=True),
}


class BasicStatisticsOperation(PerformanceAnalysisOperation):
    """Reduce across threads; returns [mean, stddev, min, max, total]."""

    def process_data(self) -> list[PerformanceResult]:
        self.outputs = [self._reduce(stat) for stat in STAT_ORDER]
        return self.outputs

    def _reduce(self, stat: str) -> PerformanceResult:
        src = self.inputs[0]
        reduce = _REDUCERS[stat]
        builder = PerformanceResult.like(
            src, name=f"{src.name}:{stat}", n_threads=1
        )
        for metric in src.metrics:
            builder.set_metric(
                metric,
                reduce(src.exclusive(metric)),
                reduce(src.inclusive(metric)),
            )
        builder.set_calls(reduce(src.calls()))
        return builder.build()

    def _single(self, stat: str) -> PerformanceResult:
        # Single-statistic accessors reduce just their own statistic: the
        # mean of a 10k-thread trial shouldn't pay for stddev/min/max/total.
        if self.outputs:
            return self.outputs[STAT_ORDER.index(stat)]
        cache = self.__dict__.setdefault("_single_cache", {})
        if stat not in cache:
            cache[stat] = self._reduce(stat)
        return cache[stat]

    def mean(self) -> PerformanceResult:
        return self._single(STAT_MEAN)

    def stddev(self) -> PerformanceResult:
        return self._single(STAT_STDDEV)

    def total(self) -> PerformanceResult:
        return self._single(STAT_TOTAL)


class RatioOperation(PerformanceAnalysisOperation):
    """Per-event stddev/mean across threads, per metric.

    The output has one synthetic thread and the same metric names; a value
    of 0 means perfectly balanced, values above ~0.25 indicate the load
    imbalance the paper's rule fires on.  Events whose mean is zero get
    ratio 0 (no work, no imbalance).
    """

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        builder = PerformanceResult.like(
            src, name=f"{src.name}:stddev/mean", n_threads=1
        )
        for metric in src.metrics:
            ratios = []
            for arr in (src.exclusive(metric), src.inclusive(metric)):
                mean = arr.mean(axis=1, keepdims=True)
                std = arr.std(axis=1, keepdims=True)
                ratios.append(
                    np.divide(std, mean, out=np.zeros_like(std), where=mean != 0)
                )
            builder.set_metric(metric, ratios[0], ratios[1], derived=True)
        self.outputs = [builder.build()]
        return self.outputs


class WelchResult(NamedTuple):
    """Outcome of :func:`welch_t`.

    ``p_value`` is NaN when the test is inapplicable (fewer than two
    samples on either side); callers must then fall back to a pure
    threshold policy.
    """

    t_stat: float
    dof: float
    p_value: float

    @property
    def applicable(self) -> bool:
        return not math.isnan(self.p_value)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    TINY = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < TINY:
        d = TINY
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < TINY:
            d = TINY
        c = 1.0 + aa / c
        if abs(c) < TINY:
            c = TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < TINY:
            d = TINY
        c = 1.0 + aa / c
        if abs(c) < TINY:
            c = TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b) (stdlib only)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, dof: float) -> float:
    """Two-sided survival probability of Student's t at ``|t|``."""
    if dof <= 0 or math.isnan(t):
        return float("nan")
    if math.isinf(t):
        return 0.0
    return _betainc(dof / 2.0, 0.5, dof / (dof + t * t))


def welch_t(a, b) -> WelchResult:
    """Welch's unequal-variance t-test between two sample vectors.

    Returns :class:`WelchResult` with the two-sided p-value.  Degenerate
    inputs follow the conventions the regression detector needs:

    * fewer than two samples on either side → ``p_value = NaN``
      (inapplicable — threshold policy decides alone),
    * both variances zero with equal means → ``t = 0, p = 1``,
    * both variances zero with different means → ``t = ±inf, p = 0``.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    na, nb = a.size, b.size
    if na < 2 or nb < 2:
        return WelchResult(float("nan"), 0.0, float("nan"))
    mean_a, mean_b = float(a.mean()), float(b.mean())
    var_a = float(a.var(ddof=1))
    var_b = float(b.var(ddof=1))
    sa, sb = var_a / na, var_b / nb
    denom = math.sqrt(sa + sb)
    diff = mean_a - mean_b
    if denom == 0.0:
        if diff == 0.0:
            return WelchResult(0.0, float(na + nb - 2), 1.0)
        return WelchResult(math.copysign(float("inf"), diff), float(na + nb - 2), 0.0)
    t = diff / denom
    # Welch–Satterthwaite degrees of freedom
    dof = (sa + sb) ** 2 / (
        sa * sa / (na - 1) + sb * sb / (nb - 1)
    )
    return WelchResult(t, dof, student_t_sf(t, dof))


def paired_t(a, b) -> WelchResult:
    """Paired t-test on per-position differences ``a - b``.

    The regression detector prefers this over :func:`welch_t` when baseline
    and candidate share their thread topology: across-thread spread is
    *structural* (imbalance), so pairing threads removes it and leaves only
    the change under test.  Falls back to Welch when the sample sizes
    differ.  Degenerate conventions match :func:`welch_t`.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.size != b.size:
        return welch_t(a, b)
    n = a.size
    if n < 2:
        return WelchResult(float("nan"), 0.0, float("nan"))
    d = a - b
    mean_d = float(d.mean())
    sd = float(d.std(ddof=1))
    dof = float(n - 1)
    if sd == 0.0:
        if mean_d == 0.0:
            return WelchResult(0.0, dof, 1.0)
        return WelchResult(math.copysign(float("inf"), mean_d), dof, 0.0)
    t = mean_d / (sd / math.sqrt(n))
    return WelchResult(t, dof, student_t_sf(t, dof))


def trial_mean_result(trial: Trial) -> PerformanceResult:
    """Load a trial and reduce to the across-thread mean (the paper's
    ``TrialMeanResult(Utilities.getTrial(...))``)."""
    return BasicStatisticsOperation(PerformanceResult(trial)).mean()


def trial_total_result(trial: Trial) -> PerformanceResult:
    """Across-thread totals of a trial."""
    return BasicStatisticsOperation(PerformanceResult(trial)).total()
