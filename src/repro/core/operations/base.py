"""Operation base class (PerfExplorer's ``PerformanceAnalysisOperation``).

Operations are small, composable transformations over
:class:`~repro.core.result.PerformanceResult` lists.  The contract mirrors
PerfExplorer 2.0's scripting interface: construct with inputs, call
``process_data()`` (alias ``processData()``), receive a list of results.
Each concrete operation documents what it appends to that list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from ..result import AnalysisError, PerformanceResult


class PerformanceAnalysisOperation(ABC):
    """Base class for all analysis operations."""

    def __init__(self, inputs: PerformanceResult | Sequence[PerformanceResult]) -> None:
        if isinstance(inputs, PerformanceResult):
            inputs = [inputs]
        inputs = list(inputs)
        if not inputs:
            raise AnalysisError(f"{type(self).__name__}: no input results")
        for r in inputs:
            if not isinstance(r, PerformanceResult):
                raise AnalysisError(
                    f"{type(self).__name__}: inputs must be PerformanceResult, "
                    f"got {type(r).__name__}"
                )
        self.inputs: list[PerformanceResult] = inputs
        self.outputs: list[PerformanceResult] = []

    @abstractmethod
    def process_data(self) -> list[PerformanceResult]:
        """Run the operation; returns (and stores in ``outputs``) results."""

    # camelCase alias used by ported PerfExplorer scripts
    def processData(self) -> "_ResultList":
        return _ResultList(self.process_data())

    def _require_metric(self, result: PerformanceResult, metric: str) -> None:
        if not result.has_metric(metric):
            raise AnalysisError(
                f"{type(self).__name__}: result {result.name!r} has no metric "
                f"{metric!r}; available: {result.metrics}"
            )

    def _require_same_shape(self, a: PerformanceResult, b: PerformanceResult) -> None:
        if a.events != b.events or a.thread_count != b.thread_count:
            raise AnalysisError(
                f"{type(self).__name__}: results {a.name!r} and {b.name!r} "
                "have different event sets or thread counts"
            )


class _ResultList(list):
    """List with Java-style ``.get(i)`` so Fig. 1's
    ``operator.processData().get(0)`` works unchanged."""

    def get(self, index: int) -> PerformanceResult:
        return self[index]
