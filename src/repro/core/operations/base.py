"""Operation base class (PerfExplorer's ``PerformanceAnalysisOperation``).

Operations are small, composable transformations over
:class:`~repro.core.result.PerformanceResult` lists.  The contract mirrors
PerfExplorer 2.0's scripting interface: construct with inputs, call
``process_data()`` (alias ``processData()``), receive a list of results.
Each concrete operation documents what it appends to that list.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from ... import observe
from ..result import AnalysisError, PerformanceResult


def _observed(fn):
    """Wrap a ``process_data`` implementation in a telemetry span.

    Disabled telemetry short-circuits to the raw call after one flag
    check, so the per-operation cost is negligible.  The span carries the
    operation class plus input/output shapes (result counts and the first
    input's events × threads) as attributes.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        if not observe.enabled():
            return fn(self, *args, **kwargs)
        first = self.inputs[0]
        with observe.span(
            f"operation.{type(self).__name__}",
            inputs=len(self.inputs),
            events=len(first.events),
            threads=first.thread_count,
        ) as sp:
            out = fn(self, *args, **kwargs)
            try:
                sp.set(outputs=len(out))
            except TypeError:
                pass
            return out

    wrapper._observed = True
    return wrapper


class PerformanceAnalysisOperation(ABC):
    """Base class for all analysis operations.

    Every concrete subclass's ``process_data`` is automatically wrapped in
    a :mod:`repro.observe` span (one span per operation run), so a traced
    analysis shows exactly which operations ran, on what shapes, for how
    long.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("process_data")
        if impl is not None and not getattr(impl, "_observed", False):
            cls.process_data = _observed(impl)

    def __init__(self, inputs: PerformanceResult | Sequence[PerformanceResult]) -> None:
        if isinstance(inputs, PerformanceResult):
            inputs = [inputs]
        inputs = list(inputs)
        if not inputs:
            raise AnalysisError(f"{type(self).__name__}: no input results")
        for r in inputs:
            if not isinstance(r, PerformanceResult):
                raise AnalysisError(
                    f"{type(self).__name__}: inputs must be PerformanceResult, "
                    f"got {type(r).__name__}"
                )
        self.inputs: list[PerformanceResult] = inputs
        self.outputs: list[PerformanceResult] = []

    @abstractmethod
    def process_data(self) -> list[PerformanceResult]:
        """Run the operation; returns (and stores in ``outputs``) results."""

    # camelCase alias used by ported PerfExplorer scripts
    def processData(self) -> "_ResultList":
        return _ResultList(self.process_data())

    def _require_metric(self, result: PerformanceResult, metric: str) -> None:
        if not result.has_metric(metric):
            raise AnalysisError(
                f"{type(self).__name__}: result {result.name!r} has no metric "
                f"{metric!r}; available: {result.metrics}"
            )

    def _require_same_shape(self, a: PerformanceResult, b: PerformanceResult) -> None:
        if a.events != b.events or a.thread_count != b.thread_count:
            raise AnalysisError(
                f"{type(self).__name__}: results {a.name!r} and {b.name!r} "
                "have different event sets or thread counts"
            )


class _ResultList(list):
    """List with Java-style ``.get(i)`` so Fig. 1's
    ``operator.processData().get(0)`` works unchanged."""

    def get(self, index: int) -> PerformanceResult:
        return self[index]
