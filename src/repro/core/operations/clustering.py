"""Data-mining operations: k-means clustering and PCA.

PerfExplorer's original contribution was applying data-mining toolkits
(Weka, R) to parallel profiles — clustering threads by behaviour and
projecting onto principal components to find structure in large thread
counts.  Both algorithms are implemented here directly on NumPy, seeded and
deterministic.

The observation matrix is threads × events for one metric: each thread is
a point in "event-time space".  Clustering MPI ranks typically separates
e.g. boundary ranks from interior ranks; for the MSA study it separates
overloaded from underloaded threads.
"""

from __future__ import annotations

import numpy as np

from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation


def _observation_matrix(
    result: PerformanceResult, metric: str, *, normalize: bool
) -> np.ndarray:
    data = result.exclusive(metric).T.astype(float)  # threads × events
    if normalize:
        span = data.max(axis=0) - data.min(axis=0)
        span[span == 0] = 1.0
        data = (data - data.min(axis=0)) / span
    return data


def kmeans(
    data: np.ndarray, k: int, *, seed: int = 0, max_iter: int = 100
) -> tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding.

    Returns (labels, centroids, inertia).  Deterministic for a given seed.
    """
    n, d = data.shape
    if not 1 <= k <= n:
        raise AnalysisError(f"k={k} invalid for {n} observations")
    rng = np.random.default_rng(seed)
    # k-means++ initialization
    centroids = np.empty((k, d))
    centroids[0] = data[rng.integers(n)]
    closest_sq = ((data - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total == 0:
            centroids[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = closest_sq / total
        centroids[i] = data[rng.choice(n, p=probs)]
        dist_sq = ((data - centroids[i]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)

    labels = np.zeros(n, dtype=int)
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is constant
    # per row so the argmin only needs the cross and centroid terms.  This
    # keeps the iteration at an (n, k) matmul instead of materializing the
    # (n, k, d) difference cube.
    for _ in range(max_iter):
        dists = (centroids**2).sum(axis=1) - 2.0 * (data @ centroids.T)
        new_labels = dists.argmin(axis=1)
        if (new_labels == labels).all() and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = data[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    inertia = float(
        ((data - centroids[labels]) ** 2).sum()
    )
    return labels, centroids, inertia


class KMeansOperation(PerformanceAnalysisOperation):
    """Cluster threads by their per-event profile of one metric.

    Output: a result with one synthetic "thread" per cluster whose values
    are the cluster centroids; ``labels()`` gives thread → cluster.
    """

    def __init__(
        self,
        input_result: PerformanceResult,
        metric: str,
        k: int,
        *,
        seed: int = 0,
        normalize: bool = True,
    ) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        self.metric = metric
        self.k = k
        self.seed = seed
        self.normalize = normalize
        self._labels: np.ndarray | None = None
        self._inertia: float | None = None

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        data = _observation_matrix(src, self.metric, normalize=self.normalize)
        labels, centroids, inertia = kmeans(data, self.k, seed=self.seed)
        self._labels, self._inertia = labels, inertia
        builder = PerformanceResult.like(
            src, name=f"{src.name}:kmeans{self.k}({self.metric})", n_threads=self.k
        )
        builder.set_metric(self.metric, centroids.T, derived=True)
        self.outputs = [builder.build()]
        return self.outputs

    def labels(self) -> np.ndarray:
        if self._labels is None:
            self.process_data()
        return self._labels

    def inertia(self) -> float:
        if self._inertia is None:
            self.process_data()
        return self._inertia

    def cluster_sizes(self) -> list[int]:
        labels = self.labels()
        return [int((labels == c).sum()) for c in range(self.k)]


class PCAOperation(PerformanceAnalysisOperation):
    """Principal component analysis of the threads × events matrix.

    Output: component loadings as a result (components on the thread axis);
    ``scores()`` gives the thread projections, ``explained_variance_ratio()``
    the spectrum.
    """

    def __init__(
        self,
        input_result: PerformanceResult,
        metric: str,
        *,
        n_components: int = 2,
    ) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        max_rank = min(input_result.thread_count, len(input_result.events))
        if not 1 <= n_components <= max_rank:
            raise AnalysisError(
                f"n_components={n_components} invalid (max {max_rank})"
            )
        self.metric = metric
        self.n_components = n_components
        self._scores: np.ndarray | None = None
        self._ratio: np.ndarray | None = None

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        data = _observation_matrix(src, self.metric, normalize=False)
        centered = data - data.mean(axis=0)
        u, s, vt = np.linalg.svd(centered, full_matrices=False)
        # deterministic sign: make each component's largest loading positive
        for i in range(vt.shape[0]):
            j = np.argmax(np.abs(vt[i]))
            if vt[i, j] < 0:
                vt[i] = -vt[i]
                u[:, i] = -u[:, i]
        k = self.n_components
        self._scores = u[:, :k] * s[:k]
        var = s**2
        self._ratio = var / var.sum() if var.sum() > 0 else np.zeros_like(var)
        builder = PerformanceResult.like(
            src, name=f"{src.name}:pca({self.metric})", n_threads=k
        )
        builder.set_metric(f"loading:{self.metric}", vt[:k].T, derived=True)
        self.outputs = [builder.build()]
        return self.outputs

    def scores(self) -> np.ndarray:
        if self._scores is None:
            self.process_data()
        return self._scores

    def explained_variance_ratio(self) -> np.ndarray:
        if self._ratio is None:
            self.process_data()
        return self._ratio[: self.n_components]
