"""Cross-trial operations: difference, ratio-of-trials, merge.

The CUBE "performance algebra" the related-work section cites (difference /
merge / aggregation over profiles) exists inside PerfExplorer as cross-trial
operations; the GenIDLEST study uses them to compare the OpenMP
implementation against MPI ("higher number of L3 cache misses and latencies
in the OpenMP version, as opposed to the MPI version").
"""

from __future__ import annotations

import numpy as np

from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation


def _aligned_events(a: PerformanceResult, b: PerformanceResult) -> list[str]:
    """Events present in both results, in ``a``'s order."""
    bset = set(b.events)
    shared = [e for e in a.events if e in bset]
    if not shared:
        raise AnalysisError(
            f"results {a.name!r} and {b.name!r} share no events"
        )
    return shared


def _aligned_metrics(a: PerformanceResult, b: PerformanceResult) -> list[str]:
    bset = set(b.metrics)
    shared = [m for m in a.metrics if m in bset]
    if not shared:
        raise AnalysisError(
            f"results {a.name!r} and {b.name!r} share no metrics"
        )
    return shared


class DifferenceOperation(PerformanceAnalysisOperation):
    """``inputs[0] - inputs[1]`` over shared events/metrics.

    Thread axes must match; use BasicStatisticsOperation first to compare
    trials of different widths (mean vs mean).
    """

    def __init__(self, minuend: PerformanceResult, subtrahend: PerformanceResult) -> None:
        super().__init__([minuend, subtrahend])
        if minuend.thread_count != subtrahend.thread_count:
            raise AnalysisError(
                "DifferenceOperation: thread counts differ "
                f"({minuend.thread_count} vs {subtrahend.thread_count}); "
                "reduce to means first"
            )

    def process_data(self) -> list[PerformanceResult]:
        a, b = self.inputs
        events = _aligned_events(a, b)
        metrics = _aligned_metrics(a, b)
        ia = [a.trial.event_index(e) for e in events]
        ib = [b.trial.event_index(e) for e in events]
        builder = PerformanceResult.like(
            a, name=f"({a.name} - {b.name})", events=events, metrics=metrics
        )
        for m in metrics:
            builder.set_metric(
                m,
                a.exclusive(m)[ia] - b.exclusive(m)[ib],
                a.inclusive(m)[ia] - b.inclusive(m)[ib],
                derived=True,
            )
        builder.set_calls(a.calls()[ia] - b.calls()[ib])
        self.outputs = [builder.build()]
        return self.outputs


class TrialRatioOperation(PerformanceAnalysisOperation):
    """``inputs[0] / inputs[1]`` over shared events/metrics (0/0 := 0).

    The OpenMP-vs-MPI comparison: a ratio of 11.16 on the main event's time
    is the paper's "lagged by a factor of 11.16" statement.
    """

    def __init__(self, numerator: PerformanceResult, denominator: PerformanceResult) -> None:
        super().__init__([numerator, denominator])
        if numerator.thread_count != denominator.thread_count:
            raise AnalysisError(
                "TrialRatioOperation: thread counts differ; reduce to means first"
            )

    def process_data(self) -> list[PerformanceResult]:
        a, b = self.inputs
        events = _aligned_events(a, b)
        metrics = _aligned_metrics(a, b)
        ia = [a.trial.event_index(e) for e in events]
        ib = [b.trial.event_index(e) for e in events]
        builder = PerformanceResult.like(
            a, name=f"({a.name} / {b.name})", events=events, metrics=metrics
        )
        for m in metrics:
            bx, bi = b.exclusive(m)[ib], b.inclusive(m)[ib]
            builder.set_metric(
                m,
                np.divide(a.exclusive(m)[ia], bx,
                          out=np.zeros((len(events), a.thread_count)), where=bx != 0),
                np.divide(a.inclusive(m)[ia], bi,
                          out=np.zeros((len(events), a.thread_count)), where=bi != 0),
                derived=True,
            )
        self.outputs = [builder.build()]
        return self.outputs


class MergeTrialsOperation(PerformanceAnalysisOperation):
    """Concatenate the thread axes of shape-compatible trials.

    Used to pool repeated runs before statistics (PerfExplorer merges
    trials of an experiment the same way).  All inputs must share event and
    metric sets.
    """

    def __init__(self, inputs) -> None:
        super().__init__(inputs)
        if len(self.inputs) < 2:
            raise AnalysisError("MergeTrialsOperation: need at least two inputs")
        first = self.inputs[0]
        for other in self.inputs[1:]:
            if set(other.events) != set(first.events):
                raise AnalysisError("MergeTrialsOperation: event sets differ")
            if set(other.metrics) != set(first.metrics):
                raise AnalysisError("MergeTrialsOperation: metric sets differ")

    def process_data(self) -> list[PerformanceResult]:
        first = self.inputs[0]
        events = first.events
        total_threads = sum(r.thread_count for r in self.inputs)
        builder = PerformanceResult.like(
            first, name=f"merge({len(self.inputs)})", n_threads=total_threads
        )
        for m in first.metrics:
            exc_parts, inc_parts = [], []
            for r in self.inputs:
                idx = [r.trial.event_index(e) for e in events]
                exc_parts.append(r.exclusive(m)[idx])
                inc_parts.append(r.inclusive(m)[idx])
            builder.set_metric(m, np.hstack(exc_parts), np.hstack(inc_parts))
        calls_parts = []
        for r in self.inputs:
            idx = [r.trial.event_index(e) for e in events]
            calls_parts.append(r.calls()[idx])
        builder.set_calls(np.hstack(calls_parts))
        self.outputs = [builder.build()]
        return self.outputs
