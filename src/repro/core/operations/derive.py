"""Metric derivation (the paper's ``DeriveMetricOperation``).

Creates a new metric by combining two existing ones pointwise — e.g. the
stalls-per-cycle inefficiency metric of Fig. 1::

    operator = DeriveMetricOperation(trial, "BACK_END_BUBBLE_ALL",
                                     "CPU_CYCLES", DeriveMetricOperation.DIVIDE)
    derived = operator.processData().get(0)

The derived metric is named ``"(A <op> B)"`` exactly as PerfExplorer names
it, so rules can pattern-match the metric string.  Division guards against
zero denominators (0/0 := 0), since idle threads legitimately record zero
cycles in some events.
"""

from __future__ import annotations

import numpy as np

from ..result import AnalysisError, PerformanceResult
from .base import PerformanceAnalysisOperation


class DeriveMetricOperation(PerformanceAnalysisOperation):
    """Derive ``metric1 <op> metric2`` as a new metric."""

    ADD = "+"
    SUBTRACT = "-"
    MULTIPLY = "*"
    DIVIDE = "/"
    _OPS = (ADD, SUBTRACT, MULTIPLY, DIVIDE)

    def __init__(
        self,
        input_result: PerformanceResult,
        metric1: str,
        metric2: str,
        operation: str,
    ) -> None:
        super().__init__(input_result)
        if operation not in self._OPS:
            raise AnalysisError(
                f"unknown derive operation {operation!r}; expected one of {self._OPS}"
            )
        self._require_metric(input_result, metric1)
        self._require_metric(input_result, metric2)
        self.metric1 = metric1
        self.metric2 = metric2
        self.operation = operation

    @property
    def derived_name(self) -> str:
        return f"({self.metric1} {self.operation} {self.metric2})"

    def _apply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.operation == self.ADD:
            return a + b
        if self.operation == self.SUBTRACT:
            return a - b
        if self.operation == self.MULTIPLY:
            return a * b
        return np.divide(a, b, out=np.zeros_like(a), where=b != 0)

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        exc = self._apply(src.exclusive(self.metric1), src.exclusive(self.metric2))
        inc = self._apply(src.inclusive(self.metric1), src.inclusive(self.metric2))
        builder = PerformanceResult.like(src, name=f"{src.name}:{self.derived_name}")
        for m in src.metrics:  # carry every input metric through
            builder.set_metric(m, src.exclusive(m), src.inclusive(m))
        builder.set_metric(self.derived_name, exc, inc, derived=True)
        builder.set_calls(src.calls())
        self.outputs = [builder.build()]
        return self.outputs


class ScaleMetricOperation(PerformanceAnalysisOperation):
    """Multiply one metric by a scalar, producing ``"(M * k)"``.

    Used for unit conversions (e.g. latency-weighting miss counts when
    assembling the paper's Memory Stalls formula).
    """

    def __init__(self, input_result: PerformanceResult, metric: str, factor: float) -> None:
        super().__init__(input_result)
        self._require_metric(input_result, metric)
        self.metric = metric
        self.factor = float(factor)

    @property
    def derived_name(self) -> str:
        return f"({self.metric} * {self.factor:g})"

    def process_data(self) -> list[PerformanceResult]:
        src = self.inputs[0]
        builder = PerformanceResult.like(src, name=f"{src.name}:{self.derived_name}")
        for m in src.metrics:
            builder.set_metric(m, src.exclusive(m), src.inclusive(m))
        builder.set_metric(
            self.derived_name,
            src.exclusive(self.metric) * self.factor,
            src.inclusive(self.metric) * self.factor,
            derived=True,
        )
        builder.set_calls(src.calls())
        self.outputs = [builder.build()]
        return self.outputs


def derive_chain(
    result: PerformanceResult, terms: list[tuple[str, float]], *, name: str
) -> PerformanceResult:
    """Weighted sum of metrics as a single derived metric.

    Implements formula-style derivations like the paper's::

        Memory Stalls = (L2_refs - L2_miss)*L2_lat + (L2_miss - L3_miss)*L3_lat
                        + ... + TLB_misses*TLB_penalty

    ``terms`` is ``[(metric, coefficient), ...]``; the output metric is
    named ``name`` and flagged derived.
    """
    if not terms:
        raise AnalysisError("derive_chain needs at least one term")
    exc = None
    inc = None
    for metric, coeff in terms:
        if not result.has_metric(metric):
            raise AnalysisError(
                f"derive_chain: no metric {metric!r} in {result.name!r}"
            )
        e = result.exclusive(metric) * coeff
        i = result.inclusive(metric) * coeff
        exc = e if exc is None else exc + e
        inc = i if inc is None else inc + i
    builder = PerformanceResult.like(result, name=f"{result.name}:{name}")
    for m in result.metrics:
        builder.set_metric(m, result.exclusive(m), result.inclusive(m))
    builder.set_metric(name, exc, inc, derived=True)
    builder.set_calls(result.calls())
    return builder.build()
