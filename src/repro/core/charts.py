"""Terminal chart rendering for figure-shaped results.

The paper's evaluation is figures; a terminal-first reproduction should be
able to *show* them.  Two renderers, both pure text:

* :func:`line_chart` — multi-series scatter/line plot on a character grid
  (used for the Fig. 4(b)/5(a)/5(b) speedup and efficiency curves);
* :func:`bar_chart` — horizontal labelled bars (used for Fig. 4(a)'s
  per-thread times and Table I's relative metrics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


class ChartError(Exception):
    """Raised for unplottable inputs."""


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2g}"
    return f"{v:.2f}".rstrip("0").rstrip(".")


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) series on a character grid with a shared legend."""
    if not series:
        raise ChartError("no series to plot")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ChartError("series contain no points")
    if width < 10 or height < 4:
        raise ChartError("chart too small")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    y_lo = min(y_lo, 0.0) if y_lo > 0 else y_lo
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for i, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            place(x, y, marker)

    y_top, y_bottom = _fmt(y_hi), _fmt(y_lo)
    gutter = max(len(y_top), len(y_bottom)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top
        elif r == height - 1:
            label = y_bottom
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = f"{_fmt(x_lo)}{' ' * max(width - len(_fmt(x_lo)) - len(_fmt(x_hi)), 1)}{_fmt(x_hi)}"
    lines.append(" " * (gutter + 2) + x_axis)
    footer = "   ".join(legend)
    if x_label or y_label:
        footer += f"   [{x_label}{' vs ' if x_label and y_label else ''}{y_label}]"
    lines.append(footer)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    title: str = "",
    reference: float | None = None,
) -> str:
    """Render labelled horizontal bars (optionally with a reference tick).

    ``reference`` draws a ``|`` marker at that value on every bar's scale —
    e.g. the 1.0 baseline of Table I's relative metrics.
    """
    if not values:
        raise ChartError("no bars to plot")
    if width < 10:
        raise ChartError("chart too small")
    peak = max(list(values.values()) + ([reference] if reference else []))
    if peak <= 0:
        raise ChartError("bar values must include a positive maximum")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    ref_col = (
        round(reference / peak * (width - 1)) if reference is not None else -1
    )
    for name, value in values.items():
        if value < 0:
            raise ChartError(f"bar {name!r}: negative values unsupported")
        filled = round(value / peak * (width - 1))
        bar = ["█" if c <= filled and value > 0 else " " for c in range(width)]
        if 0 <= ref_col < width and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(f"{name:>{label_w}} {''.join(bar)} {_fmt(value)}")
    return "\n".join(lines)
