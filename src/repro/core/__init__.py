"""PerfExplorer 2.0: performance data mining with knowledge-based diagnosis.

The paper's primary contribution.  Submodules:

* :mod:`~repro.core.result` — the PerformanceResult datatype;
* :mod:`~repro.core.operations` — derive/statistics/correlation/scaling/
  top-X/difference/merge/k-means/PCA operations;
* :mod:`~repro.core.facts` — fact generation (MeanEventFact & friends);
* :mod:`~repro.core.harness` — RuleHarness over the inference engine;
* :mod:`~repro.core.script` — the flat scripting facade Fig. 1 scripts use.
"""

from .assertions import (
    AssertionContext,
    AssertionOutcome,
    PerformanceAssertion,
    assertion_facts,
    check_assertions,
    render_assertion_report,
)
from .facts import MeanEventFact, callgraph_facts, severity_of, trial_metadata_facts
from .harness import RuleHarness, register_rulebase, registered_rulebases
from .result import AnalysisError, PerformanceResult, trial_result

__all__ = [
    "AnalysisError",
    "AssertionContext",
    "AssertionOutcome",
    "PerformanceAssertion",
    "assertion_facts",
    "check_assertions",
    "render_assertion_report",
    "MeanEventFact",
    "PerformanceResult",
    "RuleHarness",
    "callgraph_facts",
    "register_rulebase",
    "registered_rulebases",
    "severity_of",
    "trial_metadata_facts",
    "trial_result",
]
