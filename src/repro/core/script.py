"""The PerfExplorer scripting facade.

One import gives a ported Jython analysis script everything the paper's
Fig. 1 uses::

    from repro.core.script import (
        RuleHarness, Utilities, TrialMeanResult, TrialResult,
        DeriveMetricOperation, MeanEventFact,
    )

    ruleHarness = RuleHarness.useGlobalRules("openuh-rules")
    trial = TrialMeanResult(Utilities.getTrial("Fluid Dynamic", "rib 45", "1_8"))
    stalls = "BACK_END_BUBBLE_ALL"
    cycles = "CPU_CYCLES"
    operator = DeriveMetricOperation(trial, stalls, cycles,
                                     DeriveMetricOperation.DIVIDE)
    derived = operator.processData().get(0)
    mainEvent = derived.getMainEvent()
    for event in derived.getEvents():
        fact = MeanEventFact.compareEventToMain(derived, mainEvent, event,
                                                operator.derived_name)
        ruleHarness.assertObject(fact)
    ruleHarness.processRules()
"""

from __future__ import annotations

from ..perfdmf import Trial, Utilities
from .facts import MeanEventFact, callgraph_facts, trial_metadata_facts
from .harness import RuleHarness, register_rulebase, registered_rulebases
from .operations.base import PerformanceAnalysisOperation
from .operations.clustering import KMeansOperation, PCAOperation
from .operations.comparison import (
    DifferenceOperation,
    MergeTrialsOperation,
    TrialRatioOperation,
)
from .operations.correlation import CorrelationOperation, event_correlation
from .operations.derive import (
    DeriveMetricOperation,
    ScaleMetricOperation,
    derive_chain,
)
from .operations.extract import (
    ExtractEventOperation,
    ExtractMetricOperation,
    ExtractRankOperation,
    TopXEvents,
    TopXPercentEvents,
)
from .operations.scalability import ScalabilityOperation, ScalingSeries
from .operations.statistics import (
    BasicStatisticsOperation,
    RatioOperation,
    trial_mean_result,
    trial_total_result,
)
from .result import AnalysisError, PerformanceResult


def __getattr__(name: str):
    # RegressionOperation lives in repro.regress (which imports this
    # package); resolve it lazily so both import orders work.
    if name == "RegressionOperation":
        from ..regress.operation import RegressionOperation

        return RegressionOperation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def TrialResult(trial: Trial) -> PerformanceResult:
    """Wrap a trial for analysis without aggregation."""
    return PerformanceResult(trial)


def TrialMeanResult(trial: Trial) -> PerformanceResult:
    """Across-thread mean of a trial (the paper's loader of choice)."""
    return trial_mean_result(trial)


def TrialTotalResult(trial: Trial) -> PerformanceResult:
    """Across-thread totals of a trial."""
    return trial_total_result(trial)


__all__ = [
    "AnalysisError",
    "BasicStatisticsOperation",
    "CorrelationOperation",
    "DeriveMetricOperation",
    "DifferenceOperation",
    "ExtractEventOperation",
    "ExtractMetricOperation",
    "ExtractRankOperation",
    "KMeansOperation",
    "MeanEventFact",
    "MergeTrialsOperation",
    "PCAOperation",
    "PerformanceAnalysisOperation",
    "PerformanceResult",
    "RatioOperation",
    "RegressionOperation",
    "RuleHarness",
    "ScalabilityOperation",
    "ScaleMetricOperation",
    "ScalingSeries",
    "TopXEvents",
    "TopXPercentEvents",
    "TrialMeanResult",
    "TrialRatioOperation",
    "TrialResult",
    "TrialTotalResult",
    "Utilities",
    "callgraph_facts",
    "derive_chain",
    "event_correlation",
    "register_rulebase",
    "registered_rulebases",
    "trial_metadata_facts",
]
