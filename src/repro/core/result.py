"""PerformanceResult: the datatype PerfExplorer operations exchange.

Every analysis operation consumes and produces ``PerformanceResult`` objects
— views over trial-shaped data (events × metrics × threads).  The class
wraps a :class:`~repro.perfdmf.Trial` and exposes both a Pythonic API and
the camelCase accessors the paper's Jython scripts use (``getEvents()``,
``getExclusive(thread, event, metric)``, ``getMainEvent()``), so the Fig. 1
script ports almost verbatim.

Aggregate results (e.g. the mean over threads produced by
``TrialMeanResult``) are ordinary results whose thread axis has collapsed
to one synthetic thread.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..perfdmf import MAIN_EVENT, ProfileError, Trial


class AnalysisError(Exception):
    """Raised for invalid operation inputs or incompatible results.

    ``reason`` optionally carries a structured (JSON-able) account of the
    failure; the serve layer surfaces it as ``Job.failure["reason"]`` so
    programmatic consumers need not parse the message string.
    """

    def __init__(self, message: str = "", *, reason: dict | None = None):
        super().__init__(message)
        self.reason = dict(reason) if reason else None


class PerformanceResult:
    """A trial-shaped dataset flowing through analysis operations."""

    def __init__(self, trial: Trial, *, name: str | None = None) -> None:
        if trial.event_count == 0 or not trial.metric_names():
            raise AnalysisError("cannot analyze an empty trial")
        self.trial = trial
        self.name = name or trial.name

    # -- Pythonic accessors -------------------------------------------------
    @property
    def events(self) -> list[str]:
        return self.trial.event_names()

    @property
    def metrics(self) -> list[str]:
        return self.trial.metric_names()

    @property
    def thread_count(self) -> int:
        return self.trial.thread_count

    @property
    def metadata(self) -> dict:
        return self.trial.metadata

    def exclusive(self, metric: str) -> np.ndarray:
        """(events, threads) exclusive array for ``metric``."""
        return self.trial.exclusive_array(metric)

    def inclusive(self, metric: str) -> np.ndarray:
        return self.trial.inclusive_array(metric)

    def calls(self) -> np.ndarray:
        return self.trial.calls_array()

    def event_row(self, event: str, metric: str, *, inclusive: bool = False) -> np.ndarray:
        """One event's per-thread values."""
        e = self.trial.event_index(event)
        arr = self.inclusive(metric) if inclusive else self.exclusive(metric)
        return arr[e]

    def main_event(self) -> str:
        return self.trial.main_event()

    def has_metric(self, metric: str) -> bool:
        return self.trial.has_metric(metric)

    def has_event(self, event: str) -> bool:
        return self.trial.has_event(event)

    # -- camelCase mirror of the PerfExplorer script API --------------------
    def getEvents(self) -> list[str]:
        return self.events

    def getMetrics(self) -> list[str]:
        return self.metrics

    def getThreads(self) -> list[int]:
        return list(range(self.thread_count))

    def getExclusive(self, thread: int, event: str, metric: str) -> float:
        return self.trial.get_exclusive(event, metric, thread)

    def getInclusive(self, thread: int, event: str, metric: str) -> float:
        return self.trial.get_inclusive(event, metric, thread)

    def getCalls(self, thread: int, event: str) -> float:
        return self.trial.get_calls(event, thread)

    def getMainEvent(self) -> str:
        return self.main_event()

    def getName(self) -> str:
        return self.name

    # -- construction helpers used by operations ----------------------------
    @classmethod
    def like(
        cls,
        source: "PerformanceResult",
        *,
        name: str,
        events: list[str] | None = None,
        metrics: list[str] | None = None,
        n_threads: int | None = None,
    ) -> "_ResultBuilder":
        """Start building a result shaped like ``source`` (optionally with a
        different event/metric/thread set)."""
        return _ResultBuilder(
            name=name,
            events=list(events if events is not None else source.events),
            metrics=list(metrics if metrics is not None else source.metrics),
            n_threads=n_threads if n_threads is not None else source.thread_count,
            metadata=dict(source.metadata),
            source=source,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PerformanceResult({self.name!r}: {len(self.events)} events x "
            f"{len(self.metrics)} metrics x {self.thread_count} threads)"
        )


class _ResultBuilder:
    """Assembles a new PerformanceResult from dense arrays."""

    def __init__(self, *, name, events, metrics, n_threads, metadata, source):
        if not events:
            raise AnalysisError("result must have at least one event")
        if n_threads < 1:
            raise AnalysisError("result must have at least one thread")
        self._trial = Trial(name, metadata)
        self._source = source
        group_of = {}
        if source is not None:
            group_of = {e.name: e.group for e in source.trial.events}
        for ev in events:
            self._trial.add_event(ev, group_of.get(ev, "TAU_DEFAULT"))
        for t in range(n_threads):
            self._trial.add_thread(t)
        self._metrics = list(metrics)
        self._n_threads = n_threads

    def set_metric(
        self,
        metric: str,
        exclusive: np.ndarray,
        inclusive: np.ndarray | None = None,
        *,
        derived: bool = False,
        units: str = "counts",
    ) -> "_ResultBuilder":
        from ..perfdmf import Metric

        exclusive = np.asarray(exclusive, dtype=float)
        expected = (self._trial.event_count, self._n_threads)
        if exclusive.shape != expected:
            raise AnalysisError(
                f"metric {metric!r}: shape {exclusive.shape} != {expected}"
            )
        self._trial.add_metric(Metric(metric, units=units, derived=derived))
        self._trial._exclusive[metric][:, :] = exclusive
        inc = exclusive if inclusive is None else np.asarray(inclusive, dtype=float)
        if inc.shape != expected:
            raise AnalysisError(f"metric {metric!r}: inclusive shape mismatch")
        self._trial._inclusive[metric][:, :] = inc
        return self

    def set_calls(self, calls: np.ndarray) -> "_ResultBuilder":
        calls = np.asarray(calls, dtype=float)
        expected = (self._trial.event_count, self._n_threads)
        if calls.shape != expected:
            raise AnalysisError(f"calls shape {calls.shape} != {expected}")
        self._trial._calls[:, :] = calls
        return self

    def build(self) -> PerformanceResult:
        if not self._trial.metric_names():
            raise AnalysisError("result has no metrics; call set_metric")
        return PerformanceResult(self._trial)


def trial_result(trial: Trial) -> PerformanceResult:
    """Wrap a trial without aggregation (the script API's ``TrialResult``)."""
    return PerformanceResult(trial)
