"""Fact generation: turning analysis results into rule-engine facts.

The bridge between PerfExplorer's numeric layer and its knowledge layer.
``MeanEventFact.compareEventToMain`` is the paper's Fig. 1 call: for one
event of a (mean) result, compare its value of a metric against the main
event's, and assert a ``MeanEventFact`` whose fields are exactly what the
Fig. 2 rule pattern-matches:

* ``metric`` — the metric name (e.g. ``"(BACK_END_BUBBLE_ALL / CPU_CYCLES)"``),
* ``higherLower`` — ``"higher"`` / ``"lower"`` / ``"same"``,
* ``severity`` — the event's share of total runtime (its mean inclusive
  TIME over main's), so rules can ignore insignificant events,
* ``mainValue`` / ``eventValue`` — the compared values,
* ``eventName``, ``factType`` — identification.
"""

from __future__ import annotations

import math

from ..machine import counters as C
from ..rules import Fact
from .result import AnalysisError, PerformanceResult

#: higherLower values (Drools enum-ish strings in the paper's rules).
HIGHER = "higher"
LOWER = "lower"
SAME = "same"

FACT_COMPARED_TO_MAIN = "Compared to Main"
FACT_COMPARED_TO_OTHER_TRIAL = "Compared to Other Trial"


def severity_of(
    result: PerformanceResult,
    event: str,
    *,
    severity_metric: str = C.TIME,
    thread: int = 0,
) -> float:
    """Event's share of total runtime: exclusive(event)/inclusive(main).

    Main's own severity uses its exclusive share like every other event.
    """
    if not result.has_metric(severity_metric):
        raise AnalysisError(
            f"severity metric {severity_metric!r} missing from {result.name!r}"
        )
    main = result.main_event()
    total = result.event_row(main, severity_metric, inclusive=True)[thread]
    if total <= 0:
        return 0.0
    mine = result.event_row(event, severity_metric)[thread]
    return float(mine / total)


class MeanEventFact:
    """Factory for the ``MeanEventFact`` facts the paper's rules consume."""

    HIGHER = HIGHER
    LOWER = LOWER
    SAME = SAME

    #: Relative difference below which values count as "same".
    SAME_TOLERANCE = 0.01

    @classmethod
    def compare_event_to_main(
        cls,
        result: PerformanceResult,
        main_event: str,
        event: str,
        metric: str,
        *,
        severity_result: PerformanceResult | None = None,
        severity_metric: str = C.TIME,
        thread: int = 0,
        inclusive: bool = False,
    ) -> Fact:
        """Build (not assert) the comparison fact for one event.

        ``severity_result`` defaults to ``result`` — pass the original
        (underived) result when the derived one lacks TIME.
        """
        if not result.has_event(event) or not result.has_event(main_event):
            raise AnalysisError(
                f"compare_event_to_main: unknown event ({event!r} or {main_event!r})"
            )
        if not result.has_metric(metric):
            raise AnalysisError(f"no metric {metric!r} in {result.name!r}")
        main_value = float(
            result.event_row(main_event, metric, inclusive=True)[thread]
        )
        event_value = float(
            result.event_row(event, metric, inclusive=inclusive)[thread]
        )
        if math.isclose(event_value, main_value, rel_tol=cls.SAME_TOLERANCE,
                        abs_tol=1e-15):
            higher_lower = SAME
        elif event_value > main_value:
            higher_lower = HIGHER
        else:
            higher_lower = LOWER
        sev_src = severity_result if severity_result is not None else result
        severity = severity_of(
            sev_src, event, severity_metric=severity_metric, thread=thread
        )
        return Fact(
            "MeanEventFact",
            metric=metric,
            eventName=event,
            mainEvent=main_event,
            mainValue=main_value,
            eventValue=event_value,
            higherLower=higher_lower,
            severity=severity,
            factType=FACT_COMPARED_TO_MAIN,
            trial=result.name,
        )

    # camelCase alias matching the paper's Fig. 1 script
    @classmethod
    def compareEventToMain(cls, result, main_event, event, metric, **kw) -> Fact:
        return cls.compare_event_to_main(result, main_event, event, metric, **kw)

    @classmethod
    def compare_all_events_to_main(
        cls,
        result: PerformanceResult,
        metric: str,
        *,
        severity_result: PerformanceResult | None = None,
        severity_metric: str = C.TIME,
        include_main: bool = False,
    ) -> list[Fact]:
        """Comparison facts for every event (the Fig. 1 loop)."""
        main = result.main_event()
        facts = []
        for event in result.events:
            if event == main and not include_main:
                continue
            facts.append(
                cls.compare_event_to_main(
                    result, main, event, metric,
                    severity_result=severity_result,
                    severity_metric=severity_metric,
                )
            )
        return facts


def trial_metadata_facts(result: PerformanceResult) -> list[Fact]:
    """One ``TrialMetadata`` fact per metadata entry.

    PerfDMF/PerfExplorer 2.0 expose the performance *context* to rules so
    conclusions can be justified by configuration (machine, schedule,
    problem size...).  Non-scalar values are stringified.
    """
    facts = []
    for key, value in result.metadata.items():
        if not isinstance(value, (str, int, float, bool)):
            value = repr(value)
        facts.append(
            Fact("TrialMetadata", trial=result.name, name=key, value=value)
        )
    return facts


def callgraph_facts(result: PerformanceResult) -> list[Fact]:
    """``CallGraphEdge`` facts from the trial's recorded caller→callee edges.

    The imbalance rule's "events are nested" condition joins on these.
    """
    edges = result.metadata.get("callgraph", [])
    return [
        Fact("CallGraphEdge", parent=parent, child=child, trial=result.name)
        for parent, child in edges
    ]
