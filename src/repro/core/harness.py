"""RuleHarness: the scripting-facing wrapper around the rule engine.

Mirrors the paper's Fig. 1 usage::

    ruleHarness = RuleHarness.useGlobalRules("openuh/OpenUHRules.drl")
    ...
    ruleHarness.assertObject(fact)
    ruleHarness.processRules()

``useGlobalRules`` installs a process-global harness (what the Jython
scripts rely on); tests and library callers can equally construct private
harnesses.  Rule arguments may be a ``.prl`` file path, rule text, an
iterable of :class:`~repro.rules.Rule`, or a named rulebase registered by
:mod:`repro.knowledge`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from ..rules import Fact, Rule, RuleEngine, parse_rules
from .result import AnalysisError

#: Named rulebases registered by repro.knowledge (name → factory).
_REGISTERED_RULEBASES: dict[str, callable] = {}

_global_harness: "RuleHarness | None" = None


def register_rulebase(name: str, factory) -> None:
    """Register a named rulebase factory (returns a list of Rules)."""
    _REGISTERED_RULEBASES[name] = factory


def registered_rulebases() -> list[str]:
    return sorted(_REGISTERED_RULEBASES)


def _resolve_rules(source) -> list[Rule]:
    if source is None:
        return []
    if isinstance(source, Rule):
        return [source]
    if isinstance(source, (list, tuple)):
        return list(source)
    if isinstance(source, Path):
        return parse_rules(source.read_text())
    if isinstance(source, str):
        if source not in _REGISTERED_RULEBASES:
            # the shipped rulebases register on import of repro.knowledge;
            # pull it in so "openuh-rules" resolves without a manual import
            import importlib

            importlib.import_module("repro.knowledge")
        if source in _REGISTERED_RULEBASES:
            return list(_REGISTERED_RULEBASES[source]())
        path = Path(source)
        if path.suffix == ".prl" and path.is_file():
            return parse_rules(path.read_text())
        if "rule " in source or "rule\t" in source:
            return parse_rules(source)
        raise AnalysisError(
            f"cannot resolve rulebase {source!r}: not a registered name "
            f"({registered_rulebases()}), not an existing .prl file, and "
            "not rule text"
        )
    raise AnalysisError(f"cannot resolve rules from {type(source).__name__}")


class RuleHarness:
    """Holds a rule engine plus the convenience entry points scripts use."""

    def __init__(
        self, rules=None, *, echo: bool = False, indexing: bool = True
    ) -> None:
        self.engine = RuleEngine(echo=echo, indexing=indexing)
        if rules is not None:
            self.engine.add_rules(_resolve_rules(rules))

    # -- the paper's API --------------------------------------------------
    @classmethod
    def useGlobalRules(
        cls, rules, *, echo: bool = False, indexing: bool = True
    ) -> "RuleHarness":
        """Create and install the process-global harness (Fig. 1, line 1)."""
        global _global_harness
        _global_harness = cls(rules, echo=echo, indexing=indexing)
        return _global_harness

    @classmethod
    def getInstance(cls) -> "RuleHarness":
        if _global_harness is None:
            raise AnalysisError(
                "no global RuleHarness; call RuleHarness.useGlobalRules(...) first"
            )
        return _global_harness

    @classmethod
    def clearGlobal(cls) -> None:
        global _global_harness
        _global_harness = None

    def addRules(self, rules) -> "RuleHarness":
        self.engine.add_rules(_resolve_rules(rules))
        return self

    def assertObject(self, fact: Fact):
        """Assert one fact (Drools' ``insert``)."""
        return self.engine.assert_fact(fact)

    def assertObjects(self, facts: Iterable[Fact]) -> None:
        """Bulk assert (batched: one working-memory insert pass)."""
        self.engine.assert_facts(facts)

    def processRules(self) -> int:
        """Fire until quiescent; returns number of firings."""
        return self.engine.run()

    # -- results ----------------------------------------------------------
    @property
    def output(self) -> list[str]:
        return self.engine.output

    def recommendations(self) -> list[Fact]:
        """All ``Recommendation`` facts asserted by fired rules, ordered by
        descending severity (unknown severities last)."""
        recs = self.engine.facts("Recommendation")
        return sorted(recs, key=lambda f: -float(f.get("severity", -1.0)))

    def facts(self, fact_type: str) -> list[Fact]:
        return self.engine.facts(fact_type)

    def explain(self) -> list[str]:
        return self.engine.explain()

    def why(self, fact: Fact) -> str:
        """Explanation chain for one fact (typically a Recommendation):
        which rule asserted it, matched on which facts, back to the
        analysis script's inputs."""
        lines = self.engine.why(fact)
        if not lines:
            return "(fact unknown to this harness)"
        return "\n".join(lines)

    def reset(self) -> None:
        self.engine.reset()
