"""Power/energy modeling (§III.C): the component power model of Eqs. 1-2
and the Table I relative-metrics machinery."""

from .components import Component, ITANIUM2_COMPONENTS, validate_components
from .energy import (
    TABLE1_METRICS,
    LevelMeasurement,
    RelativeTable,
    energy_delay_product,
    measure_signature,
    relative_table,
)
from .model import (
    ITANIUM2_IDLE_W,
    ITANIUM2_TDP_W,
    PowerEstimate,
    PowerModel,
)

__all__ = [
    "Component",
    "ITANIUM2_COMPONENTS",
    "ITANIUM2_IDLE_W",
    "ITANIUM2_TDP_W",
    "LevelMeasurement",
    "PowerEstimate",
    "PowerModel",
    "RelativeTable",
    "TABLE1_METRICS",
    "energy_delay_product",
    "measure_signature",
    "relative_table",
    "validate_components",
]
