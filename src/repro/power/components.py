"""On-die component definitions and access-rate extraction.

The paper's power metric (from Bui et al.) decomposes the processor into
on-die components whose activity is observable through hardware counters.
Each component's dynamic power is its *access rate* (events per cycle,
capped at 1) times an *architectural scaling* factor (its share of the
processor's maximum dynamic power budget) times the published thermal
design power — Eq. 1.

The component set below follows the Itanium 2 die plan: the FP unit, the
integer core, the three cache levels, the front-end, and the system
interface (memory/bus traffic).  Scaling factors sum to 1 so that total
dynamic power saturates at TDP under full activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..machine import counters as C


@dataclass(frozen=True)
class Component:
    """One on-die component of the power model."""

    name: str
    #: Share of max dynamic power attributable to this component (Eq. 1's
    #: ArchitecturalScaling); all components' shares sum to 1.
    architectural_scaling: float
    #: Counter expression: events attributed to this component.
    rate_counters: tuple[str, ...]
    #: Events-per-cycle at which the component is considered saturated.
    saturation_rate: float = 1.0

    def access_rate(self, counters: Mapping[str, float]) -> float:
        """Activity in [0, 1]: component events per cycle, normalized."""
        cycles = counters.get(C.CPU_CYCLES, 0.0)
        if cycles <= 0:
            return 0.0
        events = sum(counters.get(name, 0.0) for name in self.rate_counters)
        rate = events / cycles / self.saturation_rate
        return min(max(rate, 0.0), 1.0)


#: The Itanium 2 (Madison) component set.  Scaling factors reflect the die
#: area/power breakdown: FP and integer datapaths dominate, caches follow.
ITANIUM2_COMPONENTS: tuple[Component, ...] = (
    Component("fpu", 0.26, (C.FP_OPS,), saturation_rate=2.0),
    Component(
        "integer_core", 0.30,
        (C.INSTRUCTIONS_ISSUED,),
        saturation_rate=6.0,
    ),
    Component(
        "frontend", 0.14,
        (C.INSTRUCTIONS_ISSUED,),
        saturation_rate=6.0,
    ),
    Component("l1d", 0.06, (C.L2_DATA_REFERENCES,), saturation_rate=2.0),
    Component("l2", 0.06, (C.L2_DATA_REFERENCES,), saturation_rate=1.0),
    Component("l3", 0.08, (C.L2_MISSES,), saturation_rate=0.5),
    Component(
        "system_interface", 0.10,
        (C.L3_MISSES, C.REMOTE_MEMORY_ACCESSES),
        saturation_rate=0.25,
    ),
)


def validate_components(components: tuple[Component, ...]) -> None:
    """Scaling shares must be positive and sum to ~1."""
    if not components:
        raise ValueError("component set must be non-empty")
    total = sum(c.architectural_scaling for c in components)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(
            f"architectural scaling factors sum to {total:.6f}, expected 1.0"
        )
    for c in components:
        if c.architectural_scaling <= 0:
            raise ValueError(f"component {c.name}: scaling must be positive")
        if c.saturation_rate <= 0:
            raise ValueError(f"component {c.name}: saturation must be positive")


validate_components(ITANIUM2_COMPONENTS)
