"""The component power model — Eq. 1 and Eq. 2 of the paper.

    Power(Cᵢ)  = AccessRate(Cᵢ) × ArchitecturalScaling(Cᵢ) × MaxPower   (1)
    TotalPower = Σᵢ Power(Cᵢ) + IdlePower                               (2)

``MaxPower`` is the published thermal design power; multiprocessor power is
the per-processor total summed over processors.  Access rates come from
hardware counters — which in this reproduction come from the machine
model, so the whole chain Eq. 1 needs is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..machine import counters as C
from ..perfdmf import Trial
from .components import Component, ITANIUM2_COMPONENTS, validate_components

#: Itanium 2 Madison published TDP (watts).
ITANIUM2_TDP_W = 130.0
#: Idle (static + leakage) power per processor (watts).
ITANIUM2_IDLE_W = 25.0


@dataclass(frozen=True)
class PowerEstimate:
    """Power/energy outcome for one processor (or one aggregate)."""

    watts: float
    seconds: float
    component_watts: dict[str, float] = field(default_factory=dict)

    @property
    def joules(self) -> float:
        return self.watts * self.seconds

    def flops_per_joule(self, flops: float) -> float:
        j = self.joules
        return flops / j if j > 0 else 0.0


class PowerModel:
    """Counter-driven component power model (Eqs. 1–2)."""

    def __init__(
        self,
        *,
        components: tuple[Component, ...] = ITANIUM2_COMPONENTS,
        max_power_w: float = ITANIUM2_TDP_W,
        idle_power_w: float = ITANIUM2_IDLE_W,
    ) -> None:
        validate_components(components)
        if max_power_w <= 0 or idle_power_w < 0:
            raise ValueError("power parameters must be positive")
        if idle_power_w >= max_power_w:
            raise ValueError("idle power must be below max power")
        self.components = components
        self.max_power_w = max_power_w
        self.idle_power_w = idle_power_w
        #: Dynamic budget distributed over components (TDP minus idle).
        self.dynamic_budget_w = max_power_w - idle_power_w

    # -- Eq. 1 / Eq. 2 over a plain counter mapping ----------------------
    def component_power(self, counters: Mapping[str, float]) -> dict[str, float]:
        """Eq. 1 for every component."""
        return {
            c.name: c.access_rate(counters)
            * c.architectural_scaling
            * self.dynamic_budget_w
            for c in self.components
        }

    def processor_power(self, counters: Mapping[str, float]) -> PowerEstimate:
        """Eq. 2: total processor power from one counter set."""
        per_component = self.component_power(counters)
        watts = sum(per_component.values()) + self.idle_power_w
        seconds = counters.get(C.TIME, 0.0) / 1e6
        return PowerEstimate(watts, seconds, per_component)

    # -- over trials ----------------------------------------------------------
    def thread_counters(self, trial: Trial, thread: int) -> dict[str, float]:
        """Whole-run counters of one thread (main event, inclusive)."""
        main = trial.main_event()
        e = trial.event_index(main)
        return {
            metric: float(trial.inclusive_array(metric)[e, thread])
            for metric in trial.metric_names()
        }

    def trial_power(self, trial: Trial) -> PowerEstimate:
        """Machine-level power: per-thread Eq. 2 summed over processors.

        The reported ``seconds`` is the max thread runtime (wall clock);
        watts is the sum over processors (the paper's multiprocessor rule).
        """
        per_thread = [
            self.processor_power(self.thread_counters(trial, t))
            for t in range(trial.thread_count)
        ]
        total_watts = sum(p.watts for p in per_thread)
        wall = max((p.seconds for p in per_thread), default=0.0)
        merged: dict[str, float] = {}
        for p in per_thread:
            for name, w in p.component_watts.items():
                merged[name] = merged.get(name, 0.0) + w
        return PowerEstimate(total_watts, wall, merged)

    def trial_energy_joules(self, trial: Trial) -> float:
        """Energy = Σ per-processor power × that processor's busy time."""
        total = 0.0
        for t in range(trial.thread_count):
            est = self.processor_power(self.thread_counters(trial, t))
            total += est.joules
        return total

    def trial_flops(self, trial: Trial) -> float:
        main = trial.main_event()
        e = trial.event_index(main)
        if not trial.has_metric(C.FP_OPS):
            return 0.0
        return float(trial.inclusive_array(C.FP_OPS)[e].sum())

    def trial_flops_per_joule(self, trial: Trial) -> float:
        joules = self.trial_energy_joules(trial)
        return self.trial_flops(trial) / joules if joules > 0 else 0.0
