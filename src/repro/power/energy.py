"""Energy/efficiency analysis across optimization levels (Table I machinery).

Table I reports, relative to O0: Time, Instructions Completed/Issued, IPC
(completed and issued), Watts, Joules, and FLOP/Joule.  This module runs a
compiled workload at each level on the simulated machine, applies the power
model, and renders those rows — both as data and as the formatted table the
benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine import Machine, WorkSignature
from ..machine import counters as C
from .model import PowerModel

#: Table I's row labels, in paper order.
TABLE1_METRICS = (
    "Time",
    "Instructions Completed",
    "Instructions Issued",
    "Instructions Completed Per Cycle",
    "Instructions Issued Per Cycle",
    "Watts",
    "Joules",
    "FLOP/Joule",
)


@dataclass(frozen=True)
class LevelMeasurement:
    """Absolute measurements of one optimization level's run."""

    level: str
    seconds: float
    instructions_completed: float
    instructions_issued: float
    cycles: float
    watts: float
    joules: float
    flops: float

    @property
    def ipc_completed(self) -> float:
        return self.instructions_completed / self.cycles if self.cycles else 0.0

    @property
    def ipc_issued(self) -> float:
        return self.instructions_issued / self.cycles if self.cycles else 0.0

    @property
    def flops_per_joule(self) -> float:
        return self.flops / self.joules if self.joules else 0.0

    def metric(self, name: str) -> float:
        return {
            "Time": self.seconds,
            "Instructions Completed": self.instructions_completed,
            "Instructions Issued": self.instructions_issued,
            "Instructions Completed Per Cycle": self.ipc_completed,
            "Instructions Issued Per Cycle": self.ipc_issued,
            "Watts": self.watts,
            "Joules": self.joules,
            "FLOP/Joule": self.flops_per_joule,
        }[name]


def measure_signature(
    level: str,
    work: WorkSignature,
    machine: Machine,
    *,
    n_processors: int = 1,
    power_model: PowerModel | None = None,
) -> LevelMeasurement:
    """Execute one per-processor work signature and estimate power/energy.

    ``n_processors`` replicates the signature across processors (the
    Table I runs use 16 MPI ranks doing equal work), summing power and
    energy, keeping wall time at the per-processor value.
    """
    if n_processors < 1:
        raise ValueError("need at least one processor")
    pm = power_model or PowerModel()
    counters = machine.processor.execute(work)
    est = pm.processor_power(counters.as_dict())
    seconds = counters[C.TIME] / 1e6
    return LevelMeasurement(
        level=level,
        seconds=seconds,
        instructions_completed=counters[C.INSTRUCTIONS_COMPLETED] * n_processors,
        instructions_issued=counters[C.INSTRUCTIONS_ISSUED] * n_processors,
        cycles=counters[C.CPU_CYCLES] * n_processors,
        watts=est.watts * n_processors,
        joules=est.joules * n_processors,
        flops=counters[C.FP_OPS] * n_processors,
    )


@dataclass
class RelativeTable:
    """Table I: metric rows × optimization-level columns, relative to the
    first (baseline) column."""

    levels: list[str]
    rows: dict[str, list[float]]

    def value(self, metric: str, level: str) -> float:
        return self.rows[metric][self.levels.index(level)]

    def render(self, *, title: str = "") -> str:
        width = max(len(m) for m in TABLE1_METRICS) + 2
        lines = []
        if title:
            lines.append(title)
        header = "Metric".ljust(width) + "".join(
            lvl.rjust(10) for lvl in self.levels
        )
        lines.append(header)
        lines.append("-" * len(header))
        for metric in TABLE1_METRICS:
            cells = "".join(f"{v:10.3f}" for v in self.rows[metric])
            lines.append(metric.ljust(width) + cells)
        return "\n".join(lines)


def relative_table(measurements: list[LevelMeasurement]) -> RelativeTable:
    """Build the Table I normalization (first measurement = 1.0 baseline)."""
    if not measurements:
        raise ValueError("no measurements")
    base = measurements[0]
    rows: dict[str, list[float]] = {}
    for metric in TABLE1_METRICS:
        base_value = base.metric(metric)
        if base_value == 0:
            rows[metric] = [0.0 for _ in measurements]
        else:
            rows[metric] = [m.metric(metric) / base_value for m in measurements]
    return RelativeTable([m.level for m in measurements], rows)


def energy_delay_product(m: LevelMeasurement) -> float:
    """EDP — the standard combined power/performance figure of merit."""
    return m.joules * m.seconds
