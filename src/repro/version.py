"""The analyzer's version identity: one key for caches and lineage.

Two things make an analysis answer what it is: the *code* that computed
it (:data:`repro.__version__`) and the *rulebase* it reasoned with (a
content fingerprint of :mod:`repro.knowledge`'s sources).  The result
cache has always folded both into its content addresses; the lineage
store anchors performance history to the same pair.  This module is the
single source of that pair — :func:`version_key` — so cache keys and
lineage versions can never drift apart.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import MutableMapping

from . import __version__ as CODE_VERSION

__all__ = ["CODE_VERSION", "VersionKey", "rulebase_fingerprint", "version_key"]

_fingerprint_lock = threading.Lock()
_fingerprint: str | None = None


def rulebase_fingerprint() -> str:
    """Digest of the shipped knowledge layer's sources (.py and .prl).

    Any edit to the rulebase — new rule, changed threshold, different
    fact generator — changes this fingerprint and therefore every cache
    key and lineage version derived from it.  Computed once per process.
    """
    global _fingerprint
    with _fingerprint_lock:
        if _fingerprint is None:
            from pathlib import Path

            import repro.knowledge as knowledge

            root = Path(knowledge.__file__).parent
            h = hashlib.sha256()
            for path in sorted(root.glob("*.py")) + sorted(root.glob("*.prl")):
                h.update(path.name.encode())
                h.update(path.read_bytes())
            _fingerprint = h.hexdigest()[:16]
        return _fingerprint


@dataclass(frozen=True)
class VersionKey:
    """The (code, rulebase) identity of one analyzer build."""

    code: str
    rulebase: str

    @property
    def key(self) -> str:
        """One opaque string for key material (``code+rulebase``)."""
        return f"{self.code}+{self.rulebase}"

    @classmethod
    def parse(cls, key: str) -> "VersionKey":
        code, sep, rulebase = key.partition("+")
        if not sep:
            raise ValueError(f"not a version key: {key!r}")
        return cls(code, rulebase)

    def stamp(self, metadata: MutableMapping) -> MutableMapping:
        """Record this identity into trial metadata (idempotent; an
        explicit earlier stamp wins so re-stored trials keep their
        provenance)."""
        metadata.setdefault("code_version", self.code)
        metadata.setdefault("rulebase_version", self.rulebase)
        return metadata

    def to_dict(self) -> dict[str, str]:
        return {"code": self.code, "rulebase": self.rulebase}


def version_key(
    code_version: str | None = None,
    rulebase_version: str | None = None,
) -> VersionKey:
    """The current build's :class:`VersionKey`, with optional overrides
    (used by the cache to pin keys and by tests to simulate bumps)."""
    return VersionKey(
        code=code_version or CODE_VERSION,
        rulebase=rulebase_version or rulebase_fingerprint(),
    )
