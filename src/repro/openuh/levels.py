"""Optimization levels O0–O3 and the compile driver.

The Table I experiment compiles GenIDLEST at each standard level:

* **O0** — all optimizations disabled; no register allocation (every scalar
  access is stack traffic).
* **O1** — "minimal optimizations such as instruction scheduling and
  peephole optimizations applied to straight-line code": constant folding,
  copy propagation, scheduling, plus register allocation.
* **O2** — "more aggressive optimizations [that] significantly decrease the
  total instruction count (e.g. dead store elimination and partial
  redundancy elimination)": adds CSE, DSE, LICM/PRE, and inlining.
* **O3** — "loop nest optimizations (such as vectorization and loop
  fusion/fission) ... leading to increases in instruction execution
  overlap": adds fusion, vectorization, and software pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine import WorkSignature
from .codegen import CodegenOptions, lower_function
from .ir import IRError, Program, clone_program
from .passes.base import Pass, PassReport
from .passes.inline import Inlining
from .passes.loopnest import (
    InstructionScheduling,
    LoopFusion,
    SoftwarePipelining,
    Vectorization,
)
from .passes.scalar import (
    CommonSubexpressionElimination,
    ConstantFolding,
    CopyPropagation,
    DeadStoreElimination,
    LoopInvariantCodeMotion,
)

OPT_LEVELS = ("O0", "O1", "O2", "O3")


def pipeline_for(level: str) -> list[Pass]:
    """The pass pipeline of one optimization level (fresh pass objects)."""
    if level == "O0":
        return []
    if level == "O1":
        return [ConstantFolding(), CopyPropagation(), InstructionScheduling()]
    if level == "O2":
        return [
            Inlining(),
            ConstantFolding(),
            CopyPropagation(),
            CommonSubexpressionElimination(),
            LoopInvariantCodeMotion(),
            DeadStoreElimination(),
            InstructionScheduling(),
        ]
    if level == "O3":
        return [
            Inlining(),
            ConstantFolding(),
            CopyPropagation(),
            CommonSubexpressionElimination(),
            LoopInvariantCodeMotion(),
            DeadStoreElimination(),
            LoopFusion(),
            Vectorization(),
            InstructionScheduling(),
            SoftwarePipelining(),
        ]
    raise IRError(f"unknown optimization level {level!r}; expected {OPT_LEVELS}")


def codegen_options_for(level: str) -> CodegenOptions:
    if level not in OPT_LEVELS:
        raise IRError(f"unknown optimization level {level!r}")
    return CodegenOptions(
        register_allocation=(level != "O0"),
        # naive O0 code branches badly; optimized layout helps prediction
        mispredict_rate=0.05 if level == "O0" else 0.03,
    )


@dataclass
class CompiledProgram:
    """The output of :func:`compile_program`."""

    program: Program
    level: str
    options: CodegenOptions
    reports: list[PassReport] = field(default_factory=list)

    def signature(self, function: str | None = None, *, expand_calls: bool = True) -> WorkSignature:
        """Work signature of one invocation of ``function`` (default entry)."""
        name = function or self.program.entry
        if name is None:
            raise IRError("program has no entry function")
        fn = self.program.function(name)
        return lower_function(self.program, fn, self.options,
                              expand_calls=expand_calls)

    def report_for(self, pass_name: str) -> PassReport | None:
        for r in self.reports:
            if r.pass_name == pass_name:
                return r
        return None


def compile_program(program: Program, level: str = "O2") -> CompiledProgram:
    """Clone, optimize, and prepare ``program`` at the given level."""
    optimized = clone_program(program)
    reports = []
    for p in pipeline_for(level):
        reports.append(p.run(optimized))
    return CompiledProgram(
        program=optimized,
        level=level,
        options=codegen_options_for(level),
        reports=reports,
    )
