"""Code generation: lowering optimized IR to work signatures.

The final compilation step walks a function's tree, multiplies statement
costs by enclosing trip counts and branch probabilities, and emits the
:class:`~repro.machine.WorkSignature` the runtime simulator executes.  This
is where the optimization levels become performance:

* **register allocation** (O1+) — scalar reads/writes stop being memory
  traffic; at O0 every ``Var`` read is a stack load and every ``Assign`` a
  stack store (the dominant share of O0's instruction count, as in
  Table I);
* **vectorized loops** — loop-control overhead divides by the width;
* **pipelined loops / scheduling** — the function's tuning knobs scale
  ``fp_dependency`` down and ``issue_inflation`` up;
* **calls** — either expanded transitively (whole-program signature) or
  charged as call overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine import WorkSignature
from .ir import (
    ArrayRef,
    ArrayStore,
    Assign,
    Block,
    CallStmt,
    Expr,
    Function,
    If,
    IRError,
    Loop,
    Program,
    Stmt,
    Var,
    count_expr_ops,
    stmt_exprs,
)
from .passes.loopnest import TuningKnobs, tuning_of


@dataclass(frozen=True)
class CodegenOptions:
    """Lowering configuration, set by the optimization level."""

    register_allocation: bool = False
    #: Baseline FP dependency exposure of unscheduled code.
    base_fp_dependency: float = 0.5
    #: Baseline issue inflation (predication/nops even at O0).
    base_issue_inflation: float = 1.05
    #: Stack frame traffic per scalar access when not register-allocated.
    mispredict_rate: float = 0.04


@dataclass
class _Tally:
    flops: float = 0.0
    int_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0


def lower_function(
    program: Program,
    fn: Function,
    options: CodegenOptions,
    *,
    expand_calls: bool = True,
    _depth: int = 0,
) -> WorkSignature:
    """Work signature of one invocation of ``fn``."""
    if _depth > 16:
        raise IRError(f"call cycle while lowering {fn.name!r}")
    tally = _Tally()
    _lower_block(program, fn, fn.body, options, tally, 1.0, 1,
                 expand_calls, _depth)
    knobs: TuningKnobs = tuning_of(fn)
    fp_dep = min(max(options.base_fp_dependency * knobs.fp_dependency_scale, 0.0), 1.0)
    reuse = min(fn.reuse + knobs.reuse_bonus, 1.0)
    return WorkSignature(
        flops=tally.flops,
        int_ops=tally.int_ops,
        loads=tally.loads,
        stores=tally.stores,
        branches=tally.branches,
        footprint_bytes=float(fn.footprint_bytes()),
        reuse=reuse,
        mispredict_rate=options.mispredict_rate,
        fp_dependency=fp_dep,
        issue_inflation=options.base_issue_inflation + knobs.issue_inflation_bonus,
    )


def _expr_cost(expr: Expr, options: CodegenOptions, tally: _Tally, weight: float) -> None:
    flops, int_ops, loads = count_expr_ops(expr)
    if options.register_allocation:
        # Var reads live in registers; only array reads hit memory.
        array_loads = sum(
            1 for node in expr.walk() if isinstance(node, ArrayRef)
        )
        loads = array_loads
    tally.flops += flops * weight
    tally.int_ops += int_ops * weight
    tally.loads += loads * weight


def _lower_block(
    program: Program,
    fn: Function,
    block: Block,
    options: CodegenOptions,
    tally: _Tally,
    weight: float,
    vector_width: int,
    expand_calls: bool,
    depth: int,
) -> None:
    for stmt in block.stmts:
        _lower_stmt(program, fn, stmt, options, tally, weight, vector_width,
                    expand_calls, depth)


def _lower_stmt(
    program: Program,
    fn: Function,
    stmt: Stmt,
    options: CodegenOptions,
    tally: _Tally,
    weight: float,
    vector_width: int,
    expand_calls: bool,
    depth: int,
) -> None:
    if isinstance(stmt, Assign):
        _expr_cost(stmt.value, options, tally, weight)
        if not options.register_allocation:
            tally.stores += weight  # scalar spills to the stack frame
    elif isinstance(stmt, ArrayStore):
        _expr_cost(stmt.value, options, tally, weight)
        tally.stores += weight
        tally.int_ops += weight  # address computation
    elif isinstance(stmt, CallStmt):
        for arg in stmt.args:
            _expr_cost(arg, options, tally, weight)
        callee = program.functions.get(stmt.callee)
        if callee is not None and expand_calls and callee.name != fn.name:
            sub = lower_function(program, callee, options,
                                 expand_calls=True, _depth=depth + 1)
            tally.flops += sub.flops * weight
            tally.int_ops += sub.int_ops * weight
            tally.loads += sub.loads * weight
            tally.stores += sub.stores * weight
            tally.branches += sub.branches * weight
        cost = callee.call_cost_int_ops if callee is not None else 12
        tally.int_ops += cost * weight
        tally.branches += weight  # call/return
    elif isinstance(stmt, If):
        _expr_cost(stmt.cond, options, tally, weight)
        tally.branches += weight
        _lower_block(program, fn, stmt.then_body, options, tally,
                     weight * stmt.taken_probability, vector_width,
                     expand_calls, depth)
        if stmt.else_body is not None:
            _lower_block(program, fn, stmt.else_body, options, tally,
                         weight * (1.0 - stmt.taken_probability),
                         vector_width, expand_calls, depth)
    elif isinstance(stmt, Loop):
        trips = stmt.trip_count
        width = max(stmt.vector_width, 1)
        # loop control: one counter increment + one back-edge branch per
        # (vectorized) iteration
        control_iters = weight * (trips / width)
        tally.int_ops += control_iters
        tally.branches += control_iters
        _lower_block(program, fn, stmt.body, options, tally,
                     weight * trips, width, expand_calls, depth)
    elif isinstance(stmt, Block):
        _lower_block(program, fn, stmt, options, tally, weight,
                     vector_width, expand_calls, depth)
    else:  # pragma: no cover - future node kinds
        raise IRError(f"cannot lower {type(stmt).__name__}")
