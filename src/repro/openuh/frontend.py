"""Front-end builder: constructing WHIRL programs from Python.

OpenUH's front ends parse C/C++/Fortran into VERY_HIGH WHIRL.  Our
"source language" is a fluent Python builder — the application modules
describe their kernels with it, and tests build small programs to exercise
individual passes::

    p = ProgramBuilder("stencil")
    f = p.function("diff_coeff", reuse=0.85)
    f.array("u", 128 * 128)
    with f.loop("i", 128):
        with f.loop("j", 128):
            f.store("u", ("i", "j"),
                    add(mul(aref("u", "i", "j"), const(0.5)),
                        var("coef")))
    program = p.build()

Expression helpers (:func:`var`, :func:`aref`, :func:`const`, :func:`add`,
:func:`sub`, :func:`mul`, :func:`div`, :func:`intrinsic`) build the
immutable expression nodes directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .ir import (
    ArrayStore,
    Assign,
    BinOp,
    Block,
    CallStmt,
    Const,
    Expr,
    Function,
    If,
    Intrinsic,
    IRError,
    Loop,
    Program,
    ScalarType,
    Var,
)

# -- expression helpers -----------------------------------------------------


def const(value: float, type: ScalarType = ScalarType.F64) -> Const:
    return Const(float(value), type)


def var(name: str, type: ScalarType = ScalarType.F64) -> Var:
    return Var(name, type)


def aref(array: str, *index: str, type: ScalarType = ScalarType.F64) -> ArrayRef:
    from .ir import ArrayRef

    return ArrayRef(array, tuple(index), type)


def add(a: Expr, b: Expr) -> BinOp:
    return BinOp("+", a, b)


def sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("-", a, b)


def mul(a: Expr, b: Expr) -> BinOp:
    return BinOp("*", a, b)


def div(a: Expr, b: Expr) -> BinOp:
    return BinOp("/", a, b)


def intrinsic(name: str, *args: Expr, cost_flops: int = 8) -> Intrinsic:
    return Intrinsic(name, tuple(args), cost_flops)


# -- builders ---------------------------------------------------------------


class FunctionBuilder:
    """Builds one function's body through a block stack."""

    def __init__(self, name: str, *, reuse: float = 0.9) -> None:
        self._fn = Function(name, Block(), reuse=reuse)
        self._stack: list[Block] = [self._fn.body]

    # -- declarations ----------------------------------------------------
    def array(self, name: str, elements: int, type: ScalarType = ScalarType.F64) -> "FunctionBuilder":
        self._fn.declare_array(name, elements, type)
        return self

    # -- statements ----------------------------------------------------------
    @property
    def _top(self) -> Block:
        return self._stack[-1]

    def assign(self, target: str, value: Expr, type: ScalarType = ScalarType.F64) -> "FunctionBuilder":
        self._top.stmts.append(Assign(target, value, type))
        return self

    def store(
        self, array: str, index: tuple[str, ...] | str, value: Expr
    ) -> "FunctionBuilder":
        if isinstance(index, str):
            index = (index,)
        self._top.stmts.append(ArrayStore(array, tuple(index), value))
        return self

    def call(self, callee: str, *args: Expr) -> "FunctionBuilder":
        self._top.stmts.append(CallStmt(callee, tuple(args)))
        return self

    @contextmanager
    def loop(self, loop_var: str, trip_count: int) -> Iterator["FunctionBuilder"]:
        loop = Loop(loop_var, trip_count, Block())
        self._top.stmts.append(loop)
        self._stack.append(loop.body)
        try:
            yield self
        finally:
            self._stack.pop()

    @contextmanager
    def if_(
        self, cond: Expr, *, taken_probability: float = 0.5
    ) -> Iterator["FunctionBuilder"]:
        node = If(cond, Block(), None, taken_probability)
        self._top.stmts.append(node)
        self._stack.append(node.then_body)
        try:
            yield self
        finally:
            self._stack.pop()

    @contextmanager
    def else_(self) -> Iterator["FunctionBuilder"]:
        last = self._top.stmts[-1] if self._top.stmts else None
        if not isinstance(last, If):
            raise IRError("else_() must directly follow an if_() block")
        if last.else_body is not None:
            raise IRError("if already has an else block")
        last.else_body = Block()
        self._stack.append(last.else_body)
        try:
            yield self
        finally:
            self._stack.pop()

    def build(self) -> Function:
        if len(self._stack) != 1:
            raise IRError(
                f"function {self._fn.name!r} has unclosed blocks"
            )
        return self._fn


class ProgramBuilder:
    """Builds a whole program."""

    def __init__(self, name: str) -> None:
        self._program = Program(name)
        self._pending: list[FunctionBuilder] = []

    def function(self, name: str, *, reuse: float = 0.9) -> FunctionBuilder:
        fb = FunctionBuilder(name, reuse=reuse)
        self._pending.append(fb)
        return fb

    def build(self, *, entry: str | None = None) -> Program:
        for fb in self._pending:
            self._program.add_function(fb.build())
        self._pending.clear()
        if entry is not None:
            self._program.function(entry)  # validates
            self._program.entry = entry
        if not self._program.functions:
            raise IRError("program has no functions")
        return self._program
