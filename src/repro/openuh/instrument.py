"""Compile-time instrumentation with selective-instrumentation scoring.

OpenUH's instrumentation module inserts TAU-compatible probes at different
program constructs (procedures, loops, branches, callsites), controlled by
compiler flags.  Instrumenting everything distorts measurement — "we want
to avoid instrumenting regions of code that have small weights ... and are
invoked many times" — so the selective scorer estimates, per region,

    score = static work per invocation / (1 + invocation count)

and skips regions below a threshold.  Invocation counts default to static
estimates and can be replaced by counts from a previous profiling run (the
paper's iterative tuning cycle).

:func:`run_instrumented` executes a compiled program over the simulated
runtime, emitting profiler events only at instrumented points and charging
each probe's overhead, so instrumentation dilation is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..machine import CounterVector, Machine
from ..machine import counters as C
from ..runtime import Profiler
from .codegen import lower_function
from .ir import Block, CallStmt, Function, If, IRError, Loop, Program, Stmt
from .levels import CompiledProgram
from .passes.inline import static_cost


@dataclass(frozen=True)
class InstrumentationSpec:
    """Which constructs to instrument (the compiler flags)."""

    procedures: bool = True
    loops: bool = False
    callsites: bool = False
    #: Selective-instrumentation score threshold; 0 disables selection.
    min_score: float = 0.0

    #: Probe cost per region entry+exit pair.
    probe_overhead_us: float = 0.35


@dataclass
class InstrumentationPoint:
    """One decided instrumentation site."""

    kind: str  # 'procedure' | 'loop' | 'callsite'
    name: str  # event name, e.g. "diff_coeff" or "loop: diff_coeff/i"
    score: float
    selected: bool
    reason: str


@dataclass
class InstrumentationPlan:
    """All decisions for one program."""

    spec: InstrumentationSpec
    points: list[InstrumentationPoint] = field(default_factory=list)

    def selected_events(self) -> list[str]:
        return [p.name for p in self.points if p.selected]

    def point(self, name: str) -> InstrumentationPoint:
        for p in self.points:
            if p.name == name:
                return p
        raise KeyError(f"no instrumentation point {name!r}")

    def is_selected(self, name: str) -> bool:
        return any(p.name == name and p.selected for p in self.points)


def loop_event_name(fn: Function, loop: Loop) -> str:
    return f"loop: {fn.name}/{loop.var}"


def score_region(work_per_call: float, calls: float) -> float:
    """The selective-instrumentation score (bigger = more worth probing)."""
    return work_per_call / (1.0 + calls)


def plan_instrumentation(
    program: Program,
    spec: InstrumentationSpec,
    *,
    call_counts: Mapping[str, float] | None = None,
) -> InstrumentationPlan:
    """Decide instrumentation points for ``program``.

    ``call_counts`` maps event names (function names / loop event names) to
    observed or estimated invocation counts; regions absent default to 1.
    """
    counts = dict(call_counts or {})
    plan = InstrumentationPlan(spec)

    def decide(kind: str, name: str, work: float) -> None:
        calls = counts.get(name, 1.0)
        score = score_region(work, calls)
        if spec.min_score > 0 and score < spec.min_score:
            plan.points.append(
                InstrumentationPoint(
                    kind, name, score, False,
                    f"score {score:.3g} below threshold {spec.min_score:g}",
                )
            )
        else:
            plan.points.append(
                InstrumentationPoint(kind, name, score, True, "selected")
            )

    for fn in program.functions.values():
        if spec.procedures:
            decide("procedure", fn.name, float(static_cost(fn)))
        if spec.loops:
            for loop, depth in _loops_with_depth(fn.body):
                work = float(static_cost(Function("_", loop.body)) * loop.trip_count)
                name = loop_event_name(fn, loop)
                # a loop event is entered once per enclosing execution;
                # nested loops are entered trip-product times
                counts.setdefault(name, max(counts.get(fn.name, 1.0), 1.0))
                decide("loop", name, work)
        if spec.callsites:
            for stmt in _flat(fn.body):
                if isinstance(stmt, CallStmt):
                    name = f"callsite: {fn.name}->{stmt.callee}"
                    callee = program.functions.get(stmt.callee)
                    work = float(static_cost(callee)) if callee else 10.0
                    decide("callsite", name, work)
    return plan


def _loops_with_depth(block: Block, depth: int = 0):
    for stmt in block.stmts:
        if isinstance(stmt, Loop):
            yield stmt, depth
            yield from _loops_with_depth(stmt.body, depth + 1)
        elif isinstance(stmt, If):
            yield from _loops_with_depth(stmt.then_body, depth)
            if stmt.else_body is not None:
                yield from _loops_with_depth(stmt.else_body, depth)
        elif isinstance(stmt, Block):
            yield from _loops_with_depth(stmt, depth)


def _flat(block: Block):
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, Loop):
            yield from _flat(stmt.body)
        elif isinstance(stmt, If):
            yield from _flat(stmt.then_body)
            if stmt.else_body is not None:
                yield from _flat(stmt.else_body)
        elif isinstance(stmt, Block):
            yield from _flat(stmt)


def run_instrumented(
    compiled: CompiledProgram,
    plan: InstrumentationPlan,
    machine: Machine,
    profiler: Profiler,
    cpu: int,
    *,
    function: str | None = None,
    calls: int = 1,
) -> None:
    """Execute the entry function ``calls`` times on one simulated CPU.

    Instrumented procedures/loops become profiler regions; each probed
    entry/exit pair charges the probe overhead inside the probed region
    (how TAU's dilation actually lands).
    """
    if calls < 1:
        raise IRError("calls must be >= 1")
    name = function or compiled.program.entry
    if name is None:
        raise IRError("program has no entry function")
    fn = compiled.program.function(name)
    # TAU always has a top-level timer; if the entry procedure is not
    # itself probed, charge into an implicit application event.
    implicit = not (plan.spec.procedures and plan.is_selected(fn.name))
    if implicit:
        profiler.enter(cpu, ".TAU application")
    for _ in range(calls):
        _run_function(compiled, plan, machine, profiler, cpu, fn, depth=0)
    if implicit:
        profiler.exit(cpu, ".TAU application")


def _call_weights(block: Block, weight: float = 1.0) -> dict[str, float]:
    """Dynamic invocation count per callee, weighted by loop trips and
    branch probabilities."""
    counts: dict[str, float] = {}

    def visit(b: Block, w: float) -> None:
        for stmt in b.stmts:
            if isinstance(stmt, CallStmt):
                counts[stmt.callee] = counts.get(stmt.callee, 0.0) + w
            elif isinstance(stmt, Loop):
                visit(stmt.body, w * stmt.trip_count)
            elif isinstance(stmt, If):
                visit(stmt.then_body, w * stmt.taken_probability)
                if stmt.else_body is not None:
                    visit(stmt.else_body, w * (1.0 - stmt.taken_probability))
            elif isinstance(stmt, Block):
                visit(stmt, w)

    visit(block, weight)
    return counts


def _run_function(compiled, plan, machine, profiler, cpu, fn: Function, *,
                  depth: int, weight: float = 1.0):
    """Execute ``fn`` (analytically) with dynamic multiplicity ``weight``:
    work is charged scaled by the weight, and call counts reflect the
    dynamic invocation count rather than the static call-site count."""
    if depth > 16:
        raise IRError(f"call cycle while executing {fn.name!r}")
    spec = plan.spec
    probed = spec.procedures and plan.is_selected(fn.name)
    if probed:
        profiler.enter(cpu, fn.name)
        if weight > 1.0:
            profiler.add_calls(cpu, fn.name, weight - 1.0)
        profiler.charge_idle(cpu, spec.probe_overhead_us * weight / 1e6)
    # Charge the function's own (non-call, non-probed-loop) work, then
    # recurse into calls so callee events nest correctly.
    own = lower_function(
        compiled.program, fn, compiled.options, expand_calls=False
    ).scaled(weight)
    # Only top-level loops split into their own events at run time; probing
    # a nested loop inside an already-probed outer loop would double-count
    # the subtracted work.
    loop_points = [
        (loop, loop_event_name(fn, loop))
        for loop, depth_ in _loops_with_depth(fn.body)
        if depth_ == 0
        and spec.loops
        and plan.is_selected(loop_event_name(fn, loop))
    ]
    if loop_points:
        # split the work: charge each probed top-level loop inside its own
        # event; remainder goes to the function body
        remainder = own
        for loop, event in loop_points:
            loop_fn = Function("_loopbody", loop.body, arrays=fn.arrays,
                               reuse=fn.reuse)
            per_iter = lower_function(
                compiled.program, loop_fn, compiled.options, expand_calls=False
            )
            loop_sig = per_iter.scaled(loop.trip_count * weight)
            profiler.enter(cpu, event)
            if weight > 1.0:
                profiler.add_calls(cpu, event, weight - 1.0)
            profiler.charge_idle(cpu, spec.probe_overhead_us * weight / 1e6)
            vector = machine.processor.execute(loop_sig)
            profiler.charge(cpu, vector)
            profiler.exit(cpu, event)
            remainder = _subtract_ops(remainder, loop_sig)
        vector = machine.processor.execute(remainder)
        profiler.charge(cpu, vector)
    else:
        profiler.charge(cpu, machine.processor.execute(own))
    for callee_name, call_weight in _call_weights(fn.body).items():
        callee = compiled.program.functions.get(callee_name)
        if callee is not None:
            _run_function(compiled, plan, machine, profiler, cpu, callee,
                          depth=depth + 1, weight=weight * call_weight)
    if probed:
        profiler.exit(cpu, fn.name)


def _subtract_ops(a, b):
    """a - b on op counts, clamped at zero (keep a's locality knobs)."""
    from dataclasses import replace

    return replace(
        a,
        flops=max(a.flops - b.flops, 0.0),
        int_ops=max(a.int_ops - b.int_ops, 0.0),
        loads=max(a.loads - b.loads, 0.0),
        stores=max(a.stores - b.stores, 0.0),
        branches=max(a.branches - b.branches, 0.0),
    )
