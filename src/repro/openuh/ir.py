"""WHIRL-like intermediate representation.

OpenUH (an Open64 branch) lowers programs through five levels of the WHIRL
tree IR, running each optimization at the level where it is natural.  We
reproduce the tree IR with the node kinds the paper's pass inventory needs:

Expressions (pure):
    ``Const``, ``Var`` (scalar read), ``ArrayRef`` (array element read),
    ``BinOp``, ``Call`` (pure intrinsic call).

Statements:
    ``Assign`` (scalar target), ``ArrayStore``, ``CallStmt`` (procedure
    call site), ``If``, ``Loop`` (counted loop with trip count), ``Block``.

A ``Function`` owns a body block plus parameter/local declarations; a
``Program`` owns functions.  Expression nodes are immutable and hashable so
CSE/PRE can key on structural identity.

The IR is deliberately *costed*: scalar FP/INT types drive operation
classification during lowering (:mod:`repro.openuh.codegen`), and arrays
carry element sizes so loop footprints can be computed by the cache cost
model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence, Union


class WhirlLevel(enum.Enum):
    """The five WHIRL levels (used to tag where a pass runs)."""

    VERY_HIGH = 5
    HIGH = 4
    MID = 3
    LOW = 2
    VERY_LOW = 1


class ScalarType(enum.Enum):
    F64 = "f64"
    I64 = "i64"

    @property
    def is_float(self) -> bool:
        return self is ScalarType.F64

    @property
    def size_bytes(self) -> int:
        return 8


class IRError(Exception):
    """Raised for malformed IR."""


# ---------------------------------------------------------------------------
# Expressions (immutable, hashable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    @property
    def dtype(self) -> ScalarType:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        yield self
        for c in self.children():
            yield from c.walk()


@dataclass(frozen=True)
class Const(Expr):
    value: float
    type: ScalarType = ScalarType.F64

    @property
    def dtype(self) -> ScalarType:
        return self.type


@dataclass(frozen=True)
class Var(Expr):
    """Scalar variable read."""

    name: str
    type: ScalarType = ScalarType.F64

    @property
    def dtype(self) -> ScalarType:
        return self.type


@dataclass(frozen=True)
class ArrayRef(Expr):
    """Array element read ``array[index expr...]``.

    ``index`` is symbolic (a tuple of loop-variable names / affine strings);
    only its structure matters for CSE, not its value.
    """

    array: str
    index: tuple[str, ...]
    type: ScalarType = ScalarType.F64

    @property
    def dtype(self) -> ScalarType:
        return self.type


_FP_OPS = frozenset({"+", "-", "*", "/", "min", "max"})


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _FP_OPS and self.op not in ("<", ">", "<=", ">=", "==", "!="):
            raise IRError(f"unknown binary op {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    @property
    def dtype(self) -> ScalarType:
        if self.op in ("<", ">", "<=", ">=", "==", "!="):
            return ScalarType.I64
        if self.left.dtype.is_float or self.right.dtype.is_float:
            return ScalarType.F64
        return ScalarType.I64


@dataclass(frozen=True)
class Intrinsic(Expr):
    """Pure intrinsic call (sqrt, exp, abs...) — costed as several FP ops."""

    name: str
    args: tuple[Expr, ...]
    cost_flops: int = 8

    def children(self) -> tuple[Expr, ...]:
        return self.args

    @property
    def dtype(self) -> ScalarType:
        return ScalarType.F64


# ---------------------------------------------------------------------------
# Statements (mutable tree; passes rebuild blocks)
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statement nodes."""


@dataclass
class Assign(Stmt):
    """Scalar assignment ``target = value``."""

    target: str
    value: Expr
    type: ScalarType = ScalarType.F64


@dataclass
class ArrayStore(Stmt):
    """Array element write ``array[index] = value``."""

    array: str
    index: tuple[str, ...]
    value: Expr
    type: ScalarType = ScalarType.F64


@dataclass
class CallStmt(Stmt):
    """Procedure call site (non-pure)."""

    callee: str
    args: tuple[Expr, ...] = ()


@dataclass
class If(Stmt):
    cond: Expr
    then_body: "Block"
    else_body: "Block | None" = None
    #: Static branch-taken probability estimate (feedback can override).
    taken_probability: float = 0.5


@dataclass
class Loop(Stmt):
    """Counted loop ``for <var> in range(<trip_count>)``."""

    var: str
    trip_count: int
    body: "Block"
    #: Filled by vectorization (codegen divides per-iteration FP work).
    vector_width: int = 1
    #: Filled by software pipelining / scheduling passes.
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.trip_count < 0:
            raise IRError("trip count must be non-negative")


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass
class ArrayDecl:
    """A named array with element count and type (for footprints)."""

    name: str
    elements: int
    type: ScalarType = ScalarType.F64

    @property
    def size_bytes(self) -> int:
        return self.elements * self.type.size_bytes

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise IRError(f"array {self.name!r}: elements must be positive")


@dataclass
class Function:
    name: str
    body: Block
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    #: Estimated temporal reuse of this function's accesses (app knowledge).
    reuse: float = 0.9
    #: How often a call executes this body (for inlining decisions).
    call_cost_int_ops: int = 12

    def declare_array(self, name: str, elements: int, type: ScalarType = ScalarType.F64) -> None:
        self.arrays[name] = ArrayDecl(name, elements, type)

    def footprint_bytes(self) -> int:
        """Total bytes of arrays *referenced* in the body."""
        used = set()
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, ArrayStore):
                used.add(stmt.array)
            for e in stmt_exprs(stmt):
                for node in e.walk():
                    if isinstance(node, ArrayRef):
                        used.add(node.array)
        return sum(
            self.arrays[a].size_bytes for a in used if a in self.arrays
        )


@dataclass
class Program:
    name: str
    functions: dict[str, Function] = field(default_factory=dict)
    entry: str | None = None

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        if self.entry is None:
            self.entry = fn.name
        return fn

    def function(self, name: str) -> Function:
        if name not in self.functions:
            raise IRError(
                f"no function {name!r}; have {sorted(self.functions)}"
            )
        return self.functions[name]


# ---------------------------------------------------------------------------
# Tree utilities shared by the passes
# ---------------------------------------------------------------------------


def walk_stmts(block: Block) -> Iterator[Stmt]:
    """Every statement in a block, recursively (including nested blocks)."""
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, Loop):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            if stmt.else_body is not None:
                yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, Block):
            yield from walk_stmts(stmt)


def stmt_exprs(stmt: Stmt) -> tuple[Expr, ...]:
    """The expression operands of one statement (non-recursive)."""
    if isinstance(stmt, Assign):
        return (stmt.value,)
    if isinstance(stmt, ArrayStore):
        return (stmt.value,)
    if isinstance(stmt, CallStmt):
        return stmt.args
    if isinstance(stmt, If):
        return (stmt.cond,)
    return ()


def count_expr_ops(expr: Expr) -> tuple[int, int, int]:
    """(flops, int_ops, loads) of evaluating ``expr`` once, pre-regalloc.

    ``Var`` reads count as loads here (stack traffic at O0); register
    allocation removes them during lowering.
    """
    flops = int_ops = loads = 0
    for node in expr.walk():
        if isinstance(node, BinOp):
            if node.dtype.is_float and node.op in _FP_OPS:
                flops += 1
            else:
                int_ops += 1
        elif isinstance(node, Intrinsic):
            flops += node.cost_flops
        elif isinstance(node, (Var, ArrayRef)):
            loads += 1
    return flops, int_ops, loads


def clone_block(block: Block) -> Block:
    """Deep-copy a block (expressions are immutable and shared)."""
    out = Block()
    for stmt in block.stmts:
        out.stmts.append(clone_stmt(stmt))
    return out


def clone_stmt(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(stmt.target, stmt.value, stmt.type)
    if isinstance(stmt, ArrayStore):
        return ArrayStore(stmt.array, stmt.index, stmt.value, stmt.type)
    if isinstance(stmt, CallStmt):
        return CallStmt(stmt.callee, stmt.args)
    if isinstance(stmt, If):
        return If(
            stmt.cond,
            clone_block(stmt.then_body),
            clone_block(stmt.else_body) if stmt.else_body else None,
            stmt.taken_probability,
        )
    if isinstance(stmt, Loop):
        return Loop(stmt.var, stmt.trip_count, clone_block(stmt.body),
                    stmt.vector_width, stmt.pipelined)
    if isinstance(stmt, Block):
        return clone_block(stmt)
    raise IRError(f"cannot clone {type(stmt).__name__}")


def clone_function(fn: Function) -> Function:
    return Function(
        name=fn.name,
        body=clone_block(fn.body),
        arrays=dict(fn.arrays),
        reuse=fn.reuse,
        call_cost_int_ops=fn.call_cost_int_ops,
    )


def clone_program(program: Program) -> Program:
    out = Program(program.name)
    for fn in program.functions.values():
        out.add_function(clone_function(fn))
    out.entry = program.entry
    return out
