"""Static processor cost model (the LNO's "explicit processor model").

Predicts cycles for a work signature from static assumptions — issue
resources, operation latencies, register pressure — *without* running
anything.  This is the model whose inaccuracy motivates the paper's
feedback loop: it must assume locality and stall behaviour that only
runtime data can supply, so it exposes exactly the assumption knobs the
feedback optimizer later replaces with measured values
(``assumed_miss_penalty_cycles``, ``assumed_stall_fraction``...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ...machine import WorkSignature


@dataclass(frozen=True)
class StaticAssumptions:
    """What the compiler guesses about runtime behaviour."""

    #: Average memory penalty per load/store (cycles) — static guess that
    #: collapses the whole hierarchy + NUMA into one number.
    assumed_miss_penalty_cycles: float = 2.0
    #: Fraction of FP latency the schedule fails to cover.
    assumed_stall_fraction: float = 0.25
    #: Branch mispredict penalty (cycles).
    branch_penalty_cycles: float = 12.0
    #: Spill traffic multiplier when register pressure exceeds the file.
    register_pressure_factor: float = 1.0


@dataclass(frozen=True)
class CycleEstimate:
    """Predicted cycle breakdown for one signature."""

    issue_cycles: float
    memory_cycles: float
    fp_stall_cycles: float
    branch_cycles: float

    @property
    def total(self) -> float:
        return (
            self.issue_cycles
            + self.memory_cycles
            + self.fp_stall_cycles
            + self.branch_cycles
        )


class ProcessorCostModel:
    """Itanium-2-shaped static cycle estimator.

    Parameters
    ----------
    peak_ipc:
        Issue width (6 on Itanium 2).
    fp_latency:
        FP result latency in cycles.
    """

    def __init__(
        self,
        *,
        peak_ipc: float = 6.0,
        fp_latency: float = 4.0,
        assumptions: StaticAssumptions | None = None,
    ) -> None:
        if peak_ipc <= 0:
            raise ValueError("peak_ipc must be positive")
        self.peak_ipc = peak_ipc
        self.fp_latency = fp_latency
        self.assumptions = assumptions or StaticAssumptions()

    def predict(self, work: WorkSignature) -> CycleEstimate:
        a = self.assumptions
        issue = (
            work.instructions
            * work.issue_inflation
            * a.register_pressure_factor
            / self.peak_ipc
        )
        memory = work.memory_accesses * a.assumed_miss_penalty_cycles
        fp = work.flops * work.fp_dependency * self.fp_latency * (
            a.assumed_stall_fraction / 0.25
        )
        branch = work.branches * work.mispredict_rate * a.branch_penalty_cycles
        return CycleEstimate(issue, memory, fp, branch)

    def with_assumptions(self, **overrides) -> "ProcessorCostModel":
        """A copy with some static assumptions replaced (feedback hook)."""
        return ProcessorCostModel(
            peak_ipc=self.peak_ipc,
            fp_latency=self.fp_latency,
            assumptions=replace(self.assumptions, **overrides),
        )
