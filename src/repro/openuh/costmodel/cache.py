"""Static cache cost model (Wolf/Maydan/Chen-style LNO model).

Predicts, per loop nest, the cache misses and the "cycles required to start
up inner loops" from static footprints — using the same analytical
hierarchy as the machine model but with *compile-time* reuse guesses
instead of measured behaviour.  Evaluates candidate loop transformations
(fusion, tiling via footprint reduction) by comparing predicted miss
totals, using constraints to avoid exhaustive search (we simply cap the
candidate list, which is what the constraint system achieves).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...machine import AccessSummary, CacheHierarchy, itanium2_hierarchy
from ..ir import ArrayRef, ArrayStore, Block, Function, Loop, stmt_exprs


@dataclass(frozen=True)
class LoopCachePrediction:
    """Predicted memory behaviour of one loop nest."""

    loop_var: str
    trip_count: int
    footprint_bytes: float
    accesses_per_full_nest: float
    predicted_l2_misses: float
    predicted_l3_misses: float
    predicted_memory_accesses: float
    startup_cycles: float

    @property
    def miss_cycles(self) -> float:
        """Weighted miss cost (the model's objective function)."""
        return (
            self.predicted_l2_misses * 5.0
            + self.predicted_l3_misses * 14.0
            + self.predicted_memory_accesses * 210.0
            + self.startup_cycles
        )


class CacheCostModel:
    """Per-loop static cache prediction over the Itanium 2 geometry."""

    #: Cycles to warm the pipeline + prefetch streams per loop entry.
    LOOP_STARTUP_CYCLES = 40.0

    def __init__(
        self,
        hierarchy: CacheHierarchy | None = None,
        *,
        assumed_reuse: float = 0.8,
    ) -> None:
        if not 0.0 <= assumed_reuse <= 1.0:
            raise ValueError("assumed_reuse must be in [0,1]")
        self.hierarchy = hierarchy or itanium2_hierarchy()
        self.assumed_reuse = assumed_reuse

    def predict_loop(self, fn: Function, loop: Loop) -> LoopCachePrediction:
        footprint = self._loop_footprint(fn, loop)
        accesses = self._loop_accesses(loop) * max(loop.trip_count, 1)
        result = self.hierarchy.access(
            AccessSummary(
                accesses=max(accesses, 1.0),
                footprint_bytes=max(footprint, 1.0),
                reuse=self.assumed_reuse,
            )
        )
        return LoopCachePrediction(
            loop_var=loop.var,
            trip_count=loop.trip_count,
            footprint_bytes=footprint,
            accesses_per_full_nest=accesses,
            predicted_l2_misses=result.level("L2").misses,
            predicted_l3_misses=result.level("L3").misses,
            predicted_memory_accesses=result.memory_accesses,
            startup_cycles=self.LOOP_STARTUP_CYCLES,
        )

    def predict_function(self, fn: Function) -> list[LoopCachePrediction]:
        """Predictions for every loop in the function, outermost first."""
        out = []

        def visit(block: Block) -> None:
            for stmt in block.stmts:
                if isinstance(stmt, Loop):
                    out.append(self.predict_loop(fn, stmt))
                    visit(stmt.body)
                elif hasattr(stmt, "then_body"):
                    visit(stmt.then_body)
                    if stmt.else_body is not None:
                        visit(stmt.else_body)

        visit(fn.body)
        return out

    def _loop_footprint(self, fn: Function, loop: Loop) -> float:
        """Bytes of the arrays referenced inside the loop."""
        arrays = set()

        def visit(block: Block) -> None:
            for stmt in block.stmts:
                if isinstance(stmt, ArrayStore):
                    arrays.add(stmt.array)
                for e in stmt_exprs(stmt):
                    for node in e.walk():
                        if isinstance(node, ArrayRef):
                            arrays.add(node.array)
                if isinstance(stmt, Loop):
                    visit(stmt.body)
                elif hasattr(stmt, "then_body"):
                    visit(stmt.then_body)
                    if stmt.else_body is not None:
                        visit(stmt.else_body)

        visit(loop.body)
        return float(
            sum(fn.arrays[a].size_bytes for a in arrays if a in fn.arrays)
        )

    def _loop_accesses(self, loop: Loop) -> float:
        """Array accesses per iteration of this loop (nested trips included)."""
        def block_accesses(block: Block) -> float:
            total = 0.0
            for stmt in block.stmts:
                if isinstance(stmt, ArrayStore):
                    total += 1
                for e in stmt_exprs(stmt):
                    total += sum(
                        1 for n in e.walk() if isinstance(n, ArrayRef)
                    )
                if isinstance(stmt, Loop):
                    total += stmt.trip_count * block_accesses(stmt.body)
                elif hasattr(stmt, "then_body"):
                    t = block_accesses(stmt.then_body)
                    if stmt.else_body is not None:
                        t = max(t, block_accesses(stmt.else_body))
                    total += t
            return total

        return block_accesses(loop.body)

    def compare_variants(
        self, variants: list[tuple[str, Function]]
    ) -> list[tuple[str, float]]:
        """Rank function variants by total predicted miss cycles (best first).

        The candidate list is the caller's constraint set — LNO evaluates
        "different combinations of loop optimizations, using constraints to
        avoid an exhaustive search".
        """
        if not variants:
            raise ValueError("no variants to compare")
        scored = []
        for label, fn in variants:
            cost = sum(p.miss_cycles for p in self.predict_function(fn))
            scored.append((label, cost))
        return sorted(scored, key=lambda t: t[1])
