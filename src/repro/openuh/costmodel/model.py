"""The combined, goal-weighted cost model.

"The cost model can be customized for specific optimization goals.
Currently, it can focus on reducing cache misses, register pressure,
instruction scheduling, pipeline stalls and parallel overheads."

:class:`CostModel` bundles the processor, cache, and parallel models under
an :class:`OptimizationGoal` that weights their objectives, and exposes the
feedback entry point: :meth:`calibrate` replaces static assumptions with
measured counter ratios from a PerfExplorer trial — the integration the
paper's Fig. 3 marks as *future* for the real system and which we close in
:mod:`repro.workflows`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...machine import WorkSignature
from ...machine import counters as C
from ..ir import Function, Program
from .cache import CacheCostModel
from .parallel import ParallelCostModel
from .processor import ProcessorCostModel


@dataclass(frozen=True)
class OptimizationGoal:
    """Relative weights of the model objectives."""

    name: str
    cycles_weight: float = 1.0
    cache_weight: float = 0.0
    power_weight: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cycles_weight, self.cache_weight, self.power_weight) < 0:
            raise ValueError("goal weights must be non-negative")
        if self.cycles_weight + self.cache_weight + self.power_weight == 0:
            raise ValueError("at least one goal weight must be positive")


GOAL_SPEED = OptimizationGoal("speed", cycles_weight=1.0)
GOAL_CACHE = OptimizationGoal("cache", cycles_weight=0.3, cache_weight=1.0)
GOAL_LOW_POWER = OptimizationGoal("low-power", cycles_weight=0.4, power_weight=1.0)


@dataclass
class VariantScore:
    label: str
    cycles: float
    miss_cycles: float
    overlap_proxy: float  # issued-per-cycle proxy for power
    weighted: float


class CostModel:
    """Processor + cache + parallel models under one goal."""

    def __init__(
        self,
        *,
        goal: OptimizationGoal = GOAL_SPEED,
        processor: ProcessorCostModel | None = None,
        cache: CacheCostModel | None = None,
        parallel: ParallelCostModel | None = None,
    ) -> None:
        self.goal = goal
        self.processor = processor or ProcessorCostModel()
        self.cache = cache or CacheCostModel()
        self.parallel = parallel or ParallelCostModel()

    # -- evaluation ---------------------------------------------------------
    def score_signature(self, label: str, work: WorkSignature, fn: Function | None = None) -> VariantScore:
        est = self.processor.predict(work)
        miss_cycles = 0.0
        if fn is not None:
            miss_cycles = sum(
                p.miss_cycles for p in self.cache.predict_function(fn)
            )
        overlap = (
            work.instructions * work.issue_inflation / est.total
            if est.total > 0
            else 0.0
        )
        weighted = (
            self.goal.cycles_weight * est.total
            + self.goal.cache_weight * miss_cycles
            + self.goal.power_weight * overlap * est.total * 0.1
        )
        return VariantScore(label, est.total, miss_cycles, overlap, weighted)

    def choose_variant(
        self, scored: list[VariantScore]
    ) -> VariantScore:
        if not scored:
            raise ValueError("no variants scored")
        return min(scored, key=lambda v: v.weighted)

    # -- feedback -----------------------------------------------------------
    def calibrate(self, counters: dict[str, float]) -> "CostModel":
        """Return a copy whose static assumptions match measured counters.

        ``counters`` is a plain metric→value mapping (typically the mean
        exclusive counters of the region being tuned).  Calibrations:

        * measured memory penalty per access replaces the static guess
          (L1D-miss stall cycles / memory accesses),
        * measured stall fraction replaces the assumed one
          (BACK_END_BUBBLE_ALL / CPU_CYCLES, mapped onto the FP term),
        * measured imbalance (if provided under ``"imbalance_ratio"``)
          updates the parallel model.
        """
        processor = self.processor
        accesses = counters.get(C.L2_DATA_REFERENCES, 0.0)
        l1d_stalls = counters.get(C.L1D_CACHE_MISS_STALLS, 0.0)
        if accesses > 0 and l1d_stalls > 0:
            processor = processor.with_assumptions(
                assumed_miss_penalty_cycles=l1d_stalls / accesses
            )
        cycles = counters.get(C.CPU_CYCLES, 0.0)
        stalls = counters.get(C.BACK_END_BUBBLE_ALL, 0.0)
        if cycles > 0:
            fraction = min(max(stalls / cycles, 0.0), 1.0)
            processor = processor.with_assumptions(
                assumed_stall_fraction=fraction
            )
        parallel = self.parallel
        imbalance = counters.get("imbalance_ratio", 0.0)
        if imbalance > 0:
            parallel = parallel.with_imbalance(1.0 + imbalance)
        return CostModel(
            goal=self.goal,
            processor=processor,
            cache=self.cache,
            parallel=parallel,
        )

    def with_goal(self, goal: OptimizationGoal) -> "CostModel":
        return CostModel(
            goal=goal,
            processor=self.processor,
            cache=self.cache,
            parallel=self.parallel,
        )
