"""OpenUH static cost models (processor, cache, parallel) + feedback hooks."""

from .cache import CacheCostModel, LoopCachePrediction
from .model import (
    GOAL_CACHE,
    GOAL_LOW_POWER,
    GOAL_SPEED,
    CostModel,
    OptimizationGoal,
    VariantScore,
)
from .parallel import (
    LevelEstimate,
    ParallelCostModel,
    ParallelOverheads,
    ParallelPlan,
    perfect_nest_of,
)
from .processor import CycleEstimate, ProcessorCostModel, StaticAssumptions

__all__ = [
    "CacheCostModel",
    "CostModel",
    "CycleEstimate",
    "GOAL_CACHE",
    "GOAL_LOW_POWER",
    "GOAL_SPEED",
    "LevelEstimate",
    "LoopCachePrediction",
    "OptimizationGoal",
    "ParallelCostModel",
    "ParallelOverheads",
    "ParallelPlan",
    "ProcessorCostModel",
    "StaticAssumptions",
    "VariantScore",
    "perfect_nest_of",
]
