"""Static parallel cost model (the LNO auto-parallelizer's model).

"The parallel model was designed to support automatic parallelization by
evaluating the cost involved in parallelizing a loop, and to decide which
loop level to parallelize. The parallel model accounts for threaded
fork-join and reduction overhead."

Given a loop nest and a thread count, the model predicts parallel time at
each candidate nesting level:

    T(level, p) = serial_body_cycles / p * imbalance_factor
                  + fork_join_cycles + reduction_cycles(p)
                  + per_chunk_overhead * chunks(level, p)

and recommends the level minimizing predicted time.  The imbalance factor
defaults to 1 (the static model cannot see data-dependent skew — exactly
why the MSA case needed runtime feedback); the feedback optimizer replaces
it with the measured stddev/mean ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ir import Block, Function, Loop


@dataclass(frozen=True)
class ParallelOverheads:
    """Runtime overhead constants (cycles at 1.5 GHz)."""

    fork_join_cycles: float = 9000.0  # ~6 µs
    reduction_cycles_per_thread: float = 400.0
    dynamic_dispatch_cycles: float = 1500.0  # ~1 µs per chunk


@dataclass(frozen=True)
class LevelEstimate:
    """Prediction for parallelizing one loop level."""

    level: int  # 0 = outermost
    loop_var: str
    trip_count: int
    predicted_cycles: float
    parallel_fraction: float  # share of nest work inside this level


@dataclass(frozen=True)
class ParallelPlan:
    """The model's recommendation for one nest."""

    estimates: tuple[LevelEstimate, ...]
    best_level: int
    serial_cycles: float

    @property
    def best(self) -> LevelEstimate:
        return self.estimates[self.best_level]

    @property
    def predicted_speedup(self) -> float:
        best = self.best.predicted_cycles
        return self.serial_cycles / best if best > 0 else float("inf")


class ParallelCostModel:
    """Chooses which loop level of a nest to parallelize."""

    def __init__(
        self,
        *,
        overheads: ParallelOverheads | None = None,
        imbalance_factor: float = 1.0,
        has_reduction: bool = False,
    ) -> None:
        if imbalance_factor < 1.0:
            raise ValueError("imbalance_factor must be >= 1 (1 = perfectly even)")
        self.overheads = overheads or ParallelOverheads()
        self.imbalance_factor = imbalance_factor
        self.has_reduction = has_reduction

    def evaluate_nest(
        self,
        nest: list[Loop],
        *,
        n_threads: int,
        cycles_per_innermost_iteration: float,
    ) -> ParallelPlan:
        """Evaluate parallelizing each level of a perfect nest.

        ``nest`` is outermost-to-innermost; body cost is expressed per
        innermost iteration (the codegen signature supplies it).
        """
        if not nest:
            raise ValueError("empty loop nest")
        if n_threads < 1:
            raise ValueError("need at least one thread")
        total_iters = math.prod(max(l.trip_count, 1) for l in nest)
        serial = total_iters * cycles_per_innermost_iteration
        ov = self.overheads
        estimates = []
        for level, loop in enumerate(nest):
            outer_iters = math.prod(
                max(l.trip_count, 1) for l in nest[:level]
            )
            # the parallel region forks once per enclosing iteration
            fork_cost = ov.fork_join_cycles * outer_iters
            reduction = (
                ov.reduction_cycles_per_thread * n_threads * outer_iters
                if self.has_reduction
                else 0.0
            )
            par_trips = max(loop.trip_count, 1)
            usable = min(n_threads, par_trips)
            body = serial / usable * self.imbalance_factor
            estimates.append(
                LevelEstimate(
                    level=level,
                    loop_var=loop.var,
                    trip_count=loop.trip_count,
                    predicted_cycles=body + fork_cost + reduction,
                    parallel_fraction=1.0,
                )
            )
        best = min(range(len(estimates)), key=lambda i: estimates[i].predicted_cycles)
        return ParallelPlan(tuple(estimates), best, serial)

    def worth_parallelizing(self, plan: ParallelPlan, *, threshold: float = 1.2) -> bool:
        """Is the predicted speedup worth the transformation?"""
        return plan.predicted_speedup >= threshold

    def with_imbalance(self, factor: float) -> "ParallelCostModel":
        """Copy with a measured imbalance factor (feedback hook)."""
        return ParallelCostModel(
            overheads=self.overheads,
            imbalance_factor=factor,
            has_reduction=self.has_reduction,
        )


def perfect_nest_of(fn: Function) -> list[Loop]:
    """Extract the outermost perfect loop nest of a function (may be 1 deep).

    Returns [] when the body does not start with a loop.
    """
    nest: list[Loop] = []
    block: Block = fn.body
    while True:
        loops = [s for s in block.stmts if isinstance(s, Loop)]
        if len(loops) != 1 or len(block.stmts) != 1:
            if not nest and loops:
                nest.append(loops[0])
            break
        nest.append(loops[0])
        block = loops[0].body
    return nest
