"""Feedback-directed optimization: recommendations → build decisions.

Fig. 3's dashed arrow — "Future capabilities will bypass the need for
manual changes to the source code by the user" — is implemented here: the
``Recommendation`` facts the knowledge rulebase asserts are translated into
a :class:`TuningPlan` the compiler/runtime layers apply on the next build:

* a load-imbalance recommendation sets the OpenMP schedule it names;
* a data-locality recommendation enables parallel first-touch
  initialization and marks the named regions for locality-focused loop
  optimization (the cache-weighted cost-model goal);
* a sequential-bottleneck recommendation marks the named region for
  parallelization;
* power/energy recommendations pick the optimization level.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..rules import Fact
from .costmodel.model import GOAL_CACHE, GOAL_LOW_POWER, GOAL_SPEED, OptimizationGoal


@dataclass(frozen=True)
class TuningPlan:
    """Build/runtime decisions derived from diagnosis."""

    schedule: str | None = None
    parallelize_initialization: bool = False
    parallelize_regions: frozenset[str] = frozenset()
    optimization_level: str | None = None
    goal: OptimizationGoal = GOAL_SPEED
    #: Human-readable trail: which recommendation caused which decision.
    decisions: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = ["TuningPlan:"]
        if self.schedule:
            lines.append(f"  schedule -> {self.schedule}")
        if self.parallelize_initialization:
            lines.append("  parallelize initialization loops (first-touch)")
        for region in sorted(self.parallelize_regions):
            lines.append(f"  parallelize region {region}")
        if self.optimization_level:
            lines.append(f"  optimization level -> {self.optimization_level}")
        lines.append(f"  cost-model goal -> {self.goal.name}")
        for d in self.decisions:
            lines.append(f"  because: {d}")
        return "\n".join(lines)


class FeedbackOptimizer:
    """Translates Recommendation facts into a :class:`TuningPlan`.

    Recommendation facts carry at least ``category`` and usually ``event``
    plus category-specific fields (``suggested_schedule``...).  Unknown
    categories are preserved in the decision trail but change nothing,
    so new rules degrade gracefully.
    """

    def plan(self, recommendations: list[Fact], *, base: TuningPlan | None = None) -> TuningPlan:
        plan = base or TuningPlan()
        for rec in recommendations:
            category = rec.get("category", "unknown")
            handler = getattr(self, f"_apply_{category.replace('-', '_')}", None)
            if handler is None:
                plan = replace(
                    plan,
                    decisions=plan.decisions
                    + (f"ignored unknown category {category!r}",),
                )
                continue
            plan = handler(rec, plan)
        return plan

    # -- category handlers --------------------------------------------------
    def _apply_load_imbalance(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        schedule = rec.get("suggested_schedule", "dynamic,1")
        return replace(
            plan,
            schedule=schedule,
            decisions=plan.decisions
            + (
                f"load imbalance on {rec.get('event', '?')} "
                f"(ratio {rec.get('imbalance_ratio', 0):.3g}) -> schedule {schedule}",
            ),
        )

    def _apply_data_locality(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        event = rec.get("event", "?")
        return replace(
            plan,
            parallelize_initialization=True,
            goal=GOAL_CACHE,
            decisions=plan.decisions
            + (
                f"poor locality on {event} (remote ratio "
                f"{rec.get('remote_ratio', 0):.3g}) -> parallel first-touch "
                "init + cache-weighted cost model",
            ),
        )

    def _apply_sequential_bottleneck(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        event = rec.get("event", "?")
        return replace(
            plan,
            parallelize_regions=plan.parallelize_regions | {event},
            decisions=plan.decisions
            + (f"sequential bottleneck {event} -> parallelize its copies",),
        )

    def _apply_stall_per_cycle(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        return replace(
            plan,
            decisions=plan.decisions
            + (
                f"high stall/cycle on {rec.get('event', '?')} -> candidate "
                "for memory-oriented optimization",
            ),
        )

    def _apply_memory_bound(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        return replace(
            plan,
            goal=GOAL_CACHE,
            decisions=plan.decisions
            + (
                f"memory-bound stalls on {rec.get('event', '?')} -> "
                "cache-weighted cost model",
            ),
        )

    def _apply_power(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        level = rec.get("suggested_level")
        goal = GOAL_LOW_POWER if rec.get("target") == "power" else GOAL_SPEED
        return replace(
            plan,
            optimization_level=level or plan.optimization_level,
            goal=goal if rec.get("target") == "power" else plan.goal,
            decisions=plan.decisions
            + (
                f"power/energy tradeoff -> level {level} "
                f"(target {rec.get('target', 'both')})",
            ),
        )

    _apply_energy = _apply_power

    def _apply_more_counters(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        return replace(
            plan,
            decisions=plan.decisions
            + (
                f"stalls on {rec.get('event', '?')} not fully decomposed -> "
                "schedule an additional counter run before optimizing it",
            ),
        )

    def _apply_fp_bound(self, rec: Fact, plan: TuningPlan) -> TuningPlan:
        return replace(
            plan,
            optimization_level=plan.optimization_level or "O3",
            decisions=plan.decisions
            + (
                f"FP-latency-bound {rec.get('event', '?')} -> enable the "
                "pipelining/vectorization level (O3)",
            ),
        )
