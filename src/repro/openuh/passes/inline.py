"""Procedure inlining (IPA's feedback-directed inliner).

OpenUH inlines small, hot callees; the paper's instrumentation feeds
callsite counts back to improve those decisions.  Our inliner splices the
callee body into the caller when the callee's static cost is below a
threshold, saving the call overhead and exposing the body to the scalar
passes.  Callsite-count feedback (``hot_callsites``) can force inlining of
larger hot callees.
"""

from __future__ import annotations

from ..ir import (
    Block,
    CallStmt,
    Function,
    If,
    Loop,
    Program,
    Stmt,
    clone_block,
    count_expr_ops,
    stmt_exprs,
    walk_stmts,
)
from .base import Pass, PassReport


def static_cost(fn: Function) -> int:
    """Rough static op count of one invocation (loop bodies × trips)."""

    def block_cost(block: Block) -> int:
        total = 0
        for stmt in block.stmts:
            if isinstance(stmt, Loop):
                total += 2 + stmt.trip_count * block_cost(stmt.body)
            elif isinstance(stmt, If):
                cost = block_cost(stmt.then_body)
                if stmt.else_body is not None:
                    cost = max(cost, block_cost(stmt.else_body))
                total += 1 + cost
            elif isinstance(stmt, Block):
                total += block_cost(stmt)
            else:
                for e in stmt_exprs(stmt):
                    f, i, l = count_expr_ops(e)
                    total += f + i + l
                total += 1
        return total

    return block_cost(fn.body)


class Inlining(Pass):
    """Inline callees below ``threshold`` static ops (or listed as hot)."""

    def __init__(
        self,
        threshold: int = 64,
        hot_callsites: set[str] | None = None,
        *,
        max_depth: int = 4,
    ) -> None:
        self.threshold = threshold
        self.hot_callsites = set(hot_callsites or ())
        self.max_depth = max_depth
        self._program: Program | None = None

    def run(self, program: Program) -> PassReport:
        self._program = program
        report = PassReport(self.name)
        for fn in program.functions.values():
            for _ in range(self.max_depth):
                if not self._inline_block(fn, fn.body, report):
                    break
        return report

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        # Inlining needs whole-program view; run() handles everything.
        raise NotImplementedError("Inlining operates at program scope")

    def _should_inline(self, caller: Function, callee_name: str) -> bool:
        assert self._program is not None
        if callee_name == caller.name:
            return False  # no self-inlining
        if callee_name not in self._program.functions:
            return False  # external (e.g. MPI) call
        callee = self._program.functions[callee_name]
        if callee_name in self.hot_callsites:
            return True
        return static_cost(callee) <= self.threshold

    def _inline_block(self, caller: Function, block: Block, report: PassReport) -> bool:
        changed = False
        new_stmts: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, CallStmt) and self._should_inline(caller, stmt.callee):
                callee = self._program.functions[stmt.callee]
                body = clone_block(callee.body)
                new_stmts.extend(body.stmts)
                # the caller now touches the callee's arrays too
                for name, decl in callee.arrays.items():
                    caller.arrays.setdefault(name, decl)
                report.bump("inlined")
                changed = True
            else:
                if isinstance(stmt, Loop):
                    changed |= self._inline_block(caller, stmt.body, report)
                elif isinstance(stmt, If):
                    changed |= self._inline_block(caller, stmt.then_body, report)
                    if stmt.else_body is not None:
                        changed |= self._inline_block(caller, stmt.else_body, report)
                new_stmts.append(stmt)
        block.stmts = new_stmts
        return changed
