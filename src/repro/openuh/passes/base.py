"""Optimization pass infrastructure.

Passes transform :class:`~repro.openuh.ir.Function` bodies in place (on a
cloned program — the pipeline never mutates the caller's IR) and report
what they did, so tests and the ablation benchmarks can assert on pass
effectiveness rather than just end-to-end numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..ir import Function, Program, WhirlLevel


@dataclass
class PassReport:
    """What one pass did to one program."""

    pass_name: str
    #: Free-form counters, e.g. {"folded": 3, "eliminated": 7}.
    changes: dict[str, int] = field(default_factory=dict)

    @property
    def total_changes(self) -> int:
        return sum(self.changes.values())

    def bump(self, key: str, amount: int = 1) -> None:
        self.changes[key] = self.changes.get(key, 0) + amount


class Pass(ABC):
    """An IR transformation applied function-by-function."""

    #: The WHIRL level this pass conceptually runs at.
    level: WhirlLevel = WhirlLevel.MID

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, program: Program) -> PassReport:
        report = PassReport(self.name)
        for fn in program.functions.values():
            self.run_on_function(fn, report)
        return report

    @abstractmethod
    def run_on_function(self, fn: Function, report: PassReport) -> None:
        """Transform one function in place, recording changes."""
