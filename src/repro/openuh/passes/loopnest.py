"""Loop-nest optimizations (LNO): fusion, vectorization, software
pipelining, and instruction scheduling effects.

These are the O1/O3 passes of Table I that change *how* instructions
execute more than how many there are: scheduling and pipelining increase
instruction-execution overlap (IPC up → power up), vectorization reduces
loop-control overhead and exposes independent FP work, and fusion improves
temporal reuse.

Overlap effects cannot live in the tree (they are properties of the final
schedule), so these passes both annotate loops (``vector_width``,
``pipelined``) and accumulate function-level *tuning knobs* that codegen
folds into the work signature:

* ``fp_dependency_scale`` < 1 — the schedule covers FP latency,
* ``issue_inflation_bonus`` > 0 — speculation/predication issue extra
  instructions that never complete (the power cost of aggressiveness).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Block, Function, If, Loop, Stmt, WhirlLevel, count_expr_ops, stmt_exprs
from .base import Pass, PassReport

#: Per-function tuning knobs accumulated by schedule-like passes, read by
#: codegen. Keyed by function name (functions are cloned between levels, so
#: annotations cannot live on the object identity).
TUNING_ATTR = "_openuh_tuning"


@dataclass
class TuningKnobs:
    fp_dependency_scale: float = 1.0
    issue_inflation_bonus: float = 0.0
    reuse_bonus: float = 0.0

    def merge_scale(self, fp_scale: float, issue_bonus: float, reuse_bonus: float = 0.0) -> None:
        self.fp_dependency_scale *= fp_scale
        self.issue_inflation_bonus += issue_bonus
        self.reuse_bonus += reuse_bonus


def tuning_of(fn: Function) -> TuningKnobs:
    knobs = getattr(fn, TUNING_ATTR, None)
    if knobs is None:
        knobs = TuningKnobs()
        setattr(fn, TUNING_ATTR, knobs)
    return knobs


class InstructionScheduling(Pass):
    """Global code motion + list scheduling (WOPT/CG).

    Covers part of every FP dependency chain and issues a little
    speculatively.  Applies to the whole function.
    """

    level = WhirlLevel.VERY_LOW

    FP_SCALE = 0.55
    ISSUE_BONUS = 0.08

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        tuning_of(fn).merge_scale(self.FP_SCALE, self.ISSUE_BONUS)
        report.bump("scheduled")


class SoftwarePipelining(Pass):
    """Modulo scheduling of innermost counted loops (CG).

    Marks innermost loops with enough iterations as pipelined; each covers
    most of its remaining FP latency and issues more speculatively.
    """

    level = WhirlLevel.VERY_LOW

    MIN_TRIPS = 8
    FP_SCALE = 0.45
    ISSUE_BONUS = 0.12
    #: Modulo-scheduled loops keep memory pipelines full (prefetch effect).
    REUSE_BONUS = 0.04

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        pipelined = 0
        for loop in _innermost_loops(fn.body):
            if loop.trip_count >= self.MIN_TRIPS and not loop.pipelined:
                loop.pipelined = True
                pipelined += 1
        if pipelined:
            tuning_of(fn).merge_scale(
                self.FP_SCALE, self.ISSUE_BONUS, self.REUSE_BONUS
            )
            report.bump("pipelined", pipelined)


class Vectorization(Pass):
    """SIMD-ize innermost FP loops (LNO).

    Sets ``vector_width``; codegen divides loop-control overhead by the
    width and treats the packed FP work as more independent.
    """

    level = WhirlLevel.HIGH

    WIDTH = 2  # Itanium 2: paired FP MAC units
    #: LNO emits prefetches alongside vectorized loops (reuse improvement).
    REUSE_BONUS = 0.04

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        vectorized = 0
        for loop in _innermost_loops(fn.body):
            if loop.vector_width != 1 or loop.trip_count < self.WIDTH:
                continue
            flops = 0
            for stmt in loop.body.stmts:
                for e in stmt_exprs(stmt):
                    f, _, _ = count_expr_ops(e)
                    flops += f
            if flops > 0:
                loop.vector_width = self.WIDTH
                vectorized += 1
                report.bump("vectorized")
        if vectorized:
            tuning_of(fn).merge_scale(1.0, 0.0, self.REUSE_BONUS)


class LoopFusion(Pass):
    """Fuse adjacent counted loops with identical trip counts (LNO).

    Halves loop-control overhead for the pair and improves temporal reuse
    (the fused body touches each element once while it is hot).
    """

    level = WhirlLevel.HIGH

    REUSE_BONUS = 0.02

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        fused = self._fuse_block(fn.body, report)
        if fused:
            tuning_of(fn).merge_scale(1.0, 0.0, self.REUSE_BONUS * fused)

    def _fuse_block(self, block: Block, report: PassReport) -> int:
        fused = 0
        new_stmts: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, Loop):
                fused += self._fuse_block(stmt.body, report)
            elif isinstance(stmt, If):
                fused += self._fuse_block(stmt.then_body, report)
                if stmt.else_body is not None:
                    fused += self._fuse_block(stmt.else_body, report)
            if (
                isinstance(stmt, Loop)
                and new_stmts
                and isinstance(new_stmts[-1], Loop)
                and new_stmts[-1].trip_count == stmt.trip_count
                and new_stmts[-1].var == stmt.var
                and new_stmts[-1].vector_width == stmt.vector_width
            ):
                new_stmts[-1].body.stmts.extend(stmt.body.stmts)
                fused += 1
                report.bump("fused")
            else:
                new_stmts.append(stmt)
        block.stmts = new_stmts
        return fused


def _innermost_loops(block: Block) -> list[Loop]:
    """Loops containing no nested loop."""
    out: list[Loop] = []

    def visit(b: Block) -> bool:
        """Returns True if b contains any loop."""
        has_loop = False
        for stmt in b.stmts:
            if isinstance(stmt, Loop):
                has_loop = True
                if not visit(stmt.body):
                    out.append(stmt)
            elif isinstance(stmt, If):
                has_loop |= visit(stmt.then_body)
                if stmt.else_body is not None:
                    has_loop |= visit(stmt.else_body)
            elif isinstance(stmt, Block):
                has_loop |= visit(stmt)
        return has_loop

    visit(block)
    return out
