"""Scalar optimizations: constant folding, copy propagation, CSE, dead
store elimination, and loop-invariant code motion (the PRE family).

These are the passes whose effect Table I attributes to O1/O2: they shrink
the dynamic instruction count ("optimizations that improve performance by
reducing the instruction count are optimized for low energy" — Valluri &
John, quoted by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import (
    ArrayRef,
    ArrayStore,
    Assign,
    BinOp,
    Block,
    CallStmt,
    Const,
    Expr,
    Function,
    If,
    Intrinsic,
    Loop,
    Stmt,
    Var,
    WhirlLevel,
    stmt_exprs,
)
from .base import Pass, PassReport

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "min": min,
    "max": max,
}


def _map_expr(expr: Expr, fn) -> Expr:
    """Rebuild an expression bottom-up through ``fn``."""
    if isinstance(expr, BinOp):
        rebuilt = BinOp(expr.op, _map_expr(expr.left, fn), _map_expr(expr.right, fn))
        return fn(rebuilt)
    if isinstance(expr, Intrinsic):
        rebuilt = Intrinsic(
            expr.name, tuple(_map_expr(a, fn) for a in expr.args), expr.cost_flops
        )
        return fn(rebuilt)
    return fn(expr)


def _map_stmt_exprs(stmt: Stmt, fn) -> None:
    """Apply ``fn`` to each statement's expressions, in place."""
    if isinstance(stmt, Assign):
        stmt.value = _map_expr(stmt.value, fn)
    elif isinstance(stmt, ArrayStore):
        stmt.value = _map_expr(stmt.value, fn)
    elif isinstance(stmt, CallStmt):
        stmt.args = tuple(_map_expr(a, fn) for a in stmt.args)
    elif isinstance(stmt, If):
        stmt.cond = _map_expr(stmt.cond, fn)


def _for_each_block(block: Block, visit) -> None:
    """Visit every (nested) block, innermost last."""
    for stmt in block.stmts:
        if isinstance(stmt, Loop):
            _for_each_block(stmt.body, visit)
        elif isinstance(stmt, If):
            _for_each_block(stmt.then_body, visit)
            if stmt.else_body is not None:
                _for_each_block(stmt.else_body, visit)
        elif isinstance(stmt, Block):
            _for_each_block(stmt, visit)
    visit(block)


class ConstantFolding(Pass):
    """Fold ``BinOp(Const, Const)`` and algebraic identities (peephole)."""

    level = WhirlLevel.LOW

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        def fold(expr: Expr) -> Expr:
            if not isinstance(expr, BinOp):
                return expr
            l, r = expr.left, expr.right
            if isinstance(l, Const) and isinstance(r, Const):
                op = _FOLDABLE.get(expr.op)
                if op is not None:
                    value = op(l.value, r.value)
                    if value is not None:
                        report.bump("folded")
                        return Const(float(value), expr.dtype)
            # x*1, 1*x, x+0, 0+x, x-0
            if expr.op == "*":
                if isinstance(r, Const) and r.value == 1.0:
                    report.bump("identity")
                    return l
                if isinstance(l, Const) and l.value == 1.0:
                    report.bump("identity")
                    return r
            if expr.op == "+":
                if isinstance(r, Const) and r.value == 0.0:
                    report.bump("identity")
                    return l
                if isinstance(l, Const) and l.value == 0.0:
                    report.bump("identity")
                    return r
            if expr.op == "-" and isinstance(r, Const) and r.value == 0.0:
                report.bump("identity")
                return l
            return expr

        def visit(block: Block) -> None:
            for stmt in block.stmts:
                _map_stmt_exprs(stmt, fold)

        _for_each_block(fn.body, visit)


class CopyPropagation(Pass):
    """Replace reads of ``x`` with ``y``/``c`` after ``x = y`` / ``x = c``.

    Works within straight-line runs of each block (a loop/if kills the
    tracked copies, conservatively).
    """

    level = WhirlLevel.MID

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        def visit(block: Block) -> None:
            copies: dict[str, Expr] = {}

            def substitute(expr: Expr) -> Expr:
                if isinstance(expr, Var) and expr.name in copies:
                    report.bump("propagated")
                    return copies[expr.name]
                return expr

            for stmt in block.stmts:
                if isinstance(stmt, (Loop, If, Block)):
                    copies.clear()
                    continue
                _map_stmt_exprs(stmt, substitute)
                if isinstance(stmt, Assign):
                    # kill copies that referenced the overwritten target
                    copies = {
                        k: v
                        for k, v in copies.items()
                        if k != stmt.target
                        and not any(
                            isinstance(n, Var) and n.name == stmt.target
                            for n in v.walk()
                        )
                    }
                    if isinstance(stmt.value, (Var, Const)):
                        copies[stmt.target] = stmt.value
                elif isinstance(stmt, CallStmt):
                    copies.clear()  # calls may write anything

        _for_each_block(fn.body, visit)


class CommonSubexpressionElimination(Pass):
    """Hoist repeated non-trivial subexpressions to temporaries (per block).

    Candidates are compound expressions (``BinOp``/``Intrinsic``) **and**
    repeated array loads (``ArrayRef``) — redundant-load elimination is the
    memory-traffic half of real CSE and the dominant share of its win on
    array codes.
    """

    level = WhirlLevel.MID
    _counter = 0

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        def visit(block: Block) -> None:
            # count structural occurrences of candidate subexpressions
            counts: dict[Expr, int] = {}
            for stmt in block.stmts:
                if isinstance(stmt, (Loop, If, Block)):
                    continue
                for e in stmt_exprs(stmt):
                    for node in e.walk():
                        if isinstance(node, (BinOp, Intrinsic)):
                            counts[node] = counts.get(node, 0) + 1
                        elif isinstance(node, ArrayRef):
                            # repeated loads only (a single load gains
                            # nothing from a temp)
                            counts[node] = counts.get(node, 0) + 1
            # soundness: never cache loads from arrays the block stores to
            stored_arrays = {
                s.array for s in block.stmts if isinstance(s, ArrayStore)
            }
            counts = {
                e: c
                for e, c in counts.items()
                if not (isinstance(e, ArrayRef) and e.array in stored_arrays)
                and not any(
                    isinstance(n, ArrayRef) and n.array in stored_arrays
                    for n in e.walk()
                )
            }
            repeated = {e for e, c in counts.items() if c > 1}
            if not repeated:
                return
            # keep only maximal repeated subtrees (don't split parents)
            maximal = {
                e
                for e in repeated
                if not any(
                    e in p.children() or _contains(p, e)
                    for p in repeated
                    if p is not e
                )
            }
            temps: dict[Expr, str] = {}
            new_stmts: list[Stmt] = []
            for stmt in block.stmts:
                if isinstance(stmt, (Loop, If, Block)):
                    new_stmts.append(stmt)
                    continue

                def replace_cse(expr: Expr) -> Expr:
                    if expr in maximal:
                        if expr not in temps:
                            CommonSubexpressionElimination._counter += 1
                            tmp = f"_cse{CommonSubexpressionElimination._counter}"
                            temps[expr] = tmp
                            new_stmts.append(Assign(tmp, expr, expr.dtype))
                            report.bump("hoisted")
                        else:
                            report.bump("reused")
                        return Var(temps[expr], expr.dtype)
                    return expr

                _map_stmt_exprs(stmt, replace_cse)
                new_stmts.append(stmt)
            block.stmts = new_stmts

        _for_each_block(fn.body, visit)


def _contains(parent: Expr, child: Expr) -> bool:
    return any(n == child for n in parent.walk() if n is not parent)


class DeadStoreElimination(Pass):
    """Remove scalar assignments whose target is never subsequently read.

    Function-local scalars are dead at function exit; array stores and call
    arguments are observable and always kept.  Conservative across control
    flow: a variable read anywhere later (in any nested construct) is live.
    """

    level = WhirlLevel.MID

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        changed = True
        while changed:
            changed = self._sweep(fn, report)

    def _sweep(self, fn: Function, report: PassReport) -> bool:
        # Collect all statements in execution order (flattened).
        order: list[tuple[Block, int, Stmt]] = []

        def flatten(block: Block) -> None:
            for i, stmt in enumerate(block.stmts):
                order.append((block, i, stmt))
                if isinstance(stmt, Loop):
                    flatten(stmt.body)
                elif isinstance(stmt, If):
                    flatten(stmt.then_body)
                    if stmt.else_body is not None:
                        flatten(stmt.else_body)
                elif isinstance(stmt, Block):
                    flatten(stmt)

        flatten(fn.body)
        reads_after: set[str] = set()
        dead: list[tuple[Block, int]] = []
        in_loop = _stmts_inside_loops(fn.body)
        for block, i, stmt in reversed(order):
            if isinstance(stmt, Assign):
                # a store inside a loop feeds later iterations' reads
                if stmt.target not in reads_after and id(stmt) not in in_loop:
                    dead.append((block, i))
                    continue  # its operand reads never happen
            for e in stmt_exprs(stmt):
                for node in e.walk():
                    if isinstance(node, Var):
                        reads_after.add(node.name)
        if not dead:
            return False
        for block, i in dead:
            block.stmts[i] = None  # type: ignore[call-overload]
        for block, _ in dead:
            block.stmts = [s for s in block.stmts if s is not None]
        report.bump("eliminated", len(dead))
        return True


def _stmts_inside_loops(block: Block, inside: bool = False) -> set[int]:
    out: set[int] = set()
    for stmt in block.stmts:
        if inside:
            out.add(id(stmt))
        if isinstance(stmt, Loop):
            out |= _stmts_inside_loops(stmt.body, True)
        elif isinstance(stmt, If):
            out |= _stmts_inside_loops(stmt.then_body, inside)
            if stmt.else_body is not None:
                out |= _stmts_inside_loops(stmt.else_body, inside)
        elif isinstance(stmt, Block):
            out |= _stmts_inside_loops(stmt, inside)
    return out


class LoopInvariantCodeMotion(Pass):
    """Hoist loop-invariant subexpressions out of loops (the PRE family).

    An expression is invariant if it references neither the loop variable
    nor any scalar assigned inside the loop, and contains no array reads
    indexed by the loop variable.
    """

    level = WhirlLevel.MID
    _counter = 0

    def run_on_function(self, fn: Function, report: PassReport) -> None:
        self._process_block(fn.body, report)

    def _process_block(self, block: Block, report: PassReport) -> None:
        new_stmts: list[Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, Loop):
                self._process_block(stmt.body, report)  # innermost first
                hoisted = self._hoist(stmt, report)
                new_stmts.extend(hoisted)
            elif isinstance(stmt, If):
                self._process_block(stmt.then_body, report)
                if stmt.else_body is not None:
                    self._process_block(stmt.else_body, report)
                new_stmts.append(stmt)
            else:
                new_stmts.append(stmt)
        block.stmts = new_stmts

    def _hoist(self, loop: Loop, report: PassReport) -> list[Stmt]:
        assigned = {
            s.target
            for s in _flat_stmts(loop.body)
            if isinstance(s, Assign)
        }
        assigned.add(loop.var)

        def invariant(expr: Expr) -> bool:
            for node in expr.walk():
                if isinstance(node, Var) and node.name in assigned:
                    return False
                if isinstance(node, ArrayRef) and loop.var in node.index:
                    return False
                if isinstance(node, ArrayRef) and any(
                    v in assigned for v in node.index
                ):
                    return False
            return True

        pre: list[Stmt] = []
        temps: dict[Expr, str] = {}

        def hoist_expr(expr: Expr) -> Expr:
            if isinstance(expr, (BinOp, Intrinsic)) and invariant(expr):
                if expr not in temps:
                    LoopInvariantCodeMotion._counter += 1
                    tmp = f"_licm{LoopInvariantCodeMotion._counter}"
                    temps[expr] = tmp
                    pre.append(Assign(tmp, expr, expr.dtype))
                    report.bump("hoisted")
                return Var(temps[expr], expr.dtype)
            return expr

        for stmt in loop.body.stmts:
            if not isinstance(stmt, (Loop, If, Block)):
                _map_stmt_exprs(stmt, hoist_expr)
        return [*pre, loop]


def _flat_stmts(block: Block):
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, Loop):
            yield from _flat_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from _flat_stmts(stmt.then_body)
            if stmt.else_body is not None:
                yield from _flat_stmts(stmt.else_body)
        elif isinstance(stmt, Block):
            yield from _flat_stmts(stmt)
