"""OpenUH optimization passes."""

from .base import Pass, PassReport
from .inline import Inlining, static_cost
from .loopnest import (
    InstructionScheduling,
    LoopFusion,
    SoftwarePipelining,
    TuningKnobs,
    Vectorization,
    tuning_of,
)
from .scalar import (
    CommonSubexpressionElimination,
    ConstantFolding,
    CopyPropagation,
    DeadStoreElimination,
    LoopInvariantCodeMotion,
)

__all__ = [
    "CommonSubexpressionElimination",
    "ConstantFolding",
    "CopyPropagation",
    "DeadStoreElimination",
    "Inlining",
    "InstructionScheduling",
    "LoopFusion",
    "LoopInvariantCodeMotion",
    "Pass",
    "PassReport",
    "SoftwarePipelining",
    "TuningKnobs",
    "Vectorization",
    "static_cost",
    "tuning_of",
]
